//! The ε-FDP privacy/performance/accuracy dial, end to end.
//!
//! Sweeps ε on the live pipeline and prints (a) the measured access counts
//! and dummy/lost rates and (b) an empirical audit of the DP bound: the
//! worst-case log-ratio of the access-count distribution between
//! neighboring inputs, which must stay below ε.
//!
//! Run with: `cargo run --release -p fedora --example privacy_tradeoff`

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fdp::{FdpMechanism, YShape};
use fedora_fl::modes::FedAvg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs one round over `requests` and returns the sampled k.
fn one_round(epsilon: f64, requests: &[u64], seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(512), 128);
    config.privacy = if epsilon == 0.0 {
        PrivacyConfig::perfect()
    } else if epsilon.is_infinite() {
        PrivacyConfig::none()
    } else {
        PrivacyConfig::with_epsilon(epsilon)
    };
    let mut server = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
    let report = server.begin_round(requests, &mut rng).expect("round fits");
    let mut mode = FedAvg;
    server
        .end_round(&mut mode, 1.0, &mut rng)
        .expect("round ends");
    report.k_accesses
}

fn main() {
    // A skewed workload: 64 requests over a 20-entry working set.
    let mut rng = StdRng::seed_from_u64(3);
    let requests: Vec<u64> = (0..64).map(|_| rng.gen_range(0..20)).collect();
    let k_union: usize = {
        let mut u = requests.clone();
        u.sort_unstable();
        u.dedup();
        u.len()
    };
    println!(
        "Workload: K = {} requests, k_union = {k_union} unique entries\n",
        requests.len()
    );

    println!(
        "{:>8} {:>10} {:>22}",
        "eps", "k (mean)", "empirical leak bound"
    );
    for eps in [0.0, 0.1, 0.5, 1.0, 3.0, f64::INFINITY] {
        // Mean accesses over repeated rounds.
        let trials = 30;
        let mean_k: f64 = (0..trials)
            .map(|t| one_round(eps, &requests, 100 + t) as f64)
            .sum::<f64>()
            / trials as f64;
        // Analytic worst-case log-ratio between neighboring inputs.
        let leak = if eps == 0.0 {
            0.0 // delta shape: input-independent
        } else {
            let mech = if eps.is_infinite() {
                FdpMechanism::no_privacy()
            } else {
                FdpMechanism::new(eps, YShape::Uniform).expect("valid")
            };
            mech.worst_case_log_ratio(k_union as u64, k_union as u64 + 1, requests.len() as u64)
                .expect("valid")
        };
        let eps_label = if eps.is_infinite() {
            "inf".into()
        } else {
            format!("{eps}")
        };
        let leak_label = if leak.is_infinite() {
            "UNBOUNDED".into()
        } else {
            format!("{leak:.4}")
        };
        println!("{eps_label:>8} {mean_k:>10.1} {leak_label:>22}");
    }

    println!("\nReading the table:");
    println!(
        "- eps=0   always reads K = {} (vanilla ORAM, perfect privacy).",
        requests.len()
    );
    println!("- eps=inf always reads k_union = {k_union} (cheapest, leaks unboundedly).");
    println!("- In between, the mean access count interpolates while the leak");
    println!("  stays provably below eps.");
}
