//! Federated training of a recommendation model through FEDORA.
//!
//! Generates a MovieLens-like synthetic dataset, trains a DLRM-lite model
//! for a few rounds with the private history table living in the SSD main
//! ORAM, and compares the resulting AUC against the `pub` baseline that
//! never touches private features.
//!
//! Run with: `cargo run --release -p fedora --example federated_round`

use fedora::training::{train_with_fedora, TrainingConfig};
use fedora_fdp::ProtectionMode;
use fedora_fl::datasets::{Dataset, SyntheticConfig};
use fedora_fl::model::{DlrmConfig, DlrmModel, Pooling};
use fedora_fl::sim::{run_reference_fl, FlSimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A laptop-scale MovieLens-like dataset.
    let mut data_cfg = SyntheticConfig::movielens_like();
    data_cfg.num_users = 96;
    data_cfg.num_items = 256;
    data_cfg.samples_per_user = 12;
    data_cfg.test_samples = 1500;
    let dataset = Dataset::generate(data_cfg);
    let (mean_hist, max_hist) = dataset.history_stats();
    println!(
        "Dataset: {} users, {} items, histories mean {:.1} / max {}",
        dataset.users().len(),
        dataset.config().num_items,
        mean_hist,
        max_hist
    );

    let model_cfg = DlrmConfig {
        num_items: 256,
        embedding_dim: 8,
        hidden_dim: 16,
        use_private_history: true,
        pooling: Pooling::Mean,
    };
    let rounds = 40;

    // pub baseline: conventional FL, no private features at all.
    let mut rng = StdRng::seed_from_u64(1);
    let mut pub_model = DlrmModel::new(
        DlrmConfig {
            use_private_history: false,
            ..model_cfg
        },
        &mut rng,
    );
    let sim = FlSimConfig {
        users_per_round: 24,
        rounds,
        ..Default::default()
    };
    let pub_auc = *run_reference_fl(&mut pub_model, &dataset, &sim, &mut rng)
        .last()
        .expect("rounds > 0");
    println!("\npub baseline (no private features):   AUC = {pub_auc:.4}");

    // FEDORA at ε = 1: private features used, accesses protected.
    let mut rng = StdRng::seed_from_u64(1);
    let mut fed_model = DlrmModel::new(model_cfg, &mut rng);
    let cfg = TrainingConfig {
        users_per_round: 24,
        rounds,
        protection: Some((ProtectionMode::HideValue, 1.0)),
        ..Default::default()
    };
    let outcome = train_with_fedora(&mut fed_model, &dataset, &cfg, &mut rng)?;
    println!(
        "FEDORA (hide priv val, ε = 1):        AUC = {:.4}  [Δ = {:+.4} vs pub]",
        outcome.auc,
        outcome.auc - pub_auc
    );
    println!(
        "  main-ORAM accesses: {} of {} requests ({:.1}% saved by dedup+FDP)",
        outcome.total_accesses,
        outcome.total_requests,
        outcome.reduced_accesses * 100.0
    );
    println!(
        "  dummy accesses: {:.2}%   lost entries: {:.2}% (vs the ε=∞ optimum)",
        outcome.dummy_rate * 100.0,
        outcome.lost_rate * 100.0
    );
    Ok(())
}
