//! Quickstart: stand up a FEDORA server on simulated devices, run one FL
//! round through the full pipeline, and inspect what the adversary saw.
//!
//! Run with: `cargo run -p fedora --example quickstart`

use fedora::config::{FedoraConfig, TableSpec};
use fedora::latency::LatencyModel;
use fedora::server::FedoraServer;
use fedora_fl::modes::FedAvg;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // A small embedding table (4096 rows of 32 bytes) protected by FEDORA:
    // main ORAM on the (simulated) SSD, buffer ORAM in DRAM, ε-FDP at 1.0.
    let config = FedoraConfig::for_testing(TableSpec::tiny(4096), 512);
    println!(
        "Table: {} entries x {} B  |  ORAM: depth {}, Z = {}, A = {}",
        config.table.num_entries,
        config.table.entry_bytes,
        config.geometry.depth(),
        config.geometry.z(),
        config.raw.eviction_period
    );
    let mut server = FedoraServer::new(config.clone(), |_| vec![0u8; 32], &mut rng);

    // Three users request the embedding rows their private features touch.
    // Note the duplicates: rows 7 and 42 are shared between users.
    let alice = [7u64, 19, 42];
    let bob = [7u64, 99];
    let charlie = [42u64, 7, 230];
    let requests: Vec<u64> = alice.iter().chain(&bob).chain(&charlie).copied().collect();

    // Steps 1-3: oblivious union, ε-FDP choice of k, SSD read phase.
    let report = server.begin_round(&requests, &mut rng)?;
    println!(
        "\nRound: K = {} requests, k_union = {} unique, k = {} ORAM accesses \
         ({} dummy, {} lost)",
        report.k_requests, report.k_union, report.k_accesses, report.dummies, report.lost
    );

    // Step 4: users download their rows from the buffer ORAM.
    let mut mode = FedAvg;
    for &id in &requests {
        match server.serve(id, &mut rng)? {
            Some(bytes) => println!("  serve row {id:>4}: {} bytes", bytes.len()),
            None => println!("  serve row {id:>4}: lost to FDP noise (default value)"),
        }
    }

    // Steps 5-6: users train locally and upload gradients (simulated here
    // by a constant gradient); the buffer ORAM aggregates.
    for &id in &requests {
        let gradient = vec![0.01f32; 8];
        server.aggregate(&mode, id, &gradient, 1, &mut rng)?;
    }

    // Step 7: aggregated updates flow back into the SSD main ORAM.
    let final_report = server.end_round(&mut mode, 1.0, &mut rng)?;
    println!(
        "\nWrite phase: {} EO accesses (one per {} insertions)",
        final_report.eo_accesses, config.raw.eviction_period
    );
    println!(
        "SSD this round: {} pages read, {} pages written ({} B written)",
        final_report.ssd.pages_read, final_report.ssd.pages_written, final_report.ssd.bytes_written
    );

    let latency = LatencyModel::default().round_latency(&final_report, &config);
    println!(
        "Modeled server-side latency: {:.3} ms ({:.4}% of a 2-minute FL round)",
        latency.total_s() * 1e3,
        latency.overhead_fraction() * 100.0
    );
    println!(
        "Privacy ledger: {} round(s) at ε = {}",
        server.accountant().rounds(),
        config.privacy.mechanism.epsilon()
    );
    Ok(())
}
