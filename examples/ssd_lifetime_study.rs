//! SSD lifetime study on the *simulated* device: run real FEDORA and
//! Path ORAM+ rounds against the in-memory SSD model and project device
//! lifetime from the measured wear — then check the analytic closed forms
//! used for the paper-scale figures against the measurement.
//!
//! Run with: `cargo run --release -p fedora --example ssd_lifetime_study`

use fedora::analytic::{fedora_round, path_oram_plus_round};
use fedora::baseline::PathOramPlus;
use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::modes::FedAvg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROUNDS: usize = 20;
const REQUESTS_PER_ROUND: usize = 200;
const ROUND_PERIOD_S: f64 = 120.0;

fn requests(rng: &mut StdRng, table: u64) -> Vec<u64> {
    (0..REQUESTS_PER_ROUND)
        .map(|_| {
            if rng.gen_bool(0.6) {
                rng.gen_range(0..32)
            } else {
                rng.gen_range(0..table)
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = TableSpec::tiny(4096);

    // --- FEDORA at ε = 1 on the simulated SSD ---
    let mut rng = StdRng::seed_from_u64(12);
    let mut config = FedoraConfig::for_testing(table, REQUESTS_PER_ROUND);
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    let mut server = FedoraServer::new(config.clone(), |_| vec![0u8; 32], &mut rng);
    let mut mode = FedAvg;
    let mut total_k = 0u64;
    for _ in 0..ROUNDS {
        let reqs = requests(&mut rng, table.num_entries);
        let rep = server.begin_round(&reqs, &mut rng)?;
        total_k += rep.k_accesses as u64;
        server.end_round(&mut mode, 1.0, &mut rng)?;
    }
    let fed_stats = server.ssd_stats();
    let fed_life = server
        .main_oram()
        .store()
        .ssd()
        .projected_lifetime_months(ROUNDS as f64 * ROUND_PERIOD_S);

    // --- Path ORAM+ on the same workload ---
    let mut rng = StdRng::seed_from_u64(12);
    let config2 = FedoraConfig::for_testing(table, REQUESTS_PER_ROUND);
    let mut baseline = PathOramPlus::new(config2.clone(), |_| vec![0u8; 32], &mut rng);
    for _ in 0..ROUNDS {
        let reqs = requests(&mut rng, table.num_entries);
        baseline.begin_round(&reqs, &mut rng)?;
        baseline.end_round(&mut mode, 1.0, &mut rng)?;
    }
    let base_stats = baseline.ssd_stats();

    println!("Simulated-device wear over {ROUNDS} rounds of {REQUESTS_PER_ROUND} requests:");
    println!(
        "  FEDORA(e=1):  {:>9} pages read, {:>8} pages written  -> lifetime {:.1} months",
        fed_stats.pages_read, fed_stats.pages_written, fed_life
    );
    println!(
        "  PathORAM+:    {:>9} pages read, {:>8} pages written",
        base_stats.pages_read, base_stats.pages_written
    );
    println!(
        "  write reduction: {:.0}x",
        base_stats.pages_written as f64 / fed_stats.pages_written.max(1) as f64
    );

    // --- Validate the analytic closed forms against the measurement ---
    let geo = config.geometry;
    let a = config.raw.eviction_period;
    let fed_pred = fedora_round(&geo, total_k, a, 4096);
    let base_pred = path_oram_plus_round(&geo, (ROUNDS * REQUESTS_PER_ROUND) as u64, 4096);
    println!("\nAnalytic model vs measurement (whole run):");
    println!(
        "  FEDORA    pages written: predicted {:>8}, measured {:>8}",
        fed_pred.pages_written, fed_stats.pages_written
    );
    println!(
        "  PathORAM+ pages written: predicted {:>8}, measured {:>8}",
        base_pred.pages_written, base_stats.pages_written
    );
    let err = (fed_pred.pages_written as f64 - fed_stats.pages_written as f64).abs()
        / fed_stats.pages_written.max(1) as f64;
    println!("  FEDORA prediction error: {:.1}%", err * 100.0);
    Ok(())
}
