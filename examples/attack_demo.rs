//! Attack demo: run the paper's threat model against the live system.
//!
//! Three adversaries, three outcomes:
//! 1. against **unprotected** lookups (Figure 1's strawman), frequency
//!    analysis recovers users' hottest private feature values exactly;
//! 2. against **FEDORA's main ORAM**, the same adversary sees only
//!    uniform path leaves and drops to chance;
//! 3. against the **access count** `k`, the optimal distinguisher's
//!    success tracks — and never exceeds — the ε-FDP bound.
//!
//! Run with: `cargo run --release -p fedora --example attack_demo`

use fedora::adversary::{count_attack, dp_success_bound, frequency_attack, trace_attack};
use fedora_crypto::aead::Key;
use fedora_fdp::{FdpMechanism, YShape};
use fedora_oram::raw::{RawOram, RawOramConfig};
use fedora_oram::store::DramBucketStore;
use fedora_oram::TreeGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: u64 = 1024;
const ACCESSES: usize = 5000;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // The users' secret: rows 3, 7, 11, 13 are the hottest feature values
    // (say, the four most-purchased items this round).
    let hot = [3u64, 7, 11, 13];
    let accesses: Vec<u64> = (0..ACCESSES)
        .map(|_| {
            if rng.gen_bool(0.6) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                rng.gen_range(0..TABLE)
            }
        })
        .collect();

    // --- 1. Unprotected lookups: addresses = row ids. ---
    let recovered = frequency_attack(&accesses, &hot);
    println!("1. No protection (Figure 1 strawman):");
    println!(
        "   adversary recovers {:.0}% of the hot feature values\n",
        recovered * 100.0
    );

    // --- 2. The same workload through FEDORA's main ORAM. ---
    let geo = TreeGeometry::for_blocks(TABLE, 16, 8);
    let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([9; 32]));
    let mut oram = RawOram::new(
        store,
        TABLE,
        RawOramConfig {
            eviction_period: 16,
        },
        |_| vec![0u8; 16],
        &mut rng,
    );
    for &id in &accesses {
        let blk = oram.fetch(id, &mut rng).expect("fetch");
        oram.insert(id, blk.payload, &mut rng).expect("insert");
    }
    let leaves = oram.take_ao_trace();
    let recovered = trace_attack(&leaves, &hot);
    println!("2. Through FEDORA's main ORAM (adversary sees path leaves):");
    println!(
        "   adversary recovers {:.0}% of the hot values (chance ≈ {:.1}%)\n",
        recovered * 100.0,
        hot.len() as f64 / geo.num_leaves() as f64 * 100.0
    );

    // --- 3. The access count under ε-FDP. ---
    println!("3. Optimal distinguisher on the access count k (30 vs 31 unique):");
    println!(
        "   {:>8} {:>18} {:>14}",
        "eps", "attack success", "DP bound"
    );
    for eps in [0.1, 0.5, 1.0, 2.0, f64::INFINITY] {
        let mech = if eps.is_infinite() {
            FdpMechanism::no_privacy()
        } else {
            FdpMechanism::new(eps, YShape::Uniform).expect("valid")
        };
        let out = count_attack(&mech, 30, 100, 20_000, &mut rng);
        let label = if eps.is_infinite() {
            "inf".into()
        } else {
            format!("{eps}")
        };
        println!(
            "   {:>8} {:>17.1}% {:>13.1}%",
            label,
            out.success_rate * 100.0,
            dp_success_bound(eps) * 100.0
        );
    }
    println!("\nThe measured success hugs the e^eps/(1+e^eps) curve and never");
    println!("exceeds it — the executable form of the Section 3 proof.");
}
