//! Offline build stub covering the slice of `crossbeam 0.8` this workspace
//! uses (`crossbeam::thread::scope` + `Scope::spawn`), backed by
//! `std::thread::scope`. Injected via a local `[patch]` on the cargo command
//! line when the registry is unreachable; never committed as a dependency.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scoped API.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Argument handed to spawned closures (crossbeam passes a nested
    /// `&Scope`; every call site in this workspace ignores it).
    pub struct SpawnArg;

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnArg) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&SpawnArg))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}
