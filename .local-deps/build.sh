#!/bin/sh
# Offline build wrapper: patch the registry deps with local stubs.
# Usage: .local-deps/build.sh <cargo subcommand and args...>
exec cargo \
  --config 'patch.crates-io.rand.path="/root/repo/.local-deps/rand"' \
  --config 'patch.crates-io.crossbeam.path="/root/repo/.local-deps/crossbeam"' \
  --config 'patch.crates-io.proptest.path="/root/repo/.local-deps/proptest"' \
  --config 'patch.crates-io.serde.path="/root/repo/.local-deps/serde"' \
  --config 'patch.crates-io.criterion.path="/root/repo/.local-deps/criterion"' \
  --offline "$@"
