//! Offline build stub: no-op `Serialize`/`Deserialize` derives. The
//! workspace derives these traits but never serializes through them (no
//! serde_json in-tree), so empty expansions are sufficient for offline
//! builds.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
