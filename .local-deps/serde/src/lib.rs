//! Offline build stub for `serde 1` sufficient for derive-only usage.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
