//! Offline build stub for the `rand 0.8` API surface this workspace uses.
//!
//! NOT the real rand crate: `StdRng` here is xoshiro256** seeded via
//! splitmix64, so seeded streams differ from upstream `StdRng` (ChaCha12).
//! Everything in-repo that matters is self-consistent determinism, which
//! this preserves. Used only via a local `[patch]` injected on the cargo
//! command line when the registry is unreachable; never committed as a
//! dependency.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Value types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample_from(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_from(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** with splitmix64 seeding. Deterministic, fast, decent
    /// statistical quality — but NOT the upstream StdRng stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, slot) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *slot = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn choose_multiple<R: Rng + RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: Rng + RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let take = amount.min(self.len());
            // Partial Fisher-Yates: the first `take` slots become the sample.
            for i in 0..take {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(take);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
