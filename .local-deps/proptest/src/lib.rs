//! Offline build stub covering the slice of `proptest 1` this workspace
//! uses: the `proptest!`/`prop_assert*`/`prop_assume!`/`prop_oneof!` macros,
//! `any::<T>()`, range strategies, `Just`, tuple strategies,
//! `collection::vec`, `array::uniform32`, `prop_map`, `prop_filter`, and
//! `ProptestConfig::with_cases`. No shrinking — failures report the inputs
//! and panic. Injected via a local `[patch]` on the cargo command line when
//! the registry is unreachable; never committed as a dependency.

/// Deterministic generator (splitmix64) seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input rejected (`prop_assume!` or a filter) — retry, don't count.
        Reject,
        /// Assertion failure — the test fails.
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Strategy: something that can generate values (`None` = filtered out).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<W, F>(self, _whence: W, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        <f64 as Arbitrary>::arbitrary(rng) as f32
    }
}

pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start >= self.end {
                    return None;
                }
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                Some(self.start.wrapping_add((rng.next_u64() as u128 % span) as $t))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                if lo > hi {
                    return None;
                }
                let span = (hi as u128) - (lo as u128) + 1;
                Some(lo.wrapping_add((rng.next_u64() as u128 % span) as $t))
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(self.start + (self.end - self.start) * rng.unit_f64() as $t)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)*))
            }
        }
    };
}
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Boxed union used by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        (**self).generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifier for [`vec`]: a fixed size or a half-open range.
    pub trait VecLen {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return 0;
            }
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl VecLen for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            if lo > hi {
                return 0;
            }
            lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform32<S> {
        element: S,
    }

    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32 { element }
    }

    impl<S: Strategy> Strategy for Uniform32<S>
    where
        S::Value: Copy + Default,
    {
        type Value = [S::Value; 32];

        fn generate(&self, rng: &mut TestRng) -> Option<[S::Value; 32]> {
            let mut out = [S::Value::default(); 32];
            for slot in out.iter_mut() {
                *slot = self.element.generate(rng)?;
            }
            Some(out)
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs != rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs != rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Emits `let` bindings for the parameter list inside the per-case closure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $x:ident in $s:expr) => {
        $crate::__proptest_bind!($rng; mut $x in $s,);
    };
    ($rng:ident; mut $x:ident in $s:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $x = match $crate::Strategy::generate(&($s), $rng) {
            ::core::option::Option::Some(v) => v,
            ::core::option::Option::None => {
                return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject)
            }
        };
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $x:ident in $s:expr) => {
        $crate::__proptest_bind!($rng; $x in $s,);
    };
    ($rng:ident; $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = match $crate::Strategy::generate(&($s), $rng) {
            ::core::option::Option::Some(v) => v,
            ::core::option::Option::None => {
                return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject)
            }
        };
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $x:ident : $t:ty) => {
        $crate::__proptest_bind!($rng; $x : $t,);
    };
    ($rng:ident; $x:ident : $t:ty, $($rest:tt)*) => {
        let $x: $t = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($cfg:expr; $($(#[$fmeta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$fmeta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut __ok: u32 = 0;
                let mut __tries: u32 = 0;
                let __max_tries = __cfg.cases.saturating_mul(50).max(200);
                while __ok < __cfg.cases && __tries < __max_tries {
                    __tries += 1;
                    let __result = (|__prng: &mut $crate::TestRng|
                        -> $crate::test_runner::TestCaseResult {
                        $crate::__proptest_bind!(__prng; $($params)*);
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })(&mut __rng);
                    match __result {
                        ::core::result::Result::Ok(()) => __ok += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(m)) => {
                            panic!("proptest case failed: {}", m)
                        }
                    }
                }
                assert!(__ok > 0, "proptest: every generated input was rejected");
            }
        )*
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_run!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_run!(::core::default::Default::default(); $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
    pub mod prop {
        pub use crate::{array, collection};
    }
}
