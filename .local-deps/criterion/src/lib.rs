//! Offline build stub for the `criterion 0.5` surface this workspace's
//! benches use. Runs each benchmark body a handful of times and prints
//! nothing fancy — enough to compile and smoke-run `cargo bench` offline.

use std::time::Instant;

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(name: S, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            std::hint::black_box(f(input));
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<S: std::fmt::Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let start = Instant::now();
        let mut b = Bencher {
            iters: self.parent.iters,
        };
        f(&mut b);
        eprintln!(
            "bench {}/{id}: {} iters in {:?}",
            self.name, self.parent.iters, start.elapsed()
        );
        self
    }

    pub fn bench_with_input<S: std::fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let start = Instant::now();
        let mut b = Bencher {
            iters: self.parent.iters,
        };
        f(&mut b, input);
        eprintln!(
            "bench {}/{id}: {} iters in {:?}",
            self.name, self.parent.iters, start.elapsed()
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
        eprintln!("bench {id}: done");
        self
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
