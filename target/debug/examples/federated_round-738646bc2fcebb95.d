/root/repo/target/debug/examples/federated_round-738646bc2fcebb95.d: crates/core/../../examples/federated_round.rs

/root/repo/target/debug/examples/federated_round-738646bc2fcebb95: crates/core/../../examples/federated_round.rs

crates/core/../../examples/federated_round.rs:
