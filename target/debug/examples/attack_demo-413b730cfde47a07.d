/root/repo/target/debug/examples/attack_demo-413b730cfde47a07.d: crates/core/../../examples/attack_demo.rs

/root/repo/target/debug/examples/attack_demo-413b730cfde47a07: crates/core/../../examples/attack_demo.rs

crates/core/../../examples/attack_demo.rs:
