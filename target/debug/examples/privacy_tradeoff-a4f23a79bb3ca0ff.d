/root/repo/target/debug/examples/privacy_tradeoff-a4f23a79bb3ca0ff.d: crates/core/../../examples/privacy_tradeoff.rs

/root/repo/target/debug/examples/privacy_tradeoff-a4f23a79bb3ca0ff: crates/core/../../examples/privacy_tradeoff.rs

crates/core/../../examples/privacy_tradeoff.rs:
