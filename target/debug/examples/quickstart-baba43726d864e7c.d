/root/repo/target/debug/examples/quickstart-baba43726d864e7c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-baba43726d864e7c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
