/root/repo/target/debug/examples/ssd_lifetime_study-e6d4218ca0d80f79.d: crates/core/../../examples/ssd_lifetime_study.rs

/root/repo/target/debug/examples/ssd_lifetime_study-e6d4218ca0d80f79: crates/core/../../examples/ssd_lifetime_study.rs

crates/core/../../examples/ssd_lifetime_study.rs:
