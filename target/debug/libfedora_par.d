/root/repo/target/debug/libfedora_par.rlib: /root/repo/crates/par/src/lib.rs
