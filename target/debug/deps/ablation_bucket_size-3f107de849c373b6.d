/root/repo/target/debug/deps/ablation_bucket_size-3f107de849c373b6.d: crates/bench/src/bin/ablation_bucket_size.rs

/root/repo/target/debug/deps/ablation_bucket_size-3f107de849c373b6: crates/bench/src/bin/ablation_bucket_size.rs

crates/bench/src/bin/ablation_bucket_size.rs:
