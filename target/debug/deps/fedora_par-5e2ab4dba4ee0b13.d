/root/repo/target/debug/deps/fedora_par-5e2ab4dba4ee0b13.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/fedora_par-5e2ab4dba4ee0b13: crates/par/src/lib.rs

crates/par/src/lib.rs:
