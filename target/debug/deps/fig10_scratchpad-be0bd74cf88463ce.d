/root/repo/target/debug/deps/fig10_scratchpad-be0bd74cf88463ce.d: crates/bench/src/bin/fig10_scratchpad.rs

/root/repo/target/debug/deps/fig10_scratchpad-be0bd74cf88463ce: crates/bench/src/bin/fig10_scratchpad.rs

crates/bench/src/bin/fig10_scratchpad.rs:
