/root/repo/target/debug/deps/integration_privacy-8929cf3e635e5815.d: crates/core/../../tests/integration_privacy.rs

/root/repo/target/debug/deps/integration_privacy-8929cf3e635e5815: crates/core/../../tests/integration_privacy.rs

crates/core/../../tests/integration_privacy.rs:
