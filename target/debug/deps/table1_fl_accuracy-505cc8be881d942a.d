/root/repo/target/debug/deps/table1_fl_accuracy-505cc8be881d942a.d: crates/bench/src/bin/table1_fl_accuracy.rs

/root/repo/target/debug/deps/table1_fl_accuracy-505cc8be881d942a: crates/bench/src/bin/table1_fl_accuracy.rs

crates/bench/src/bin/table1_fl_accuracy.rs:
