/root/repo/target/debug/deps/fedora_storage-90883768cf7bc038.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

/root/repo/target/debug/deps/libfedora_storage-90883768cf7bc038.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

/root/repo/target/debug/deps/libfedora_storage-90883768cf7bc038.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/dram.rs:
crates/storage/src/durable.rs:
crates/storage/src/fault.rs:
crates/storage/src/file_ssd.rs:
crates/storage/src/profile.rs:
crates/storage/src/scratchpad.rs:
crates/storage/src/ssd.rs:
crates/storage/src/stats.rs:
crates/storage/src/telemetry.rs:
crates/storage/src/trace_recorder.rs:
