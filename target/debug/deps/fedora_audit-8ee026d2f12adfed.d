/root/repo/target/debug/deps/fedora_audit-8ee026d2f12adfed.d: crates/bench/src/bin/fedora_audit.rs

/root/repo/target/debug/deps/fedora_audit-8ee026d2f12adfed: crates/bench/src/bin/fedora_audit.rs

crates/bench/src/bin/fedora_audit.rs:
