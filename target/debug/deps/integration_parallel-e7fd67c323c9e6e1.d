/root/repo/target/debug/deps/integration_parallel-e7fd67c323c9e6e1.d: crates/core/../../tests/integration_parallel.rs

/root/repo/target/debug/deps/integration_parallel-e7fd67c323c9e6e1: crates/core/../../tests/integration_parallel.rs

crates/core/../../tests/integration_parallel.rs:
