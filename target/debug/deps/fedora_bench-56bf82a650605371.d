/root/repo/target/debug/deps/fedora_bench-56bf82a650605371.d: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libfedora_bench-56bf82a650605371.rlib: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libfedora_bench-56bf82a650605371.rmeta: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/netload.rs:
crates/bench/src/outopts.rs:
crates/bench/src/trajectory.rs:
crates/bench/src/workload.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
