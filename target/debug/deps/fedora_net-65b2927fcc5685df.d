/root/repo/target/debug/deps/fedora_net-65b2927fcc5685df.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libfedora_net-65b2927fcc5685df.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libfedora_net-65b2927fcc5685df.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/proto.rs:
crates/net/src/server.rs:
