/root/repo/target/debug/deps/fault_campaign-1a693b64f80d6746.d: crates/bench/src/bin/fault_campaign.rs

/root/repo/target/debug/deps/fault_campaign-1a693b64f80d6746: crates/bench/src/bin/fault_campaign.rs

crates/bench/src/bin/fault_campaign.rs:
