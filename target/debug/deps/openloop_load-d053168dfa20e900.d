/root/repo/target/debug/deps/openloop_load-d053168dfa20e900.d: crates/bench/src/bin/openloop_load.rs

/root/repo/target/debug/deps/openloop_load-d053168dfa20e900: crates/bench/src/bin/openloop_load.rs

crates/bench/src/bin/openloop_load.rs:
