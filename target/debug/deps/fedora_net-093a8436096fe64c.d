/root/repo/target/debug/deps/fedora_net-093a8436096fe64c.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

/root/repo/target/debug/deps/fedora_net-093a8436096fe64c: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/proto.rs:
crates/net/src/server.rs:
