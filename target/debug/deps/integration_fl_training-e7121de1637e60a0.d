/root/repo/target/debug/deps/integration_fl_training-e7121de1637e60a0.d: crates/core/../../tests/integration_fl_training.rs

/root/repo/target/debug/deps/integration_fl_training-e7121de1637e60a0: crates/core/../../tests/integration_fl_training.rs

crates/core/../../tests/integration_fl_training.rs:
