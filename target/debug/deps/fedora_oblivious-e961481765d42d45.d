/root/repo/target/debug/deps/fedora_oblivious-e961481765d42d45.d: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

/root/repo/target/debug/deps/fedora_oblivious-e961481765d42d45: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

crates/oblivious/src/lib.rs:
crates/oblivious/src/choice.rs:
crates/oblivious/src/scan.rs:
crates/oblivious/src/select.rs:
crates/oblivious/src/sort.rs:
crates/oblivious/src/sorted_union.rs:
crates/oblivious/src/union.rs:
