/root/repo/target/debug/deps/fig3_fdp_pdfs-29e677889ec8291a.d: crates/bench/src/bin/fig3_fdp_pdfs.rs

/root/repo/target/debug/deps/fig3_fdp_pdfs-29e677889ec8291a: crates/bench/src/bin/fig3_fdp_pdfs.rs

crates/bench/src/bin/fig3_fdp_pdfs.rs:
