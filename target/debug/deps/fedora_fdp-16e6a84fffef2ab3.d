/root/repo/target/debug/deps/fedora_fdp-16e6a84fffef2ab3.d: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

/root/repo/target/debug/deps/fedora_fdp-16e6a84fffef2ab3: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

crates/fdp/src/lib.rs:
crates/fdp/src/accountant.rs:
crates/fdp/src/chunking.rs:
crates/fdp/src/mechanism.rs:
crates/fdp/src/shape.rs:
crates/fdp/src/tuning.rs:
