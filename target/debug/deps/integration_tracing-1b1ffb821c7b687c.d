/root/repo/target/debug/deps/integration_tracing-1b1ffb821c7b687c.d: crates/core/../../tests/integration_tracing.rs

/root/repo/target/debug/deps/integration_tracing-1b1ffb821c7b687c: crates/core/../../tests/integration_tracing.rs

crates/core/../../tests/integration_tracing.rs:
