/root/repo/target/debug/deps/fedora_audit-f6b04d9bd23ca232.d: crates/bench/src/bin/fedora_audit.rs

/root/repo/target/debug/deps/fedora_audit-f6b04d9bd23ca232: crates/bench/src/bin/fedora_audit.rs

crates/bench/src/bin/fedora_audit.rs:
