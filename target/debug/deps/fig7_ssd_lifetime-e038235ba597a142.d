/root/repo/target/debug/deps/fig7_ssd_lifetime-e038235ba597a142.d: crates/bench/src/bin/fig7_ssd_lifetime.rs

/root/repo/target/debug/deps/fig7_ssd_lifetime-e038235ba597a142: crates/bench/src/bin/fig7_ssd_lifetime.rs

crates/bench/src/bin/fig7_ssd_lifetime.rs:
