/root/repo/target/debug/deps/fedora_cli-6bdd4206c3fcf25a.d: crates/net/src/bin/fedora-cli.rs

/root/repo/target/debug/deps/fedora_cli-6bdd4206c3fcf25a: crates/net/src/bin/fedora-cli.rs

crates/net/src/bin/fedora-cli.rs:
