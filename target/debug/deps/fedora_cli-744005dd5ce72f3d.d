/root/repo/target/debug/deps/fedora_cli-744005dd5ce72f3d.d: crates/net/src/bin/fedora-cli.rs

/root/repo/target/debug/deps/fedora_cli-744005dd5ce72f3d: crates/net/src/bin/fedora-cli.rs

crates/net/src/bin/fedora-cli.rs:
