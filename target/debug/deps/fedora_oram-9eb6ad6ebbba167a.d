/root/repo/target/debug/deps/fedora_oram-9eb6ad6ebbba167a.d: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs

/root/repo/target/debug/deps/fedora_oram-9eb6ad6ebbba167a: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs

crates/oram/src/lib.rs:
crates/oram/src/block.rs:
crates/oram/src/bucket.rs:
crates/oram/src/buffer.rs:
crates/oram/src/geometry.rs:
crates/oram/src/path_oram.rs:
crates/oram/src/position.rs:
crates/oram/src/raw.rs:
crates/oram/src/recursive.rs:
crates/oram/src/ring.rs:
crates/oram/src/stash.rs:
crates/oram/src/store.rs:
crates/oram/src/vtree.rs:
