/root/repo/target/debug/deps/openloop_load-57583b2285a9870f.d: crates/bench/src/bin/openloop_load.rs

/root/repo/target/debug/deps/openloop_load-57583b2285a9870f: crates/bench/src/bin/openloop_load.rs

crates/bench/src/bin/openloop_load.rs:
