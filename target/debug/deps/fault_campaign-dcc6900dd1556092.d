/root/repo/target/debug/deps/fault_campaign-dcc6900dd1556092.d: crates/bench/src/bin/fault_campaign.rs

/root/repo/target/debug/deps/fault_campaign-dcc6900dd1556092: crates/bench/src/bin/fault_campaign.rs

crates/bench/src/bin/fault_campaign.rs:
