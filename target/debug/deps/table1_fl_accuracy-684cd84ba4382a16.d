/root/repo/target/debug/deps/table1_fl_accuracy-684cd84ba4382a16.d: crates/bench/src/bin/table1_fl_accuracy.rs

/root/repo/target/debug/deps/table1_fl_accuracy-684cd84ba4382a16: crates/bench/src/bin/table1_fl_accuracy.rs

crates/bench/src/bin/table1_fl_accuracy.rs:
