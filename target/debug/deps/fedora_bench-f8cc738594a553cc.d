/root/repo/target/debug/deps/fedora_bench-f8cc738594a553cc.d: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/fedora_bench-f8cc738594a553cc: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/netload.rs:
crates/bench/src/outopts.rs:
crates/bench/src/trajectory.rs:
crates/bench/src/workload.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
