/root/repo/target/debug/deps/fedora_fl-03b76cc54219ae54.d: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs

/root/repo/target/debug/deps/libfedora_fl-03b76cc54219ae54.rlib: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs

/root/repo/target/debug/deps/libfedora_fl-03b76cc54219ae54.rmeta: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs

crates/fl/src/lib.rs:
crates/fl/src/attention.rs:
crates/fl/src/client.rs:
crates/fl/src/datasets.rs:
crates/fl/src/linalg.rs:
crates/fl/src/metrics.rs:
crates/fl/src/model.rs:
crates/fl/src/modes.rs:
crates/fl/src/secagg.rs:
crates/fl/src/sim.rs:
crates/fl/src/wire.rs:
