/root/repo/target/debug/deps/rand-a66e14322279d449.d: .local-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a66e14322279d449.rlib: .local-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a66e14322279d449.rmeta: .local-deps/rand/src/lib.rs

.local-deps/rand/src/lib.rs:
