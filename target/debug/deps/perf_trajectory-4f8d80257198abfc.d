/root/repo/target/debug/deps/perf_trajectory-4f8d80257198abfc.d: crates/bench/src/bin/perf_trajectory.rs

/root/repo/target/debug/deps/perf_trajectory-4f8d80257198abfc: crates/bench/src/bin/perf_trajectory.rs

crates/bench/src/bin/perf_trajectory.rs:
