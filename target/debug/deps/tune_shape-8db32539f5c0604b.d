/root/repo/target/debug/deps/tune_shape-8db32539f5c0604b.d: crates/bench/src/bin/tune_shape.rs

/root/repo/target/debug/deps/tune_shape-8db32539f5c0604b: crates/bench/src/bin/tune_shape.rs

crates/bench/src/bin/tune_shape.rs:
