/root/repo/target/debug/deps/integration_telemetry-35ef199ea69b38f8.d: crates/core/../../tests/integration_telemetry.rs

/root/repo/target/debug/deps/integration_telemetry-35ef199ea69b38f8: crates/core/../../tests/integration_telemetry.rs

crates/core/../../tests/integration_telemetry.rs:
