/root/repo/target/debug/deps/integration_ops-feb507b9f0943493.d: crates/net/tests/integration_ops.rs

/root/repo/target/debug/deps/integration_ops-feb507b9f0943493: crates/net/tests/integration_ops.rs

crates/net/tests/integration_ops.rs:
