/root/repo/target/debug/deps/histogram_props-ecce268c38c5c37c.d: crates/telemetry/tests/histogram_props.rs

/root/repo/target/debug/deps/histogram_props-ecce268c38c5c37c: crates/telemetry/tests/histogram_props.rs

crates/telemetry/tests/histogram_props.rs:
