/root/repo/target/debug/deps/fig9_cost_power_energy-bead0c67af411edb.d: crates/bench/src/bin/fig9_cost_power_energy.rs

/root/repo/target/debug/deps/fig9_cost_power_energy-bead0c67af411edb: crates/bench/src/bin/fig9_cost_power_energy.rs

crates/bench/src/bin/fig9_cost_power_energy.rs:
