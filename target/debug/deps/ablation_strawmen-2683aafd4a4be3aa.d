/root/repo/target/debug/deps/ablation_strawmen-2683aafd4a4be3aa.d: crates/bench/src/bin/ablation_strawmen.rs

/root/repo/target/debug/deps/ablation_strawmen-2683aafd4a4be3aa: crates/bench/src/bin/ablation_strawmen.rs

crates/bench/src/bin/ablation_strawmen.rs:
