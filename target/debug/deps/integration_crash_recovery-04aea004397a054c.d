/root/repo/target/debug/deps/integration_crash_recovery-04aea004397a054c.d: crates/core/../../tests/integration_crash_recovery.rs

/root/repo/target/debug/deps/integration_crash_recovery-04aea004397a054c: crates/core/../../tests/integration_crash_recovery.rs

crates/core/../../tests/integration_crash_recovery.rs:
