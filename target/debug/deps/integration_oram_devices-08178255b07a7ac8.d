/root/repo/target/debug/deps/integration_oram_devices-08178255b07a7ac8.d: crates/core/../../tests/integration_oram_devices.rs

/root/repo/target/debug/deps/integration_oram_devices-08178255b07a7ac8: crates/core/../../tests/integration_oram_devices.rs

crates/core/../../tests/integration_oram_devices.rs:
