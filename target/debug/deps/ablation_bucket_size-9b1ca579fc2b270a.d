/root/repo/target/debug/deps/ablation_bucket_size-9b1ca579fc2b270a.d: crates/bench/src/bin/ablation_bucket_size.rs

/root/repo/target/debug/deps/ablation_bucket_size-9b1ca579fc2b270a: crates/bench/src/bin/ablation_bucket_size.rs

crates/bench/src/bin/ablation_bucket_size.rs:
