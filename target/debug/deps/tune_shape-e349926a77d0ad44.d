/root/repo/target/debug/deps/tune_shape-e349926a77d0ad44.d: crates/bench/src/bin/tune_shape.rs

/root/repo/target/debug/deps/tune_shape-e349926a77d0ad44: crates/bench/src/bin/tune_shape.rs

crates/bench/src/bin/tune_shape.rs:
