/root/repo/target/debug/deps/fig9_cost_power_energy-f91c9f55fe657f28.d: crates/bench/src/bin/fig9_cost_power_energy.rs

/root/repo/target/debug/deps/fig9_cost_power_energy-f91c9f55fe657f28: crates/bench/src/bin/fig9_cost_power_energy.rs

crates/bench/src/bin/fig9_cost_power_energy.rs:
