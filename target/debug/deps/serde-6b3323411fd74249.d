/root/repo/target/debug/deps/serde-6b3323411fd74249.d: .local-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6b3323411fd74249.rlib: .local-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6b3323411fd74249.rmeta: .local-deps/serde/src/lib.rs

.local-deps/serde/src/lib.rs:
