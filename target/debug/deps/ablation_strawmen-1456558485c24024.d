/root/repo/target/debug/deps/ablation_strawmen-1456558485c24024.d: crates/bench/src/bin/ablation_strawmen.rs

/root/repo/target/debug/deps/ablation_strawmen-1456558485c24024: crates/bench/src/bin/ablation_strawmen.rs

crates/bench/src/bin/ablation_strawmen.rs:
