/root/repo/target/debug/deps/ablation_stash_occupancy-49d2670f582bb721.d: crates/bench/src/bin/ablation_stash_occupancy.rs

/root/repo/target/debug/deps/ablation_stash_occupancy-49d2670f582bb721: crates/bench/src/bin/ablation_stash_occupancy.rs

crates/bench/src/bin/ablation_stash_occupancy.rs:
