/root/repo/target/debug/deps/fedora-bf8bac0b36a5f5c5.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs

/root/repo/target/debug/deps/fedora-bf8bac0b36a5f5c5: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/analytic.rs:
crates/core/src/audit.rs:
crates/core/src/audit/empirical.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/durable.rs:
crates/core/src/latency.rs:
crates/core/src/multi.rs:
crates/core/src/server.rs:
crates/core/src/training.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
