/root/repo/target/debug/deps/proptest-0dd2642f31225ead.d: .local-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0dd2642f31225ead.rlib: .local-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0dd2642f31225ead.rmeta: .local-deps/proptest/src/lib.rs

.local-deps/proptest/src/lib.rs:
