/root/repo/target/debug/deps/integration_watch_empirical-60b2bc41ce559dc6.d: crates/core/../../tests/integration_watch_empirical.rs

/root/repo/target/debug/deps/integration_watch_empirical-60b2bc41ce559dc6: crates/core/../../tests/integration_watch_empirical.rs

crates/core/../../tests/integration_watch_empirical.rs:
