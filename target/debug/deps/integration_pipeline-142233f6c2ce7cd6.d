/root/repo/target/debug/deps/integration_pipeline-142233f6c2ce7cd6.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-142233f6c2ce7cd6: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
