/root/repo/target/debug/deps/integration_privacy_audit-dc854b62e6998191.d: crates/core/../../tests/integration_privacy_audit.rs

/root/repo/target/debug/deps/integration_privacy_audit-dc854b62e6998191: crates/core/../../tests/integration_privacy_audit.rs

crates/core/../../tests/integration_privacy_audit.rs:
