/root/repo/target/debug/deps/fig8_latency-0bb76c3e9bb89d43.d: crates/bench/src/bin/fig8_latency.rs

/root/repo/target/debug/deps/fig8_latency-0bb76c3e9bb89d43: crates/bench/src/bin/fig8_latency.rs

crates/bench/src/bin/fig8_latency.rs:
