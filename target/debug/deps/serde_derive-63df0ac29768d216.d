/root/repo/target/debug/deps/serde_derive-63df0ac29768d216.d: .local-deps/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-63df0ac29768d216.so: .local-deps/serde_derive/src/lib.rs

.local-deps/serde_derive/src/lib.rs:
