/root/repo/target/debug/deps/fedora_telemetry-360acb44916721d2.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libfedora_telemetry-360acb44916721d2.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libfedora_telemetry-360acb44916721d2.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
