/root/repo/target/debug/deps/criterion-e5c699e94675bc6a.d: .local-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e5c699e94675bc6a.rlib: .local-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e5c699e94675bc6a.rmeta: .local-deps/criterion/src/lib.rs

.local-deps/criterion/src/lib.rs:
