/root/repo/target/debug/deps/integration_net-ffee30da02367384.d: crates/net/tests/integration_net.rs

/root/repo/target/debug/deps/integration_net-ffee30da02367384: crates/net/tests/integration_net.rs

crates/net/tests/integration_net.rs:
