/root/repo/target/debug/deps/fig8_latency-96e49b5867e663b0.d: crates/bench/src/bin/fig8_latency.rs

/root/repo/target/debug/deps/fig8_latency-96e49b5867e663b0: crates/bench/src/bin/fig8_latency.rs

crates/bench/src/bin/fig8_latency.rs:
