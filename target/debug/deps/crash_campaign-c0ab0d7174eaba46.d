/root/repo/target/debug/deps/crash_campaign-c0ab0d7174eaba46.d: crates/bench/src/bin/crash_campaign.rs

/root/repo/target/debug/deps/crash_campaign-c0ab0d7174eaba46: crates/bench/src/bin/crash_campaign.rs

crates/bench/src/bin/crash_campaign.rs:
