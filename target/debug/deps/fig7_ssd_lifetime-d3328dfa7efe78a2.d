/root/repo/target/debug/deps/fig7_ssd_lifetime-d3328dfa7efe78a2.d: crates/bench/src/bin/fig7_ssd_lifetime.rs

/root/repo/target/debug/deps/fig7_ssd_lifetime-d3328dfa7efe78a2: crates/bench/src/bin/fig7_ssd_lifetime.rs

crates/bench/src/bin/fig7_ssd_lifetime.rs:
