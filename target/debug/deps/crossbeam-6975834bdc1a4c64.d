/root/repo/target/debug/deps/crossbeam-6975834bdc1a4c64.d: .local-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-6975834bdc1a4c64.rlib: .local-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-6975834bdc1a4c64.rmeta: .local-deps/crossbeam/src/lib.rs

.local-deps/crossbeam/src/lib.rs:
