/root/repo/target/debug/deps/fedora-3ca1b382dfbf8226.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libfedora-3ca1b382dfbf8226.rlib: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libfedora-3ca1b382dfbf8226.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/analytic.rs:
crates/core/src/audit.rs:
crates/core/src/audit/empirical.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/durable.rs:
crates/core/src/latency.rs:
crates/core/src/multi.rs:
crates/core/src/server.rs:
crates/core/src/training.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
