/root/repo/target/debug/deps/fig10_scratchpad-1ddf2f56839cc015.d: crates/bench/src/bin/fig10_scratchpad.rs

/root/repo/target/debug/deps/fig10_scratchpad-1ddf2f56839cc015: crates/bench/src/bin/fig10_scratchpad.rs

crates/bench/src/bin/fig10_scratchpad.rs:
