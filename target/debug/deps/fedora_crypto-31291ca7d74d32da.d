/root/repo/target/debug/deps/fedora_crypto-31291ca7d74d32da.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs

/root/repo/target/debug/deps/fedora_crypto-31291ca7d74d32da: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/counter.rs:
crates/crypto/src/flat.rs:
crates/crypto/src/group.rs:
crates/crypto/src/integrity.rs:
crates/crypto/src/poly1305.rs:
