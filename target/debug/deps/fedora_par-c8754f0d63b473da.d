/root/repo/target/debug/deps/fedora_par-c8754f0d63b473da.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libfedora_par-c8754f0d63b473da.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libfedora_par-c8754f0d63b473da.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
