/root/repo/target/debug/deps/fedora_fdp-b6d33778e74498eb.d: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

/root/repo/target/debug/deps/libfedora_fdp-b6d33778e74498eb.rlib: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

/root/repo/target/debug/deps/libfedora_fdp-b6d33778e74498eb.rmeta: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

crates/fdp/src/lib.rs:
crates/fdp/src/accountant.rs:
crates/fdp/src/chunking.rs:
crates/fdp/src/mechanism.rs:
crates/fdp/src/shape.rs:
crates/fdp/src/tuning.rs:
