/root/repo/target/debug/deps/ablation_stash_occupancy-4a9aee671d25b1b0.d: crates/bench/src/bin/ablation_stash_occupancy.rs

/root/repo/target/debug/deps/ablation_stash_occupancy-4a9aee671d25b1b0: crates/bench/src/bin/ablation_stash_occupancy.rs

crates/bench/src/bin/ablation_stash_occupancy.rs:
