/root/repo/target/debug/deps/crash_campaign-351ff56546748a3f.d: crates/bench/src/bin/crash_campaign.rs

/root/repo/target/debug/deps/crash_campaign-351ff56546748a3f: crates/bench/src/bin/crash_campaign.rs

crates/bench/src/bin/crash_campaign.rs:
