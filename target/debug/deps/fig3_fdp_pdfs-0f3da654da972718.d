/root/repo/target/debug/deps/fig3_fdp_pdfs-0f3da654da972718.d: crates/bench/src/bin/fig3_fdp_pdfs.rs

/root/repo/target/debug/deps/fig3_fdp_pdfs-0f3da654da972718: crates/bench/src/bin/fig3_fdp_pdfs.rs

crates/bench/src/bin/fig3_fdp_pdfs.rs:
