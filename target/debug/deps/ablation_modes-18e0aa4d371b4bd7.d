/root/repo/target/debug/deps/ablation_modes-18e0aa4d371b4bd7.d: crates/bench/src/bin/ablation_modes.rs

/root/repo/target/debug/deps/ablation_modes-18e0aa4d371b4bd7: crates/bench/src/bin/ablation_modes.rs

crates/bench/src/bin/ablation_modes.rs:
