/root/repo/target/debug/deps/integration_fault_tolerance-afbb683476a969a1.d: crates/core/../../tests/integration_fault_tolerance.rs

/root/repo/target/debug/deps/integration_fault_tolerance-afbb683476a969a1: crates/core/../../tests/integration_fault_tolerance.rs

crates/core/../../tests/integration_fault_tolerance.rs:
