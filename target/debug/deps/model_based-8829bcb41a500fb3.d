/root/repo/target/debug/deps/model_based-8829bcb41a500fb3.d: crates/oram/tests/model_based.rs

/root/repo/target/debug/deps/model_based-8829bcb41a500fb3: crates/oram/tests/model_based.rs

crates/oram/tests/model_based.rs:
