/root/repo/target/debug/deps/ablation_modes-e1ceba297aa1a4ce.d: crates/bench/src/bin/ablation_modes.rs

/root/repo/target/debug/deps/ablation_modes-e1ceba297aa1a4ce: crates/bench/src/bin/ablation_modes.rs

crates/bench/src/bin/ablation_modes.rs:
