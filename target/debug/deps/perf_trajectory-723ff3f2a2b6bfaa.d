/root/repo/target/debug/deps/perf_trajectory-723ff3f2a2b6bfaa.d: crates/bench/src/bin/perf_trajectory.rs

/root/repo/target/debug/deps/perf_trajectory-723ff3f2a2b6bfaa: crates/bench/src/bin/perf_trajectory.rs

crates/bench/src/bin/perf_trajectory.rs:
