/root/repo/target/release/libfedora_par.rlib: /root/repo/crates/par/src/lib.rs
