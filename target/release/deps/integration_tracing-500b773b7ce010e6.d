/root/repo/target/release/deps/integration_tracing-500b773b7ce010e6.d: crates/core/../../tests/integration_tracing.rs Cargo.toml

/root/repo/target/release/deps/libintegration_tracing-500b773b7ce010e6.rmeta: crates/core/../../tests/integration_tracing.rs Cargo.toml

crates/core/../../tests/integration_tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
