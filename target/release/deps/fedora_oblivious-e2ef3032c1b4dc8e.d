/root/repo/target/release/deps/fedora_oblivious-e2ef3032c1b4dc8e.d: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs Cargo.toml

/root/repo/target/release/deps/libfedora_oblivious-e2ef3032c1b4dc8e.rmeta: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs Cargo.toml

crates/oblivious/src/lib.rs:
crates/oblivious/src/choice.rs:
crates/oblivious/src/scan.rs:
crates/oblivious/src/select.rs:
crates/oblivious/src/sort.rs:
crates/oblivious/src/sorted_union.rs:
crates/oblivious/src/union.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
