/root/repo/target/release/deps/ablation_strawmen-afcbc4b6667bfe25.d: crates/bench/src/bin/ablation_strawmen.rs

/root/repo/target/release/deps/ablation_strawmen-afcbc4b6667bfe25: crates/bench/src/bin/ablation_strawmen.rs

crates/bench/src/bin/ablation_strawmen.rs:
