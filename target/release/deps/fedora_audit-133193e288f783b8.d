/root/repo/target/release/deps/fedora_audit-133193e288f783b8.d: crates/bench/src/bin/fedora_audit.rs

/root/repo/target/release/deps/fedora_audit-133193e288f783b8: crates/bench/src/bin/fedora_audit.rs

crates/bench/src/bin/fedora_audit.rs:
