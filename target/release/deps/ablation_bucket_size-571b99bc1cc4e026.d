/root/repo/target/release/deps/ablation_bucket_size-571b99bc1cc4e026.d: crates/bench/src/bin/ablation_bucket_size.rs

/root/repo/target/release/deps/ablation_bucket_size-571b99bc1cc4e026: crates/bench/src/bin/ablation_bucket_size.rs

crates/bench/src/bin/ablation_bucket_size.rs:
