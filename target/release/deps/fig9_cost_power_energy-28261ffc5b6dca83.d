/root/repo/target/release/deps/fig9_cost_power_energy-28261ffc5b6dca83.d: crates/bench/src/bin/fig9_cost_power_energy.rs

/root/repo/target/release/deps/fig9_cost_power_energy-28261ffc5b6dca83: crates/bench/src/bin/fig9_cost_power_energy.rs

crates/bench/src/bin/fig9_cost_power_energy.rs:
