/root/repo/target/release/deps/fedora_net-64602ae74b72628d.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

/root/repo/target/release/deps/fedora_net-64602ae74b72628d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/proto.rs:
crates/net/src/server.rs:
