/root/repo/target/release/deps/proptest-e3961beb3961b6bd.d: .local-deps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e3961beb3961b6bd.rlib: .local-deps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e3961beb3961b6bd.rmeta: .local-deps/proptest/src/lib.rs

.local-deps/proptest/src/lib.rs:
