/root/repo/target/release/deps/ablation_strawmen-f20f2379fd18ad7f.d: crates/bench/src/bin/ablation_strawmen.rs

/root/repo/target/release/deps/ablation_strawmen-f20f2379fd18ad7f: crates/bench/src/bin/ablation_strawmen.rs

crates/bench/src/bin/ablation_strawmen.rs:
