/root/repo/target/release/deps/criterion-87828291184280d5.d: .local-deps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-87828291184280d5.rlib: .local-deps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-87828291184280d5.rmeta: .local-deps/criterion/src/lib.rs

.local-deps/criterion/src/lib.rs:
