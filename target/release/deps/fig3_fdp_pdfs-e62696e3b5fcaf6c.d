/root/repo/target/release/deps/fig3_fdp_pdfs-e62696e3b5fcaf6c.d: crates/bench/src/bin/fig3_fdp_pdfs.rs

/root/repo/target/release/deps/fig3_fdp_pdfs-e62696e3b5fcaf6c: crates/bench/src/bin/fig3_fdp_pdfs.rs

crates/bench/src/bin/fig3_fdp_pdfs.rs:
