/root/repo/target/release/deps/oblivious_union-f95033f5a0475850.d: crates/bench/benches/oblivious_union.rs Cargo.toml

/root/repo/target/release/deps/liboblivious_union-f95033f5a0475850.rmeta: crates/bench/benches/oblivious_union.rs Cargo.toml

crates/bench/benches/oblivious_union.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
