/root/repo/target/release/deps/fedora_par-a49e4d4effffd1f6.d: crates/par/src/lib.rs

/root/repo/target/release/deps/fedora_par-a49e4d4effffd1f6: crates/par/src/lib.rs

crates/par/src/lib.rs:
