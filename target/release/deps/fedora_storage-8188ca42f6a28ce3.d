/root/repo/target/release/deps/fedora_storage-8188ca42f6a28ce3.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

/root/repo/target/release/deps/fedora_storage-8188ca42f6a28ce3: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/dram.rs:
crates/storage/src/durable.rs:
crates/storage/src/fault.rs:
crates/storage/src/file_ssd.rs:
crates/storage/src/profile.rs:
crates/storage/src/scratchpad.rs:
crates/storage/src/ssd.rs:
crates/storage/src/stats.rs:
crates/storage/src/telemetry.rs:
crates/storage/src/trace_recorder.rs:
