/root/repo/target/release/deps/crash_campaign-c8c3db6cae37d4c4.d: crates/bench/src/bin/crash_campaign.rs Cargo.toml

/root/repo/target/release/deps/libcrash_campaign-c8c3db6cae37d4c4.rmeta: crates/bench/src/bin/crash_campaign.rs Cargo.toml

crates/bench/src/bin/crash_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
