/root/repo/target/release/deps/integration_tracing-94ca64cf35c33673.d: crates/core/../../tests/integration_tracing.rs

/root/repo/target/release/deps/integration_tracing-94ca64cf35c33673: crates/core/../../tests/integration_tracing.rs

crates/core/../../tests/integration_tracing.rs:
