/root/repo/target/release/deps/table1_fl_accuracy-68047eeaf5d7b48d.d: crates/bench/src/bin/table1_fl_accuracy.rs

/root/repo/target/release/deps/table1_fl_accuracy-68047eeaf5d7b48d: crates/bench/src/bin/table1_fl_accuracy.rs

crates/bench/src/bin/table1_fl_accuracy.rs:
