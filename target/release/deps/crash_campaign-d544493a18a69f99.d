/root/repo/target/release/deps/crash_campaign-d544493a18a69f99.d: crates/bench/src/bin/crash_campaign.rs

/root/repo/target/release/deps/crash_campaign-d544493a18a69f99: crates/bench/src/bin/crash_campaign.rs

crates/bench/src/bin/crash_campaign.rs:
