/root/repo/target/release/deps/fig10_scratchpad-c7d7f32f337b1f44.d: crates/bench/src/bin/fig10_scratchpad.rs

/root/repo/target/release/deps/fig10_scratchpad-c7d7f32f337b1f44: crates/bench/src/bin/fig10_scratchpad.rs

crates/bench/src/bin/fig10_scratchpad.rs:
