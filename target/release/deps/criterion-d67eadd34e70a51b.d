/root/repo/target/release/deps/criterion-d67eadd34e70a51b.d: .local-deps/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-d67eadd34e70a51b.rmeta: .local-deps/criterion/src/lib.rs

.local-deps/criterion/src/lib.rs:
