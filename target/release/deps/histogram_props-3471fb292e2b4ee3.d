/root/repo/target/release/deps/histogram_props-3471fb292e2b4ee3.d: crates/telemetry/tests/histogram_props.rs Cargo.toml

/root/repo/target/release/deps/libhistogram_props-3471fb292e2b4ee3.rmeta: crates/telemetry/tests/histogram_props.rs Cargo.toml

crates/telemetry/tests/histogram_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
