/root/repo/target/release/deps/histogram_props-1cb7e04c8a99ba81.d: crates/telemetry/tests/histogram_props.rs

/root/repo/target/release/deps/histogram_props-1cb7e04c8a99ba81: crates/telemetry/tests/histogram_props.rs

crates/telemetry/tests/histogram_props.rs:
