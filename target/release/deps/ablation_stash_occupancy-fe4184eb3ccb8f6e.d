/root/repo/target/release/deps/ablation_stash_occupancy-fe4184eb3ccb8f6e.d: crates/bench/src/bin/ablation_stash_occupancy.rs

/root/repo/target/release/deps/ablation_stash_occupancy-fe4184eb3ccb8f6e: crates/bench/src/bin/ablation_stash_occupancy.rs

crates/bench/src/bin/ablation_stash_occupancy.rs:
