/root/repo/target/release/deps/crossbeam-74dca9db3eb44ffe.d: .local-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-74dca9db3eb44ffe.rlib: .local-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-74dca9db3eb44ffe.rmeta: .local-deps/crossbeam/src/lib.rs

.local-deps/crossbeam/src/lib.rs:
