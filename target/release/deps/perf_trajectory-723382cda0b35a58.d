/root/repo/target/release/deps/perf_trajectory-723382cda0b35a58.d: crates/bench/src/bin/perf_trajectory.rs Cargo.toml

/root/repo/target/release/deps/libperf_trajectory-723382cda0b35a58.rmeta: crates/bench/src/bin/perf_trajectory.rs Cargo.toml

crates/bench/src/bin/perf_trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
