/root/repo/target/release/deps/fault_campaign-58641ef0aeb4d57c.d: crates/bench/src/bin/fault_campaign.rs Cargo.toml

/root/repo/target/release/deps/libfault_campaign-58641ef0aeb4d57c.rmeta: crates/bench/src/bin/fault_campaign.rs Cargo.toml

crates/bench/src/bin/fault_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
