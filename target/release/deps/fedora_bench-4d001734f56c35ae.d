/root/repo/target/release/deps/fedora_bench-4d001734f56c35ae.d: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libfedora_bench-4d001734f56c35ae.rmeta: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/netload.rs:
crates/bench/src/outopts.rs:
crates/bench/src/trajectory.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
