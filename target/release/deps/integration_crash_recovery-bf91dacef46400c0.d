/root/repo/target/release/deps/integration_crash_recovery-bf91dacef46400c0.d: crates/core/../../tests/integration_crash_recovery.rs Cargo.toml

/root/repo/target/release/deps/libintegration_crash_recovery-bf91dacef46400c0.rmeta: crates/core/../../tests/integration_crash_recovery.rs Cargo.toml

crates/core/../../tests/integration_crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
