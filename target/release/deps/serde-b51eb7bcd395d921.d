/root/repo/target/release/deps/serde-b51eb7bcd395d921.d: .local-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b51eb7bcd395d921.rlib: .local-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b51eb7bcd395d921.rmeta: .local-deps/serde/src/lib.rs

.local-deps/serde/src/lib.rs:
