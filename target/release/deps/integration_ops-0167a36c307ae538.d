/root/repo/target/release/deps/integration_ops-0167a36c307ae538.d: crates/net/tests/integration_ops.rs

/root/repo/target/release/deps/integration_ops-0167a36c307ae538: crates/net/tests/integration_ops.rs

crates/net/tests/integration_ops.rs:
