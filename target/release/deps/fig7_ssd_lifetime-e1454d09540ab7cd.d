/root/repo/target/release/deps/fig7_ssd_lifetime-e1454d09540ab7cd.d: crates/bench/src/bin/fig7_ssd_lifetime.rs Cargo.toml

/root/repo/target/release/deps/libfig7_ssd_lifetime-e1454d09540ab7cd.rmeta: crates/bench/src/bin/fig7_ssd_lifetime.rs Cargo.toml

crates/bench/src/bin/fig7_ssd_lifetime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
