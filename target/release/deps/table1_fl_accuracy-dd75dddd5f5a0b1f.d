/root/repo/target/release/deps/table1_fl_accuracy-dd75dddd5f5a0b1f.d: crates/bench/src/bin/table1_fl_accuracy.rs Cargo.toml

/root/repo/target/release/deps/libtable1_fl_accuracy-dd75dddd5f5a0b1f.rmeta: crates/bench/src/bin/table1_fl_accuracy.rs Cargo.toml

crates/bench/src/bin/table1_fl_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
