/root/repo/target/release/deps/ablation_modes-5b11d9775d46f5d2.d: crates/bench/src/bin/ablation_modes.rs Cargo.toml

/root/repo/target/release/deps/libablation_modes-5b11d9775d46f5d2.rmeta: crates/bench/src/bin/ablation_modes.rs Cargo.toml

crates/bench/src/bin/ablation_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
