/root/repo/target/release/deps/integration_fault_tolerance-e82f51e7438dba55.d: crates/core/../../tests/integration_fault_tolerance.rs

/root/repo/target/release/deps/integration_fault_tolerance-e82f51e7438dba55: crates/core/../../tests/integration_fault_tolerance.rs

crates/core/../../tests/integration_fault_tolerance.rs:
