/root/repo/target/release/deps/fedora_fl-bc5a52b89d2e703e.d: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs Cargo.toml

/root/repo/target/release/deps/libfedora_fl-bc5a52b89d2e703e.rmeta: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs Cargo.toml

crates/fl/src/lib.rs:
crates/fl/src/attention.rs:
crates/fl/src/client.rs:
crates/fl/src/datasets.rs:
crates/fl/src/linalg.rs:
crates/fl/src/metrics.rs:
crates/fl/src/model.rs:
crates/fl/src/modes.rs:
crates/fl/src/secagg.rs:
crates/fl/src/sim.rs:
crates/fl/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
