/root/repo/target/release/deps/ablation_stash_occupancy-e3e9ddc9740e4bd8.d: crates/bench/src/bin/ablation_stash_occupancy.rs

/root/repo/target/release/deps/ablation_stash_occupancy-e3e9ddc9740e4bd8: crates/bench/src/bin/ablation_stash_occupancy.rs

crates/bench/src/bin/ablation_stash_occupancy.rs:
