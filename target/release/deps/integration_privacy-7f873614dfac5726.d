/root/repo/target/release/deps/integration_privacy-7f873614dfac5726.d: crates/core/../../tests/integration_privacy.rs Cargo.toml

/root/repo/target/release/deps/libintegration_privacy-7f873614dfac5726.rmeta: crates/core/../../tests/integration_privacy.rs Cargo.toml

crates/core/../../tests/integration_privacy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
