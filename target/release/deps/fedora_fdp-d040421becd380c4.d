/root/repo/target/release/deps/fedora_fdp-d040421becd380c4.d: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs Cargo.toml

/root/repo/target/release/deps/libfedora_fdp-d040421becd380c4.rmeta: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs Cargo.toml

crates/fdp/src/lib.rs:
crates/fdp/src/accountant.rs:
crates/fdp/src/chunking.rs:
crates/fdp/src/mechanism.rs:
crates/fdp/src/shape.rs:
crates/fdp/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
