/root/repo/target/release/deps/fedora_net-20457554d25bcb3c.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs Cargo.toml

/root/repo/target/release/deps/libfedora_net-20457554d25bcb3c.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/proto.rs:
crates/net/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
