/root/repo/target/release/deps/ablation_bucket_size-a85830d11bfb1061.d: crates/bench/src/bin/ablation_bucket_size.rs

/root/repo/target/release/deps/ablation_bucket_size-a85830d11bfb1061: crates/bench/src/bin/ablation_bucket_size.rs

crates/bench/src/bin/ablation_bucket_size.rs:
