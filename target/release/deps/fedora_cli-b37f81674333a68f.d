/root/repo/target/release/deps/fedora_cli-b37f81674333a68f.d: crates/net/src/bin/fedora-cli.rs

/root/repo/target/release/deps/fedora_cli-b37f81674333a68f: crates/net/src/bin/fedora-cli.rs

crates/net/src/bin/fedora-cli.rs:
