/root/repo/target/release/deps/fig7_ssd_lifetime-ceb3db08663b1a60.d: crates/bench/src/bin/fig7_ssd_lifetime.rs

/root/repo/target/release/deps/fig7_ssd_lifetime-ceb3db08663b1a60: crates/bench/src/bin/fig7_ssd_lifetime.rs

crates/bench/src/bin/fig7_ssd_lifetime.rs:
