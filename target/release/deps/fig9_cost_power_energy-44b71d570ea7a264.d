/root/repo/target/release/deps/fig9_cost_power_energy-44b71d570ea7a264.d: crates/bench/src/bin/fig9_cost_power_energy.rs Cargo.toml

/root/repo/target/release/deps/libfig9_cost_power_energy-44b71d570ea7a264.rmeta: crates/bench/src/bin/fig9_cost_power_energy.rs Cargo.toml

crates/bench/src/bin/fig9_cost_power_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
