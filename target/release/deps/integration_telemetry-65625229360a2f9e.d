/root/repo/target/release/deps/integration_telemetry-65625229360a2f9e.d: crates/core/../../tests/integration_telemetry.rs

/root/repo/target/release/deps/integration_telemetry-65625229360a2f9e: crates/core/../../tests/integration_telemetry.rs

crates/core/../../tests/integration_telemetry.rs:
