/root/repo/target/release/deps/integration_crash_recovery-881b85f5fdd76e17.d: crates/core/../../tests/integration_crash_recovery.rs

/root/repo/target/release/deps/integration_crash_recovery-881b85f5fdd76e17: crates/core/../../tests/integration_crash_recovery.rs

crates/core/../../tests/integration_crash_recovery.rs:
