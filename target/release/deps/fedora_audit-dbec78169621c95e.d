/root/repo/target/release/deps/fedora_audit-dbec78169621c95e.d: crates/bench/src/bin/fedora_audit.rs Cargo.toml

/root/repo/target/release/deps/libfedora_audit-dbec78169621c95e.rmeta: crates/bench/src/bin/fedora_audit.rs Cargo.toml

crates/bench/src/bin/fedora_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
