/root/repo/target/release/deps/ablation_modes-f7504b347cb31ca3.d: crates/bench/src/bin/ablation_modes.rs

/root/repo/target/release/deps/ablation_modes-f7504b347cb31ca3: crates/bench/src/bin/ablation_modes.rs

crates/bench/src/bin/ablation_modes.rs:
