/root/repo/target/release/deps/perf_trajectory-ead5940793410a7f.d: crates/bench/src/bin/perf_trajectory.rs

/root/repo/target/release/deps/perf_trajectory-ead5940793410a7f: crates/bench/src/bin/perf_trajectory.rs

crates/bench/src/bin/perf_trajectory.rs:
