/root/repo/target/release/deps/rand-b444832d1addd6dd.d: .local-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-b444832d1addd6dd.rmeta: .local-deps/rand/src/lib.rs

.local-deps/rand/src/lib.rs:
