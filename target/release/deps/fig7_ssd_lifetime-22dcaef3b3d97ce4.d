/root/repo/target/release/deps/fig7_ssd_lifetime-22dcaef3b3d97ce4.d: crates/bench/src/bin/fig7_ssd_lifetime.rs

/root/repo/target/release/deps/fig7_ssd_lifetime-22dcaef3b3d97ce4: crates/bench/src/bin/fig7_ssd_lifetime.rs

crates/bench/src/bin/fig7_ssd_lifetime.rs:
