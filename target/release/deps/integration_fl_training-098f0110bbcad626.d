/root/repo/target/release/deps/integration_fl_training-098f0110bbcad626.d: crates/core/../../tests/integration_fl_training.rs Cargo.toml

/root/repo/target/release/deps/libintegration_fl_training-098f0110bbcad626.rmeta: crates/core/../../tests/integration_fl_training.rs Cargo.toml

crates/core/../../tests/integration_fl_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
