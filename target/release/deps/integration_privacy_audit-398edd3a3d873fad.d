/root/repo/target/release/deps/integration_privacy_audit-398edd3a3d873fad.d: crates/core/../../tests/integration_privacy_audit.rs Cargo.toml

/root/repo/target/release/deps/libintegration_privacy_audit-398edd3a3d873fad.rmeta: crates/core/../../tests/integration_privacy_audit.rs Cargo.toml

crates/core/../../tests/integration_privacy_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
