/root/repo/target/release/deps/fault_campaign-69a94dee8daa24ac.d: crates/bench/src/bin/fault_campaign.rs

/root/repo/target/release/deps/fault_campaign-69a94dee8daa24ac: crates/bench/src/bin/fault_campaign.rs

crates/bench/src/bin/fault_campaign.rs:
