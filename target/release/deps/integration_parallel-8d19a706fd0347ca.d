/root/repo/target/release/deps/integration_parallel-8d19a706fd0347ca.d: crates/core/../../tests/integration_parallel.rs

/root/repo/target/release/deps/integration_parallel-8d19a706fd0347ca: crates/core/../../tests/integration_parallel.rs

crates/core/../../tests/integration_parallel.rs:
