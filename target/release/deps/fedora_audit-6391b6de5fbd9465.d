/root/repo/target/release/deps/fedora_audit-6391b6de5fbd9465.d: crates/bench/src/bin/fedora_audit.rs

/root/repo/target/release/deps/fedora_audit-6391b6de5fbd9465: crates/bench/src/bin/fedora_audit.rs

crates/bench/src/bin/fedora_audit.rs:
