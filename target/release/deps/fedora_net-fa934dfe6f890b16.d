/root/repo/target/release/deps/fedora_net-fa934dfe6f890b16.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs Cargo.toml

/root/repo/target/release/deps/libfedora_net-fa934dfe6f890b16.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/proto.rs:
crates/net/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
