/root/repo/target/release/deps/fedora_cli-7f00a8d5e39e7175.d: crates/net/src/bin/fedora-cli.rs Cargo.toml

/root/repo/target/release/deps/libfedora_cli-7f00a8d5e39e7175.rmeta: crates/net/src/bin/fedora-cli.rs Cargo.toml

crates/net/src/bin/fedora-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
