/root/repo/target/release/deps/fedora_par-815c246e86ca5566.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libfedora_par-815c246e86ca5566.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
