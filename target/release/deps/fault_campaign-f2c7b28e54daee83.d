/root/repo/target/release/deps/fault_campaign-f2c7b28e54daee83.d: crates/bench/src/bin/fault_campaign.rs Cargo.toml

/root/repo/target/release/deps/libfault_campaign-f2c7b28e54daee83.rmeta: crates/bench/src/bin/fault_campaign.rs Cargo.toml

crates/bench/src/bin/fault_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
