/root/repo/target/release/deps/oram_access-6bae73710b2e673d.d: crates/bench/benches/oram_access.rs Cargo.toml

/root/repo/target/release/deps/liboram_access-6bae73710b2e673d.rmeta: crates/bench/benches/oram_access.rs Cargo.toml

crates/bench/benches/oram_access.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
