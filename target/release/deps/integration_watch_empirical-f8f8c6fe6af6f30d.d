/root/repo/target/release/deps/integration_watch_empirical-f8f8c6fe6af6f30d.d: crates/core/../../tests/integration_watch_empirical.rs Cargo.toml

/root/repo/target/release/deps/libintegration_watch_empirical-f8f8c6fe6af6f30d.rmeta: crates/core/../../tests/integration_watch_empirical.rs Cargo.toml

crates/core/../../tests/integration_watch_empirical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
