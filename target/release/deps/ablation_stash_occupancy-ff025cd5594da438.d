/root/repo/target/release/deps/ablation_stash_occupancy-ff025cd5594da438.d: crates/bench/src/bin/ablation_stash_occupancy.rs Cargo.toml

/root/repo/target/release/deps/libablation_stash_occupancy-ff025cd5594da438.rmeta: crates/bench/src/bin/ablation_stash_occupancy.rs Cargo.toml

crates/bench/src/bin/ablation_stash_occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
