/root/repo/target/release/deps/ablation_modes-e4bd948e840d0b66.d: crates/bench/src/bin/ablation_modes.rs

/root/repo/target/release/deps/ablation_modes-e4bd948e840d0b66: crates/bench/src/bin/ablation_modes.rs

crates/bench/src/bin/ablation_modes.rs:
