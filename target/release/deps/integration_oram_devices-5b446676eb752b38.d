/root/repo/target/release/deps/integration_oram_devices-5b446676eb752b38.d: crates/core/../../tests/integration_oram_devices.rs

/root/repo/target/release/deps/integration_oram_devices-5b446676eb752b38: crates/core/../../tests/integration_oram_devices.rs

crates/core/../../tests/integration_oram_devices.rs:
