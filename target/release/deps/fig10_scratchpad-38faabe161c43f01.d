/root/repo/target/release/deps/fig10_scratchpad-38faabe161c43f01.d: crates/bench/src/bin/fig10_scratchpad.rs Cargo.toml

/root/repo/target/release/deps/libfig10_scratchpad-38faabe161c43f01.rmeta: crates/bench/src/bin/fig10_scratchpad.rs Cargo.toml

crates/bench/src/bin/fig10_scratchpad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
