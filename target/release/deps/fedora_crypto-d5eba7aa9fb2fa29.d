/root/repo/target/release/deps/fedora_crypto-d5eba7aa9fb2fa29.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs

/root/repo/target/release/deps/libfedora_crypto-d5eba7aa9fb2fa29.rlib: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs

/root/repo/target/release/deps/libfedora_crypto-d5eba7aa9fb2fa29.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/counter.rs:
crates/crypto/src/flat.rs:
crates/crypto/src/group.rs:
crates/crypto/src/integrity.rs:
crates/crypto/src/poly1305.rs:
