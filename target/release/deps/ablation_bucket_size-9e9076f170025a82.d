/root/repo/target/release/deps/ablation_bucket_size-9e9076f170025a82.d: crates/bench/src/bin/ablation_bucket_size.rs Cargo.toml

/root/repo/target/release/deps/libablation_bucket_size-9e9076f170025a82.rmeta: crates/bench/src/bin/ablation_bucket_size.rs Cargo.toml

crates/bench/src/bin/ablation_bucket_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
