/root/repo/target/release/deps/crash_campaign-6f7afe6c8125f71e.d: crates/bench/src/bin/crash_campaign.rs

/root/repo/target/release/deps/crash_campaign-6f7afe6c8125f71e: crates/bench/src/bin/crash_campaign.rs

crates/bench/src/bin/crash_campaign.rs:
