/root/repo/target/release/deps/fedora_fdp-17a10146ab4ff6f8.d: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

/root/repo/target/release/deps/libfedora_fdp-17a10146ab4ff6f8.rlib: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

/root/repo/target/release/deps/libfedora_fdp-17a10146ab4ff6f8.rmeta: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

crates/fdp/src/lib.rs:
crates/fdp/src/accountant.rs:
crates/fdp/src/chunking.rs:
crates/fdp/src/mechanism.rs:
crates/fdp/src/shape.rs:
crates/fdp/src/tuning.rs:
