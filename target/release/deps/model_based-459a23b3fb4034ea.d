/root/repo/target/release/deps/model_based-459a23b3fb4034ea.d: crates/oram/tests/model_based.rs

/root/repo/target/release/deps/model_based-459a23b3fb4034ea: crates/oram/tests/model_based.rs

crates/oram/tests/model_based.rs:
