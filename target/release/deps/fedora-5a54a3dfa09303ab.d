/root/repo/target/release/deps/fedora-5a54a3dfa09303ab.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs Cargo.toml

/root/repo/target/release/deps/libfedora-5a54a3dfa09303ab.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/analytic.rs crates/core/src/audit.rs crates/core/src/audit/empirical.rs crates/core/src/baseline.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/durable.rs crates/core/src/latency.rs crates/core/src/multi.rs crates/core/src/server.rs crates/core/src/training.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/analytic.rs:
crates/core/src/audit.rs:
crates/core/src/audit/empirical.rs:
crates/core/src/baseline.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/durable.rs:
crates/core/src/latency.rs:
crates/core/src/multi.rs:
crates/core/src/server.rs:
crates/core/src/training.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
