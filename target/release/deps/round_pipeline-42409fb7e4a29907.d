/root/repo/target/release/deps/round_pipeline-42409fb7e4a29907.d: crates/bench/benches/round_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libround_pipeline-42409fb7e4a29907.rmeta: crates/bench/benches/round_pipeline.rs Cargo.toml

crates/bench/benches/round_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
