/root/repo/target/release/deps/integration_telemetry-b346964db466f001.d: crates/core/../../tests/integration_telemetry.rs Cargo.toml

/root/repo/target/release/deps/libintegration_telemetry-b346964db466f001.rmeta: crates/core/../../tests/integration_telemetry.rs Cargo.toml

crates/core/../../tests/integration_telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
