/root/repo/target/release/deps/fig3_fdp_pdfs-d75eb223145a4766.d: crates/bench/src/bin/fig3_fdp_pdfs.rs Cargo.toml

/root/repo/target/release/deps/libfig3_fdp_pdfs-d75eb223145a4766.rmeta: crates/bench/src/bin/fig3_fdp_pdfs.rs Cargo.toml

crates/bench/src/bin/fig3_fdp_pdfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
