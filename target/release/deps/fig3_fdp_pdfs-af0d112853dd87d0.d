/root/repo/target/release/deps/fig3_fdp_pdfs-af0d112853dd87d0.d: crates/bench/src/bin/fig3_fdp_pdfs.rs Cargo.toml

/root/repo/target/release/deps/libfig3_fdp_pdfs-af0d112853dd87d0.rmeta: crates/bench/src/bin/fig3_fdp_pdfs.rs Cargo.toml

crates/bench/src/bin/fig3_fdp_pdfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
