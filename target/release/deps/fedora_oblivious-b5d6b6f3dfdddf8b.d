/root/repo/target/release/deps/fedora_oblivious-b5d6b6f3dfdddf8b.d: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

/root/repo/target/release/deps/libfedora_oblivious-b5d6b6f3dfdddf8b.rlib: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

/root/repo/target/release/deps/libfedora_oblivious-b5d6b6f3dfdddf8b.rmeta: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

crates/oblivious/src/lib.rs:
crates/oblivious/src/choice.rs:
crates/oblivious/src/scan.rs:
crates/oblivious/src/select.rs:
crates/oblivious/src/sort.rs:
crates/oblivious/src/sorted_union.rs:
crates/oblivious/src/union.rs:
