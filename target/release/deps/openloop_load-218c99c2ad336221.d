/root/repo/target/release/deps/openloop_load-218c99c2ad336221.d: crates/bench/src/bin/openloop_load.rs Cargo.toml

/root/repo/target/release/deps/libopenloop_load-218c99c2ad336221.rmeta: crates/bench/src/bin/openloop_load.rs Cargo.toml

crates/bench/src/bin/openloop_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
