/root/repo/target/release/deps/fedora_telemetry-cbf18e86aab08f45.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libfedora_telemetry-cbf18e86aab08f45.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libfedora_telemetry-cbf18e86aab08f45.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
