/root/repo/target/release/deps/fedora_storage-bd045d9fcfb82796.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

/root/repo/target/release/deps/libfedora_storage-bd045d9fcfb82796.rlib: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

/root/repo/target/release/deps/libfedora_storage-bd045d9fcfb82796.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/dram.rs:
crates/storage/src/durable.rs:
crates/storage/src/fault.rs:
crates/storage/src/file_ssd.rs:
crates/storage/src/profile.rs:
crates/storage/src/scratchpad.rs:
crates/storage/src/ssd.rs:
crates/storage/src/stats.rs:
crates/storage/src/telemetry.rs:
crates/storage/src/trace_recorder.rs:
