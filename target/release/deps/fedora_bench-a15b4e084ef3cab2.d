/root/repo/target/release/deps/fedora_bench-a15b4e084ef3cab2.d: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libfedora_bench-a15b4e084ef3cab2.rlib: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libfedora_bench-a15b4e084ef3cab2.rmeta: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/netload.rs:
crates/bench/src/outopts.rs:
crates/bench/src/trajectory.rs:
crates/bench/src/workload.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
