/root/repo/target/release/deps/fedora_audit-7564008a99006df1.d: crates/bench/src/bin/fedora_audit.rs Cargo.toml

/root/repo/target/release/deps/libfedora_audit-7564008a99006df1.rmeta: crates/bench/src/bin/fedora_audit.rs Cargo.toml

crates/bench/src/bin/fedora_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
