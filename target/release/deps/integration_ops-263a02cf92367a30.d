/root/repo/target/release/deps/integration_ops-263a02cf92367a30.d: crates/net/tests/integration_ops.rs Cargo.toml

/root/repo/target/release/deps/libintegration_ops-263a02cf92367a30.rmeta: crates/net/tests/integration_ops.rs Cargo.toml

crates/net/tests/integration_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
