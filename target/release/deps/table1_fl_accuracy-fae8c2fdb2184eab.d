/root/repo/target/release/deps/table1_fl_accuracy-fae8c2fdb2184eab.d: crates/bench/src/bin/table1_fl_accuracy.rs Cargo.toml

/root/repo/target/release/deps/libtable1_fl_accuracy-fae8c2fdb2184eab.rmeta: crates/bench/src/bin/table1_fl_accuracy.rs Cargo.toml

crates/bench/src/bin/table1_fl_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
