/root/repo/target/release/deps/buffer_oram-d1b3d058923e72e3.d: crates/bench/benches/buffer_oram.rs Cargo.toml

/root/repo/target/release/deps/libbuffer_oram-d1b3d058923e72e3.rmeta: crates/bench/benches/buffer_oram.rs Cargo.toml

crates/bench/benches/buffer_oram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
