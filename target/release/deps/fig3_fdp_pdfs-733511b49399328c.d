/root/repo/target/release/deps/fig3_fdp_pdfs-733511b49399328c.d: crates/bench/src/bin/fig3_fdp_pdfs.rs

/root/repo/target/release/deps/fig3_fdp_pdfs-733511b49399328c: crates/bench/src/bin/fig3_fdp_pdfs.rs

crates/bench/src/bin/fig3_fdp_pdfs.rs:
