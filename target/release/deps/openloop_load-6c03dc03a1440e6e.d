/root/repo/target/release/deps/openloop_load-6c03dc03a1440e6e.d: crates/bench/src/bin/openloop_load.rs Cargo.toml

/root/repo/target/release/deps/libopenloop_load-6c03dc03a1440e6e.rmeta: crates/bench/src/bin/openloop_load.rs Cargo.toml

crates/bench/src/bin/openloop_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
