/root/repo/target/release/deps/crossbeam-74b9f872c782f62b.d: .local-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-74b9f872c782f62b.rmeta: .local-deps/crossbeam/src/lib.rs

.local-deps/crossbeam/src/lib.rs:
