/root/repo/target/release/deps/integration_privacy-f7c3a79477e6b1c5.d: crates/core/../../tests/integration_privacy.rs

/root/repo/target/release/deps/integration_privacy-f7c3a79477e6b1c5: crates/core/../../tests/integration_privacy.rs

crates/core/../../tests/integration_privacy.rs:
