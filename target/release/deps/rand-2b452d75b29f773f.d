/root/repo/target/release/deps/rand-2b452d75b29f773f.d: .local-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-2b452d75b29f773f.rlib: .local-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-2b452d75b29f773f.rmeta: .local-deps/rand/src/lib.rs

.local-deps/rand/src/lib.rs:
