/root/repo/target/release/deps/ablation_strawmen-2a7946c0cf700572.d: crates/bench/src/bin/ablation_strawmen.rs Cargo.toml

/root/repo/target/release/deps/libablation_strawmen-2a7946c0cf700572.rmeta: crates/bench/src/bin/ablation_strawmen.rs Cargo.toml

crates/bench/src/bin/ablation_strawmen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
