/root/repo/target/release/deps/fedora_oblivious-c15ef8bad1c6cde9.d: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

/root/repo/target/release/deps/fedora_oblivious-c15ef8bad1c6cde9: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs

crates/oblivious/src/lib.rs:
crates/oblivious/src/choice.rs:
crates/oblivious/src/scan.rs:
crates/oblivious/src/select.rs:
crates/oblivious/src/sort.rs:
crates/oblivious/src/sorted_union.rs:
crates/oblivious/src/union.rs:
