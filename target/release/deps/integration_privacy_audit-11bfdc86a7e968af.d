/root/repo/target/release/deps/integration_privacy_audit-11bfdc86a7e968af.d: crates/core/../../tests/integration_privacy_audit.rs

/root/repo/target/release/deps/integration_privacy_audit-11bfdc86a7e968af: crates/core/../../tests/integration_privacy_audit.rs

crates/core/../../tests/integration_privacy_audit.rs:
