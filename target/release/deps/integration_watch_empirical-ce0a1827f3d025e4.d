/root/repo/target/release/deps/integration_watch_empirical-ce0a1827f3d025e4.d: crates/core/../../tests/integration_watch_empirical.rs

/root/repo/target/release/deps/integration_watch_empirical-ce0a1827f3d025e4: crates/core/../../tests/integration_watch_empirical.rs

crates/core/../../tests/integration_watch_empirical.rs:
