/root/repo/target/release/deps/fig10_scratchpad-95e6942d0cc76288.d: crates/bench/src/bin/fig10_scratchpad.rs

/root/repo/target/release/deps/fig10_scratchpad-95e6942d0cc76288: crates/bench/src/bin/fig10_scratchpad.rs

crates/bench/src/bin/fig10_scratchpad.rs:
