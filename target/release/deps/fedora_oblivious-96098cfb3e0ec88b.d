/root/repo/target/release/deps/fedora_oblivious-96098cfb3e0ec88b.d: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs Cargo.toml

/root/repo/target/release/deps/libfedora_oblivious-96098cfb3e0ec88b.rmeta: crates/oblivious/src/lib.rs crates/oblivious/src/choice.rs crates/oblivious/src/scan.rs crates/oblivious/src/select.rs crates/oblivious/src/sort.rs crates/oblivious/src/sorted_union.rs crates/oblivious/src/union.rs Cargo.toml

crates/oblivious/src/lib.rs:
crates/oblivious/src/choice.rs:
crates/oblivious/src/scan.rs:
crates/oblivious/src/select.rs:
crates/oblivious/src/sort.rs:
crates/oblivious/src/sorted_union.rs:
crates/oblivious/src/union.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
