/root/repo/target/release/deps/fedora_telemetry-9b38fd7fb93e1cea.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/fedora_telemetry-9b38fd7fb93e1cea: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
