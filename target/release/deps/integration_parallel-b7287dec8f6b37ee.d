/root/repo/target/release/deps/integration_parallel-b7287dec8f6b37ee.d: crates/core/../../tests/integration_parallel.rs Cargo.toml

/root/repo/target/release/deps/libintegration_parallel-b7287dec8f6b37ee.rmeta: crates/core/../../tests/integration_parallel.rs Cargo.toml

crates/core/../../tests/integration_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
