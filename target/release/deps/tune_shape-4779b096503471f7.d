/root/repo/target/release/deps/tune_shape-4779b096503471f7.d: crates/bench/src/bin/tune_shape.rs

/root/repo/target/release/deps/tune_shape-4779b096503471f7: crates/bench/src/bin/tune_shape.rs

crates/bench/src/bin/tune_shape.rs:
