/root/repo/target/release/deps/integration_fl_training-184c995a6b2236e0.d: crates/core/../../tests/integration_fl_training.rs

/root/repo/target/release/deps/integration_fl_training-184c995a6b2236e0: crates/core/../../tests/integration_fl_training.rs

crates/core/../../tests/integration_fl_training.rs:
