/root/repo/target/release/deps/proptest-4abe1c16b0b0346c.d: .local-deps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4abe1c16b0b0346c.rmeta: .local-deps/proptest/src/lib.rs

.local-deps/proptest/src/lib.rs:
