/root/repo/target/release/deps/fedora_fdp-14cd3940f73c026b.d: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

/root/repo/target/release/deps/fedora_fdp-14cd3940f73c026b: crates/fdp/src/lib.rs crates/fdp/src/accountant.rs crates/fdp/src/chunking.rs crates/fdp/src/mechanism.rs crates/fdp/src/shape.rs crates/fdp/src/tuning.rs

crates/fdp/src/lib.rs:
crates/fdp/src/accountant.rs:
crates/fdp/src/chunking.rs:
crates/fdp/src/mechanism.rs:
crates/fdp/src/shape.rs:
crates/fdp/src/tuning.rs:
