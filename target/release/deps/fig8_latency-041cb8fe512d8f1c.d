/root/repo/target/release/deps/fig8_latency-041cb8fe512d8f1c.d: crates/bench/src/bin/fig8_latency.rs

/root/repo/target/release/deps/fig8_latency-041cb8fe512d8f1c: crates/bench/src/bin/fig8_latency.rs

crates/bench/src/bin/fig8_latency.rs:
