/root/repo/target/release/deps/fedora_cli-2516a751aabec92c.d: crates/net/src/bin/fedora-cli.rs

/root/repo/target/release/deps/fedora_cli-2516a751aabec92c: crates/net/src/bin/fedora-cli.rs

crates/net/src/bin/fedora-cli.rs:
