/root/repo/target/release/deps/model_based-eb821d672e70a4f7.d: crates/oram/tests/model_based.rs Cargo.toml

/root/repo/target/release/deps/libmodel_based-eb821d672e70a4f7.rmeta: crates/oram/tests/model_based.rs Cargo.toml

crates/oram/tests/model_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
