/root/repo/target/release/deps/fedora_cli-3d5cb217002ea9d4.d: crates/net/src/bin/fedora-cli.rs Cargo.toml

/root/repo/target/release/deps/libfedora_cli-3d5cb217002ea9d4.rmeta: crates/net/src/bin/fedora-cli.rs Cargo.toml

crates/net/src/bin/fedora-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
