/root/repo/target/release/deps/fedora_telemetry-de464589b8741522.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libfedora_telemetry-de464589b8741522.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/journal.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
