/root/repo/target/release/deps/fig9_cost_power_energy-37fd87a82b9a6153.d: crates/bench/src/bin/fig9_cost_power_energy.rs

/root/repo/target/release/deps/fig9_cost_power_energy-37fd87a82b9a6153: crates/bench/src/bin/fig9_cost_power_energy.rs

crates/bench/src/bin/fig9_cost_power_energy.rs:
