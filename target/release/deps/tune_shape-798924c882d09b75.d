/root/repo/target/release/deps/tune_shape-798924c882d09b75.d: crates/bench/src/bin/tune_shape.rs Cargo.toml

/root/repo/target/release/deps/libtune_shape-798924c882d09b75.rmeta: crates/bench/src/bin/tune_shape.rs Cargo.toml

crates/bench/src/bin/tune_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
