/root/repo/target/release/deps/fedora_fl-b7771cc9729a70a9.d: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs

/root/repo/target/release/deps/libfedora_fl-b7771cc9729a70a9.rlib: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs

/root/repo/target/release/deps/libfedora_fl-b7771cc9729a70a9.rmeta: crates/fl/src/lib.rs crates/fl/src/attention.rs crates/fl/src/client.rs crates/fl/src/datasets.rs crates/fl/src/linalg.rs crates/fl/src/metrics.rs crates/fl/src/model.rs crates/fl/src/modes.rs crates/fl/src/secagg.rs crates/fl/src/sim.rs crates/fl/src/wire.rs

crates/fl/src/lib.rs:
crates/fl/src/attention.rs:
crates/fl/src/client.rs:
crates/fl/src/datasets.rs:
crates/fl/src/linalg.rs:
crates/fl/src/metrics.rs:
crates/fl/src/model.rs:
crates/fl/src/modes.rs:
crates/fl/src/secagg.rs:
crates/fl/src/sim.rs:
crates/fl/src/wire.rs:
