/root/repo/target/release/deps/fedora_crypto-d937035fd8a546bd.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs Cargo.toml

/root/repo/target/release/deps/libfedora_crypto-d937035fd8a546bd.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/counter.rs crates/crypto/src/flat.rs crates/crypto/src/group.rs crates/crypto/src/integrity.rs crates/crypto/src/poly1305.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/counter.rs:
crates/crypto/src/flat.rs:
crates/crypto/src/group.rs:
crates/crypto/src/integrity.rs:
crates/crypto/src/poly1305.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
