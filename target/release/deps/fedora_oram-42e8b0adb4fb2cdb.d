/root/repo/target/release/deps/fedora_oram-42e8b0adb4fb2cdb.d: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs Cargo.toml

/root/repo/target/release/deps/libfedora_oram-42e8b0adb4fb2cdb.rmeta: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs Cargo.toml

crates/oram/src/lib.rs:
crates/oram/src/block.rs:
crates/oram/src/bucket.rs:
crates/oram/src/buffer.rs:
crates/oram/src/geometry.rs:
crates/oram/src/path_oram.rs:
crates/oram/src/position.rs:
crates/oram/src/raw.rs:
crates/oram/src/recursive.rs:
crates/oram/src/ring.rs:
crates/oram/src/stash.rs:
crates/oram/src/store.rs:
crates/oram/src/vtree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
