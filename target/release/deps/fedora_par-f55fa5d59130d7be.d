/root/repo/target/release/deps/fedora_par-f55fa5d59130d7be.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libfedora_par-f55fa5d59130d7be.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
