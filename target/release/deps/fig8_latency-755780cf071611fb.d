/root/repo/target/release/deps/fig8_latency-755780cf071611fb.d: crates/bench/src/bin/fig8_latency.rs Cargo.toml

/root/repo/target/release/deps/libfig8_latency-755780cf071611fb.rmeta: crates/bench/src/bin/fig8_latency.rs Cargo.toml

crates/bench/src/bin/fig8_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
