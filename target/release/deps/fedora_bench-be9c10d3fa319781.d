/root/repo/target/release/deps/fedora_bench-be9c10d3fa319781.d: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/fedora_bench-be9c10d3fa319781: crates/bench/src/lib.rs crates/bench/src/netload.rs crates/bench/src/outopts.rs crates/bench/src/trajectory.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/netload.rs:
crates/bench/src/outopts.rs:
crates/bench/src/trajectory.rs:
crates/bench/src/workload.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
