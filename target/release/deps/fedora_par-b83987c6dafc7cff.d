/root/repo/target/release/deps/fedora_par-b83987c6dafc7cff.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libfedora_par-b83987c6dafc7cff.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libfedora_par-b83987c6dafc7cff.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
