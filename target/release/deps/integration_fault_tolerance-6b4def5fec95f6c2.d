/root/repo/target/release/deps/integration_fault_tolerance-6b4def5fec95f6c2.d: crates/core/../../tests/integration_fault_tolerance.rs Cargo.toml

/root/repo/target/release/deps/libintegration_fault_tolerance-6b4def5fec95f6c2.rmeta: crates/core/../../tests/integration_fault_tolerance.rs Cargo.toml

crates/core/../../tests/integration_fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
