/root/repo/target/release/deps/fault_campaign-8f614dab5d800237.d: crates/bench/src/bin/fault_campaign.rs

/root/repo/target/release/deps/fault_campaign-8f614dab5d800237: crates/bench/src/bin/fault_campaign.rs

crates/bench/src/bin/fault_campaign.rs:
