/root/repo/target/release/deps/integration_oram_devices-2e1c92a85cec1325.d: crates/core/../../tests/integration_oram_devices.rs Cargo.toml

/root/repo/target/release/deps/libintegration_oram_devices-2e1c92a85cec1325.rmeta: crates/core/../../tests/integration_oram_devices.rs Cargo.toml

crates/core/../../tests/integration_oram_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
