/root/repo/target/release/deps/fig7_ssd_lifetime-990606cb82be087d.d: crates/bench/src/bin/fig7_ssd_lifetime.rs Cargo.toml

/root/repo/target/release/deps/libfig7_ssd_lifetime-990606cb82be087d.rmeta: crates/bench/src/bin/fig7_ssd_lifetime.rs Cargo.toml

crates/bench/src/bin/fig7_ssd_lifetime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
