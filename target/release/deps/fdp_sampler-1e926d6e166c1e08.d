/root/repo/target/release/deps/fdp_sampler-1e926d6e166c1e08.d: crates/bench/benches/fdp_sampler.rs Cargo.toml

/root/repo/target/release/deps/libfdp_sampler-1e926d6e166c1e08.rmeta: crates/bench/benches/fdp_sampler.rs Cargo.toml

crates/bench/benches/fdp_sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
