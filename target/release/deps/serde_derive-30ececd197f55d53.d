/root/repo/target/release/deps/serde_derive-30ececd197f55d53.d: .local-deps/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-30ececd197f55d53.so: .local-deps/serde_derive/src/lib.rs

.local-deps/serde_derive/src/lib.rs:
