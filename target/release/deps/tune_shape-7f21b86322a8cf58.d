/root/repo/target/release/deps/tune_shape-7f21b86322a8cf58.d: crates/bench/src/bin/tune_shape.rs

/root/repo/target/release/deps/tune_shape-7f21b86322a8cf58: crates/bench/src/bin/tune_shape.rs

crates/bench/src/bin/tune_shape.rs:
