/root/repo/target/release/deps/openloop_load-bf6677550d945629.d: crates/bench/src/bin/openloop_load.rs

/root/repo/target/release/deps/openloop_load-bf6677550d945629: crates/bench/src/bin/openloop_load.rs

crates/bench/src/bin/openloop_load.rs:
