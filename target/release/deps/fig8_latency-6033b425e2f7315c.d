/root/repo/target/release/deps/fig8_latency-6033b425e2f7315c.d: crates/bench/src/bin/fig8_latency.rs Cargo.toml

/root/repo/target/release/deps/libfig8_latency-6033b425e2f7315c.rmeta: crates/bench/src/bin/fig8_latency.rs Cargo.toml

crates/bench/src/bin/fig8_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
