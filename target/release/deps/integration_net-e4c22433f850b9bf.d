/root/repo/target/release/deps/integration_net-e4c22433f850b9bf.d: crates/net/tests/integration_net.rs Cargo.toml

/root/repo/target/release/deps/libintegration_net-e4c22433f850b9bf.rmeta: crates/net/tests/integration_net.rs Cargo.toml

crates/net/tests/integration_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
