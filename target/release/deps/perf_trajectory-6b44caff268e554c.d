/root/repo/target/release/deps/perf_trajectory-6b44caff268e554c.d: crates/bench/src/bin/perf_trajectory.rs

/root/repo/target/release/deps/perf_trajectory-6b44caff268e554c: crates/bench/src/bin/perf_trajectory.rs

crates/bench/src/bin/perf_trajectory.rs:
