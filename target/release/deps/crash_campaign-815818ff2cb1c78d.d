/root/repo/target/release/deps/crash_campaign-815818ff2cb1c78d.d: crates/bench/src/bin/crash_campaign.rs Cargo.toml

/root/repo/target/release/deps/libcrash_campaign-815818ff2cb1c78d.rmeta: crates/bench/src/bin/crash_campaign.rs Cargo.toml

crates/bench/src/bin/crash_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
