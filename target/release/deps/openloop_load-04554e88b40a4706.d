/root/repo/target/release/deps/openloop_load-04554e88b40a4706.d: crates/bench/src/bin/openloop_load.rs

/root/repo/target/release/deps/openloop_load-04554e88b40a4706: crates/bench/src/bin/openloop_load.rs

crates/bench/src/bin/openloop_load.rs:
