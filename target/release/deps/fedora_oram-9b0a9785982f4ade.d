/root/repo/target/release/deps/fedora_oram-9b0a9785982f4ade.d: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs

/root/repo/target/release/deps/libfedora_oram-9b0a9785982f4ade.rlib: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs

/root/repo/target/release/deps/libfedora_oram-9b0a9785982f4ade.rmeta: crates/oram/src/lib.rs crates/oram/src/block.rs crates/oram/src/bucket.rs crates/oram/src/buffer.rs crates/oram/src/geometry.rs crates/oram/src/path_oram.rs crates/oram/src/position.rs crates/oram/src/raw.rs crates/oram/src/recursive.rs crates/oram/src/ring.rs crates/oram/src/stash.rs crates/oram/src/store.rs crates/oram/src/vtree.rs

crates/oram/src/lib.rs:
crates/oram/src/block.rs:
crates/oram/src/bucket.rs:
crates/oram/src/buffer.rs:
crates/oram/src/geometry.rs:
crates/oram/src/path_oram.rs:
crates/oram/src/position.rs:
crates/oram/src/raw.rs:
crates/oram/src/recursive.rs:
crates/oram/src/ring.rs:
crates/oram/src/stash.rs:
crates/oram/src/store.rs:
crates/oram/src/vtree.rs:
