/root/repo/target/release/deps/integration_pipeline-41ec946d812e6b3a.d: crates/core/../../tests/integration_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libintegration_pipeline-41ec946d812e6b3a.rmeta: crates/core/../../tests/integration_pipeline.rs Cargo.toml

crates/core/../../tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
