/root/repo/target/release/deps/fig8_latency-578e5221d2cbd33e.d: crates/bench/src/bin/fig8_latency.rs

/root/repo/target/release/deps/fig8_latency-578e5221d2cbd33e: crates/bench/src/bin/fig8_latency.rs

crates/bench/src/bin/fig8_latency.rs:
