/root/repo/target/release/deps/tune_shape-47f79cdff4c47a10.d: crates/bench/src/bin/tune_shape.rs Cargo.toml

/root/repo/target/release/deps/libtune_shape-47f79cdff4c47a10.rmeta: crates/bench/src/bin/tune_shape.rs Cargo.toml

crates/bench/src/bin/tune_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
