/root/repo/target/release/deps/ablation_modes-b3ef4ccf248dfa43.d: crates/bench/src/bin/ablation_modes.rs Cargo.toml

/root/repo/target/release/deps/libablation_modes-b3ef4ccf248dfa43.rmeta: crates/bench/src/bin/ablation_modes.rs Cargo.toml

crates/bench/src/bin/ablation_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
