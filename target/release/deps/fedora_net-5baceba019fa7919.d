/root/repo/target/release/deps/fedora_net-5baceba019fa7919.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

/root/repo/target/release/deps/libfedora_net-5baceba019fa7919.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

/root/repo/target/release/deps/libfedora_net-5baceba019fa7919.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/proto.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/proto.rs:
crates/net/src/server.rs:
