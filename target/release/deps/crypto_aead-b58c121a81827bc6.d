/root/repo/target/release/deps/crypto_aead-b58c121a81827bc6.d: crates/bench/benches/crypto_aead.rs Cargo.toml

/root/repo/target/release/deps/libcrypto_aead-b58c121a81827bc6.rmeta: crates/bench/benches/crypto_aead.rs Cargo.toml

crates/bench/benches/crypto_aead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
