/root/repo/target/release/deps/table1_fl_accuracy-f733ff0fcf149795.d: crates/bench/src/bin/table1_fl_accuracy.rs

/root/repo/target/release/deps/table1_fl_accuracy-f733ff0fcf149795: crates/bench/src/bin/table1_fl_accuracy.rs

crates/bench/src/bin/table1_fl_accuracy.rs:
