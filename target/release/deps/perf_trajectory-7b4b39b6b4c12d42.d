/root/repo/target/release/deps/perf_trajectory-7b4b39b6b4c12d42.d: crates/bench/src/bin/perf_trajectory.rs Cargo.toml

/root/repo/target/release/deps/libperf_trajectory-7b4b39b6b4c12d42.rmeta: crates/bench/src/bin/perf_trajectory.rs Cargo.toml

crates/bench/src/bin/perf_trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
