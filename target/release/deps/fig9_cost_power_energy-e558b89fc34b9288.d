/root/repo/target/release/deps/fig9_cost_power_energy-e558b89fc34b9288.d: crates/bench/src/bin/fig9_cost_power_energy.rs Cargo.toml

/root/repo/target/release/deps/libfig9_cost_power_energy-e558b89fc34b9288.rmeta: crates/bench/src/bin/fig9_cost_power_energy.rs Cargo.toml

crates/bench/src/bin/fig9_cost_power_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
