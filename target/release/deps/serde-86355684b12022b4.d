/root/repo/target/release/deps/serde-86355684b12022b4.d: .local-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-86355684b12022b4.rmeta: .local-deps/serde/src/lib.rs

.local-deps/serde/src/lib.rs:
