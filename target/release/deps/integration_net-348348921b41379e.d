/root/repo/target/release/deps/integration_net-348348921b41379e.d: crates/net/tests/integration_net.rs

/root/repo/target/release/deps/integration_net-348348921b41379e: crates/net/tests/integration_net.rs

crates/net/tests/integration_net.rs:
