/root/repo/target/release/deps/integration_pipeline-b09e4c5266a606d0.d: crates/core/../../tests/integration_pipeline.rs

/root/repo/target/release/deps/integration_pipeline-b09e4c5266a606d0: crates/core/../../tests/integration_pipeline.rs

crates/core/../../tests/integration_pipeline.rs:
