/root/repo/target/release/deps/ablation_bucket_size-ba00446059f28c9b.d: crates/bench/src/bin/ablation_bucket_size.rs Cargo.toml

/root/repo/target/release/deps/libablation_bucket_size-ba00446059f28c9b.rmeta: crates/bench/src/bin/ablation_bucket_size.rs Cargo.toml

crates/bench/src/bin/ablation_bucket_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
