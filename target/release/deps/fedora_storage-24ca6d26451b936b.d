/root/repo/target/release/deps/fedora_storage-24ca6d26451b936b.d: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs Cargo.toml

/root/repo/target/release/deps/libfedora_storage-24ca6d26451b936b.rmeta: crates/storage/src/lib.rs crates/storage/src/device.rs crates/storage/src/dram.rs crates/storage/src/durable.rs crates/storage/src/fault.rs crates/storage/src/file_ssd.rs crates/storage/src/profile.rs crates/storage/src/scratchpad.rs crates/storage/src/ssd.rs crates/storage/src/stats.rs crates/storage/src/telemetry.rs crates/storage/src/trace_recorder.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/device.rs:
crates/storage/src/dram.rs:
crates/storage/src/durable.rs:
crates/storage/src/fault.rs:
crates/storage/src/file_ssd.rs:
crates/storage/src/profile.rs:
crates/storage/src/scratchpad.rs:
crates/storage/src/ssd.rs:
crates/storage/src/stats.rs:
crates/storage/src/telemetry.rs:
crates/storage/src/trace_recorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
