/root/repo/target/release/examples/quickstart-6eeed0ee9a5727e5.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-6eeed0ee9a5727e5.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
