/root/repo/target/release/examples/privacy_tradeoff-a5f6503a192b09a9.d: crates/core/../../examples/privacy_tradeoff.rs Cargo.toml

/root/repo/target/release/examples/libprivacy_tradeoff-a5f6503a192b09a9.rmeta: crates/core/../../examples/privacy_tradeoff.rs Cargo.toml

crates/core/../../examples/privacy_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
