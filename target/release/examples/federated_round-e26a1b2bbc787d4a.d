/root/repo/target/release/examples/federated_round-e26a1b2bbc787d4a.d: crates/core/../../examples/federated_round.rs

/root/repo/target/release/examples/federated_round-e26a1b2bbc787d4a: crates/core/../../examples/federated_round.rs

crates/core/../../examples/federated_round.rs:
