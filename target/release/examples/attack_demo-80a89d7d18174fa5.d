/root/repo/target/release/examples/attack_demo-80a89d7d18174fa5.d: crates/core/../../examples/attack_demo.rs Cargo.toml

/root/repo/target/release/examples/libattack_demo-80a89d7d18174fa5.rmeta: crates/core/../../examples/attack_demo.rs Cargo.toml

crates/core/../../examples/attack_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
