/root/repo/target/release/examples/federated_round-219a253e9deff2be.d: crates/core/../../examples/federated_round.rs Cargo.toml

/root/repo/target/release/examples/libfederated_round-219a253e9deff2be.rmeta: crates/core/../../examples/federated_round.rs Cargo.toml

crates/core/../../examples/federated_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
