/root/repo/target/release/examples/quickstart-dd939a5d2aef9b7d.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-dd939a5d2aef9b7d: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
