/root/repo/target/release/examples/attack_demo-daa4e2428b8e0bd4.d: crates/core/../../examples/attack_demo.rs

/root/repo/target/release/examples/attack_demo-daa4e2428b8e0bd4: crates/core/../../examples/attack_demo.rs

crates/core/../../examples/attack_demo.rs:
