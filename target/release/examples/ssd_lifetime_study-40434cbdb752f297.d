/root/repo/target/release/examples/ssd_lifetime_study-40434cbdb752f297.d: crates/core/../../examples/ssd_lifetime_study.rs

/root/repo/target/release/examples/ssd_lifetime_study-40434cbdb752f297: crates/core/../../examples/ssd_lifetime_study.rs

crates/core/../../examples/ssd_lifetime_study.rs:
