/root/repo/target/release/examples/ssd_lifetime_study-7a06fb285cfb5629.d: crates/core/../../examples/ssd_lifetime_study.rs Cargo.toml

/root/repo/target/release/examples/libssd_lifetime_study-7a06fb285cfb5629.rmeta: crates/core/../../examples/ssd_lifetime_study.rs Cargo.toml

crates/core/../../examples/ssd_lifetime_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
