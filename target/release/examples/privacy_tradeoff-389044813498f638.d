/root/repo/target/release/examples/privacy_tradeoff-389044813498f638.d: crates/core/../../examples/privacy_tradeoff.rs

/root/repo/target/release/examples/privacy_tradeoff-389044813498f638: crates/core/../../examples/privacy_tradeoff.rs

crates/core/../../examples/privacy_tradeoff.rs:
