//! End-to-end fault-tolerance chaos campaigns.
//!
//! These tests drive the full FEDORA pipeline under seeded fault
//! injection and check the system's three fault-tolerance promises:
//!
//! 1. **100 % detection** — every injected bit flip, rollback replay,
//!    and transient maps 1:1 onto a detection counter; nothing slips
//!    through the AEAD + write-counter integrity layer.
//! 2. **Zero silent corruption** — after a multi-round chaos campaign
//!    the recovered table is bit-identical to a fault-free twin run fed
//!    the same requests and gradients (`PrivacyConfig::none()` + FirstK
//!    makes the twins deterministic).
//! 3. **Forward progress** — transactional rounds abort cleanly, roll
//!    back to the round-start snapshot, and the next round proceeds
//!    (degraded for quarantined entries, never wrong).

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::{FedoraError, FedoraServer};
use fedora_crypto::IntegrityError;
use fedora_fl::modes::FedAvg;
use fedora_storage::FaultConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 8;
const NUM_ENTRIES: u64 = 128;
const REQS_PER_ROUND: u64 = 48;

fn init_entry(id: u64) -> Vec<u8> {
    (0..DIM).flat_map(|_| (id as f32).to_le_bytes()).collect()
}

fn test_config() -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(NUM_ENTRIES), 64);
    // k = k_union always: round outcomes depend only on the requests, so
    // a faulty run and a clean twin stay in lockstep.
    config.privacy = PrivacyConfig::none();
    config
}

fn requests(round: u64) -> Vec<u64> {
    (0..REQS_PER_ROUND)
        .map(|i| (i * 7 + round * 13) % NUM_ENTRIES)
        .collect()
}

/// One deterministic round: begin, serve every request, one FedAvg
/// gradient per request, end.
fn run_round(s: &mut FedoraServer, rng: &mut StdRng, round: u64) -> Result<(), FedoraError> {
    let reqs = requests(round);
    s.begin_round(&reqs, rng)?;
    let mode = FedAvg;
    for &id in &reqs {
        let _ = s.serve(id, rng)?;
        let _ = s.aggregate(&mode, id, &[0.125; DIM], 1, rng)?;
    }
    let mut mode = FedAvg;
    s.end_round(&mut mode, 0.5, rng)?;
    Ok(())
}

#[test]
fn chaos_campaign_every_fault_detected_no_silent_corruption() {
    let mut rng_clean = StdRng::seed_from_u64(42);
    let mut rng_faulty = StdRng::seed_from_u64(42);
    let mut clean = FedoraServer::new(test_config(), init_entry, &mut rng_clean);
    let mut config = test_config();
    // A deep retry budget: the campaign asserts zero quarantines, so no
    // bucket may plausibly fail ~17 independent coin flips in a row.
    config.fault_tolerance.max_read_retries = 16;
    let mut faulty = FedoraServer::new(config, init_entry, &mut rng_faulty);

    faulty.arm_faults(FaultConfig::chaos(0xC4A05, 0.25, 0.10, 0.15));
    let mut round = 0u64;
    while round < 400 {
        run_round(&mut clean, &mut rng_clean, round).unwrap();
        run_round(&mut faulty, &mut rng_faulty, round).unwrap();
        round += 1;
        let f = faulty.fault_stats();
        if f.bitflips >= 100 && f.rollbacks >= 10 && f.transients >= 20 {
            break;
        }
    }
    let injected = faulty.fault_stats();
    assert!(injected.bitflips >= 100, "campaign too short: {injected:?}");
    assert!(injected.rollbacks >= 10, "campaign too short: {injected:?}");
    assert!(
        injected.transients >= 20,
        "campaign too short: {injected:?}"
    );

    // 1) 100 % detection, 1:1 with injection, correctly classified.
    let integ = faulty.integrity_stats();
    assert_eq!(integ.detected_corruption, injected.bitflips);
    assert_eq!(integ.detected_rollback, injected.rollbacks);
    assert_eq!(integ.transient_retries, injected.transients);
    assert_eq!(integ.quarantined, 0, "retry budget should absorb the chaos");
    assert!(integ.recovered > 0);
    assert!(faulty.aborts().is_empty());
    // Per-round reports carry the counters and they sum to the totals.
    let per_round: u64 = faulty
        .reports()
        .iter()
        .map(|r| r.integrity.detected_total())
        .sum();
    assert_eq!(per_round, integ.detected_total());

    // 3) Forward progress: every chaos round completed.
    assert_eq!(faulty.reports().len(), round as usize);
    for (c, f) in clean.reports().iter().zip(faulty.reports()) {
        assert_eq!(c.k_requests, f.k_requests);
        assert_eq!(c.k_union, f.k_union);
        assert_eq!(c.k_accesses, f.k_accesses);
        assert_eq!(c.lost, f.lost);
    }

    // 2) Zero silent corruption: with injection off, a scrub is clean and
    // the table matches the fault-free twin bit-for-bit.
    faulty.disarm_faults();
    let scrub = faulty.scrub().unwrap();
    assert!(scrub.is_clean(), "{scrub:?}");
    let t_clean = clean.snapshot_table(&mut rng_clean).unwrap();
    let t_faulty = faulty.snapshot_table(&mut rng_faulty).unwrap();
    assert_eq!(
        t_clean, t_faulty,
        "recovered state must equal the fault-free run"
    );
}

#[test]
fn transactional_abort_then_resume_no_partial_state() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut config = test_config();
    config.fault_tolerance = fedora::config::FaultToleranceConfig::transactional();
    config.fault_tolerance.max_read_retries = 0; // a single transient aborts
    let mut s = FedoraServer::new(config, init_entry, &mut rng);

    for round in 0..2 {
        run_round(&mut s, &mut rng, round).unwrap();
    }
    let before = s.snapshot_table(&mut rng).unwrap();

    s.arm_faults(FaultConfig::chaos(3, 0.0, 0.0, 1.0));
    let err = run_round(&mut s, &mut rng, 2).unwrap_err();
    assert!(
        matches!(
            err,
            FedoraError::RoundAborted {
                kind: IntegrityError::Transient,
                ..
            }
        ),
        "{err}"
    );
    s.disarm_faults();

    assert_eq!(s.aborts().len(), 1);
    assert!(s.aborts()[0].report.integrity.transient_retries >= 1);
    assert_eq!(
        s.reports().len(),
        2,
        "an aborted round is not a completed round"
    );
    assert!(s.quarantined_entries().is_empty());

    // Nothing of the aborted round stuck: the logical table is unchanged.
    let after = s.snapshot_table(&mut rng).unwrap();
    assert_eq!(before, after);

    // The very round that aborted succeeds on retry.
    run_round(&mut s, &mut rng, 2).unwrap();
    assert_eq!(s.reports().len(), 3);
    assert!(s.main_oram().counters_match_schedule());
}

#[test]
fn unrecoverable_damage_degrades_but_never_serves_wrong_bytes() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut config = test_config();
    config.fault_tolerance = fedora::config::FaultToleranceConfig::transactional();
    let mut s = FedoraServer::new(config, init_entry, &mut rng);
    run_round(&mut s, &mut rng, 0).unwrap();

    // Every read attempt is corrupted in flight: the retry budget cannot
    // save the round, so it must abort (and the probe-then-repair path
    // may sacrifice the unreadable bucket).
    s.arm_faults(FaultConfig::chaos(5, 1.0, 0.0, 0.0));
    let err = run_round(&mut s, &mut rng, 1).unwrap_err();
    assert!(matches!(err, FedoraError::RoundAborted { .. }), "{err}");
    s.disarm_faults();

    // Degraded forward progress: later rounds complete; quarantined
    // entries read as lost (None), everything else reads correct bytes
    // (values evolve by the aggregation schedule, so just decode-check).
    let expected_round0: Vec<u64> = requests(0);
    for round in 1..4u64 {
        let reqs = requests(round);
        s.begin_round(&reqs, &mut rng).unwrap();
        for &id in &reqs {
            match s.serve(id, &mut rng).unwrap() {
                Some(bytes) => {
                    let v = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                    // id, or id + 0.0625 if updated in round 0 (48 grads of
                    // 0.125, FedAvg mean 0.125, lr 0.5 — but each entry got
                    // exactly one gradient per appearance → +0.0625 per
                    // round it appeared in).
                    let appearances = expected_round0.iter().filter(|&&x| x == id).count();
                    let base = id as f32;
                    assert!(
                        (v - base).abs() < 1.0 + appearances as f32,
                        "entry {id} decoded to {v}, far from {base}"
                    );
                }
                None => assert!(s.quarantined_entries().contains(&id)),
            }
        }
        let mut mode = FedAvg;
        s.end_round(&mut mode, 0.5, &mut rng).unwrap();
    }
    assert_eq!(s.reports().len(), 4);
    // After the campaign the tree authenticates end to end again.
    let scrub = s.scrub().unwrap();
    assert!(scrub.is_clean(), "{scrub:?}");
}
