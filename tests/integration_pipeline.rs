//! Cross-crate integration: the full FEDORA pipeline vs the Path ORAM+
//! baseline on identical workloads, and the analytic model vs the
//! simulated devices.

use fedora::analytic::{fedora_round, path_oram_plus_round};
use fedora::baseline::PathOramPlus;
use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::modes::{AggregationMode, Eana, FedAdam, FedAvg, LazyDp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: u64 = 1024;
const MAX_REQ: usize = 128;

fn workload(rng: &mut StdRng, rounds: usize) -> Vec<Vec<u64>> {
    (0..rounds)
        .map(|_| {
            (0..64)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range(0..16)
                    } else {
                        rng.gen_range(0..TABLE)
                    }
                })
                .collect()
        })
        .collect()
}

fn fedora_server(privacy: PrivacyConfig, seed: u64) -> (FedoraServer, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), MAX_REQ);
    config.privacy = privacy;
    let server = FedoraServer::new(config, |id| vec![(id % 251) as u8; 32], &mut rng);
    (server, rng)
}

#[test]
fn fedora_and_baseline_serve_identical_data() {
    let (mut fed, mut rng_f) = fedora_server(PrivacyConfig::none(), 1);
    let mut rng_b = StdRng::seed_from_u64(2);
    let config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), MAX_REQ);
    let mut base = PathOramPlus::new(config, |id| vec![(id % 251) as u8; 32], &mut rng_b);

    let mut wl_rng = StdRng::seed_from_u64(3);
    for reqs in workload(&mut wl_rng, 5) {
        fed.begin_round(&reqs, &mut rng_f).expect("fedora round");
        base.begin_round(&reqs, &mut rng_b).expect("baseline round");
        for &id in &reqs {
            let f = fed
                .serve(id, &mut rng_f)
                .expect("serve")
                .expect("eps=inf never loses");
            let b = base.serve(id, &mut rng_b).expect("serve");
            assert_eq!(f, b, "entry {id} diverged between systems");
        }
        let mut mode = FedAvg;
        fed.end_round(&mut mode, 1.0, &mut rng_f)
            .expect("fedora end");
        base.end_round(&mut mode, 1.0, &mut rng_b)
            .expect("baseline end");
    }
}

#[test]
fn fedora_writes_far_less_than_baseline() {
    let (mut fed, mut rng_f) = fedora_server(PrivacyConfig::with_epsilon(1.0), 4);
    let mut rng_b = StdRng::seed_from_u64(5);
    let config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), MAX_REQ);
    let mut base = PathOramPlus::new(config, |_id| vec![0u8; 32], &mut rng_b);

    let mut wl_rng = StdRng::seed_from_u64(6);
    let mut mode = FedAvg;
    for reqs in workload(&mut wl_rng, 10) {
        fed.begin_round(&reqs, &mut rng_f).expect("round");
        fed.end_round(&mut mode, 1.0, &mut rng_f).expect("end");
        base.begin_round(&reqs, &mut rng_b).expect("round");
        base.end_round(&mut mode, 1.0, &mut rng_b).expect("end");
    }
    let fed_w = fed.ssd_stats().bytes_written;
    let base_w = base.ssd_stats().bytes_written;
    assert!(
        base_w > 8 * fed_w,
        "baseline wrote {base_w}, FEDORA {fed_w}: reduction too small"
    );
    // Reads are also lower (dedup), though less dramatically.
    assert!(base.ssd_stats().bytes_read > fed.ssd_stats().bytes_read);
}

#[test]
fn analytic_counts_match_simulated_pipeline_exactly() {
    let (mut fed, mut rng) = fedora_server(PrivacyConfig::none(), 7);
    let mut mode = FedAvg;
    let mut total_k = 0u64;
    let mut wl_rng = StdRng::seed_from_u64(8);
    for reqs in workload(&mut wl_rng, 8) {
        let rep = fed.begin_round(&reqs, &mut rng).expect("round");
        total_k += rep.k_accesses as u64;
        fed.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    let geo = fed.config().geometry;
    let a = fed.config().raw.eviction_period;
    let predicted = fedora_round(&geo, total_k, a, 4096);
    let measured = fed.ssd_stats();
    // Reads: AO paths are exact; EO boundary effects allow ±A accesses of
    // rounding between rounds.
    let pp = geo.num_levels() as u64 * geo.pages_per_bucket(4096);
    assert!(
        (predicted.pages_read as i64 - measured.pages_read as i64).unsigned_abs() <= 2 * pp * 8,
        "pages_read predicted {} vs measured {}",
        predicted.pages_read,
        measured.pages_read
    );
    assert!(
        (predicted.pages_written as i64 - measured.pages_written as i64).unsigned_abs()
            <= 2 * pp * 8,
        "pages_written predicted {} vs measured {}",
        predicted.pages_written,
        measured.pages_written
    );
}

#[test]
fn analytic_baseline_counts_match_exactly() {
    let mut rng = StdRng::seed_from_u64(9);
    let config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), MAX_REQ);
    let geo = config.geometry;
    let mut base = PathOramPlus::new(config, |_| vec![0u8; 32], &mut rng);
    let mut mode = FedAvg;
    let mut wl_rng = StdRng::seed_from_u64(10);
    let rounds = 6;
    for reqs in workload(&mut wl_rng, rounds) {
        base.begin_round(&reqs, &mut rng).expect("round");
        base.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    let predicted = path_oram_plus_round(&geo, (rounds * 64) as u64, 4096);
    let measured = base.ssd_stats();
    assert_eq!(
        predicted.pages_read, measured.pages_read,
        "baseline reads are exact"
    );
    assert_eq!(
        predicted.pages_written, measured.pages_written,
        "baseline writes are exact"
    );
}

#[test]
fn all_aggregation_modes_run_through_pipeline() {
    fn drive<M: AggregationMode>(mut mode: M, seed: u64) -> Vec<f32> {
        let (mut fed, mut rng) = fedora_server(PrivacyConfig::none(), seed);
        for _ in 0..3 {
            fed.begin_round(&[5, 9, 5, 13], &mut rng).expect("round");
            for id in [5u64, 9, 13] {
                fed.aggregate(&mode, id, &[0.25f32; 8], 2, &mut rng)
                    .expect("aggregate");
            }
            fed.end_round(&mut mode, 1.0, &mut rng).expect("end");
        }
        // Read entry 5 back.
        fed.begin_round(&[5], &mut rng).expect("round");
        let bytes = fed.serve(5, &mut rng).expect("serve").expect("present");
        let mut m = FedAvg;
        fed.end_round(&mut m, 1.0, &mut rng).expect("end");
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }

    let fedavg = drive(FedAvg, 20);
    let fedadam = drive(FedAdam::new(), 21);
    let eana = drive(Eana::new(1.0, 0.05), 22);
    let lazydp = drive(LazyDp::new(1.0, 0.05), 23);
    for (name, vals) in [
        ("fedavg", &fedavg),
        ("fedadam", &fedadam),
        ("eana", &eana),
        ("lazydp", &lazydp),
    ] {
        assert!(
            vals.iter().all(|v| v.is_finite()),
            "{name} produced non-finite values"
        );
        assert!(vals.iter().any(|v| *v != 0.0), "{name} made no progress");
    }
    // Adam's normalized steps differ from FedAvg's raw means.
    assert_ne!(fedavg, fedadam);
}

#[test]
fn buffer_capacity_matches_protocol_maximum() {
    // The buffer ORAM is sized to never overflow at max clients × max
    // features (§4.3): a full-capacity round must succeed.
    let (mut fed, mut rng) = fedora_server(PrivacyConfig::perfect(), 24);
    let reqs: Vec<u64> = (0..MAX_REQ as u64).collect();
    let report = fed.begin_round(&reqs, &mut rng).expect("full round fits");
    assert_eq!(report.k_accesses, MAX_REQ, "perfect privacy reads K");
    let mut mode = FedAvg;
    fed.end_round(&mut mode, 1.0, &mut rng).expect("end");
}

#[test]
fn merkle_free_counters_hold_across_many_rounds() {
    let (mut fed, mut rng) = fedora_server(PrivacyConfig::with_epsilon(0.5), 25);
    let mut mode = FedAvg;
    let mut wl_rng = StdRng::seed_from_u64(26);
    for reqs in workload(&mut wl_rng, 12) {
        fed.begin_round(&reqs, &mut rng).expect("round");
        fed.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    assert!(
        fed.main_oram().counters_match_schedule(),
        "every bucket's write counter must be derivable from the root EO counter"
    );
}
