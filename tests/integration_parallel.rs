//! Parallel-pipeline determinism suite: every observable of the round
//! pipeline must be identical at 1 and N worker threads.
//!
//! The worker pool (`fedora-par`) promises that thread count trades
//! wall-clock time only — gradients, round reports (modulo measured
//! latencies), the canonical device access trace, and the obliviousness
//! auditor's verdicts must all be bit-identical whether the pipeline runs
//! serially or fanned out. These tests pin that promise end to end.

use fedora::audit::{audit_twin_inputs, traced_run, twin_inputs};
use fedora::config::{FedoraConfig, ParallelismConfig, PrivacyConfig, TableSpec};
use fedora::server::{FedoraServer, RoundReport};
use fedora::training::{train_with_fedora, TrainingConfig};
use fedora_fl::client::LocalTrainer;
use fedora_fl::datasets::{Dataset, SyntheticConfig};
use fedora_fl::model::{DlrmConfig, DlrmModel, Pooling};
use fedora_fl::modes::FedAvg;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::movielens_like();
    cfg.num_users = 32;
    cfg.num_items = 64;
    cfg.samples_per_user = 6;
    cfg.test_samples = 200;
    Dataset::generate(cfg)
}

fn model(seed: u64) -> DlrmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    DlrmModel::new(
        DlrmConfig {
            num_items: 64,
            embedding_dim: 8,
            hidden_dim: 16,
            use_private_history: true,
            pooling: Pooling::Mean,
        },
        &mut rng,
    )
}

/// Client training fan-out: the merged gradients (and hence the final
/// model weights) are identical at every thread count.
#[test]
fn training_gradients_identical_across_thread_counts() {
    let data = dataset();
    let run = |threads: usize| {
        let mut m = model(31);
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = TrainingConfig {
            users_per_round: 8,
            rounds: 4,
            server_lr: 2.0,
            trainer: LocalTrainer {
                lr: 0.2,
                epochs: 1,
                ..Default::default()
            },
            protection: None,
            threads,
        };
        let out = train_with_fedora(&mut m, &data, &cfg, &mut rng).expect("pipeline");
        let rows: Vec<Vec<f32>> = (0..8).map(|id| m.history_row(id).to_vec()).collect();
        (out, rows)
    };
    let serial = run(1);
    assert!(serial.0.total_accesses > 0);
    for threads in [2, 4] {
        assert_eq!(run(threads), serial, "threads={threads}");
    }
}

/// Everything a [`RoundReport`] counts — accesses, dummies, device stats,
/// integrity events — except the measured wall-times.
fn scrub_latency(mut report: RoundReport) -> RoundReport {
    report.phases = Default::default();
    report.metrics = Default::default();
    report
}

/// Full-round fan-out on one server: per-round reports match modulo
/// latency, and the cumulative non-latency telemetry matches exactly.
#[test]
fn round_reports_identical_modulo_latency() {
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(256), 16);
        config.privacy = PrivacyConfig::with_epsilon(1.0);
        config.parallelism = ParallelismConfig::with_threads(threads);
        let mut server = FedoraServer::with_telemetry(
            config,
            |id| vec![id as u8; 32],
            Registry::new(),
            &mut rng,
        );
        let mut mode = FedAvg;
        let mut reports = Vec::new();
        for round in 0..3u64 {
            let requests: Vec<u64> = (0..12).map(|i| (i * 7 + round) % 256).collect();
            server.begin_round(&requests, &mut rng).expect("begin");
            for &id in &requests {
                if server.serve(id, &mut rng).expect("serve").is_some() {
                    server
                        .aggregate(&mode, id, &[0.5; 8], 1, &mut rng)
                        .expect("aggregate");
                }
            }
            let report = server.end_round(&mut mode, 1.0, &mut rng).expect("end");
            reports.push(scrub_latency(report));
        }
        let snap = server.metrics_snapshot();
        let counters: Vec<Option<u64>> = [
            "storage.pages_read",
            "storage.pages_written",
            "fl.rounds.completed",
            "oram.accesses",
        ]
        .iter()
        .map(|name| snap.counter(name))
        .collect();
        (reports, counters)
    };
    let serial = run(1);
    assert_eq!(serial.0.len(), 3);
    assert!(serial.0[0].k_accesses > 0);
    for threads in [2, 4] {
        assert_eq!(run(threads), serial, "threads={threads}");
    }
}

/// The device access sequence — the thing obliviousness is *about* — is
/// byte-identical at every thread count: parallel host-side crypto must
/// never reorder or resize device I/O.
#[test]
fn access_trace_byte_identical_across_thread_counts() {
    let requests: Vec<u64> = (0..8).collect();
    let trace_for = |threads: usize| {
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 16);
        config.privacy = PrivacyConfig::with_epsilon(1.0);
        config.parallelism = ParallelismConfig::with_threads(threads);
        traced_run(&config, 11, &requests, 2).expect("traced run")
    };
    let serial = trace_for(1);
    assert!(!serial.is_empty());
    for threads in [2, 4] {
        assert_eq!(trace_for(threads), serial, "threads={threads}");
    }
}

/// The twin-run obliviousness auditor reaches the same (passing) verdicts
/// on a pipeline running four worker threads.
#[test]
fn twin_run_auditor_passes_at_four_threads() {
    let (req_a, req_b) = twin_inputs(8);
    for (privacy, expect_exact) in [
        (PrivacyConfig::perfect(), true),
        (PrivacyConfig::with_epsilon(1.0), false),
    ] {
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 16);
        config.privacy = privacy;
        config.parallelism = ParallelismConfig::with_threads(4);
        let outcome = audit_twin_inputs(&config, 13, &req_a, &req_b, 2).expect("audit");
        assert!(
            outcome.verdict.is_pass(),
            "threads=4 must not break obliviousness: {:?}",
            outcome.verdict
        );
        if expect_exact {
            assert!(outcome.canonical_equal, "ε = 0 traces must match exactly");
        }
    }
}
