//! Durable crash-recovery integration tests: the crash-point × fault-mix
//! matrix (every named kill site recovers to the last committed round,
//! with the scrubbed round report byte-identical and ε never
//! under-reported), stale-checkpoint rollback detection, restart-stable
//! chaos seeds, and the twin-run obliviousness auditor running unchanged
//! on crash-recovered servers at 1 and 4 worker threads.

use std::path::{Path, PathBuf};

use fedora::audit::{audit_twin_inputs_with, twin_inputs, AuditVerdict};
use fedora::config::{FedoraConfig, ParallelismConfig, PrivacyConfig, TableSpec};
use fedora::durable::{read_records, CrashPoint, FaultPlan, JournalRecord};
use fedora::server::{FedoraError, FedoraServer, RoundReport};
use fedora_crypto::aead::Key;
use fedora_crypto::IntegrityError;
use fedora_fl::modes::FedAvg;
use fedora_oram::OramError;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ENTRIES: u64 = 128;
const WARMUP_ROUNDS: u64 = 2;

/// A fresh (pre-wiped) per-test state directory.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedora-itest-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn crash_config(privacy: PrivacyConfig, threads: usize) -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(ENTRIES), 32);
    config.privacy = privacy;
    config.parallelism = ParallelismConfig::with_threads(threads);
    config.fault_tolerance.max_read_retries = 16;
    config
}

fn build(config: &FedoraConfig, rng: &mut StdRng) -> FedoraServer {
    FedoraServer::with_telemetry(
        config.clone(),
        |id| vec![(id % 251) as u8; 32],
        Registry::new(),
        rng,
    )
}

fn run_round(server: &mut FedoraServer, round: u64, rng: &mut StdRng) -> Result<(), FedoraError> {
    let reqs: Vec<u64> = (0..8).map(|i| (i * 5 + round * 11) % ENTRIES).collect();
    server.begin_round(&reqs, rng)?;
    let mut mode = FedAvg;
    server.end_round(&mut mode, 1.0, rng)?;
    Ok(())
}

/// Warm-up to exactly `WARMUP_ROUNDS` committed rounds, tolerating (and
/// retrying past) fault-induced aborts.
fn warm_up(server: &mut FedoraServer, rng: &mut StdRng) {
    let mut attempts = 0u64;
    while server.committed_rounds() < WARMUP_ROUNDS {
        attempts += 1;
        assert!(attempts <= 32, "warm-up never committed");
        let _ = run_round(server, attempts, rng);
    }
}

/// The journal's AEAD key (the server's well-known test master key,
/// domain-separated for durability).
fn journal_key() -> Key {
    Key::from_bytes([0x5E; 32]).derive_subkey("durable")
}

/// The tentpole matrix: every crash point × fault mix is killed and
/// restored, and recovery must land exactly on the dying server's
/// committed round with a byte-identical scrubbed report and a
/// never-smaller ε total. Perfect privacy guarantees k = K ≥ 1, so the
/// mid-round crash points always fire.
#[test]
fn crash_point_fault_mix_matrix_recovers_to_last_commit() {
    let mixes: [(&str, f64, f64, f64); 3] = [
        ("clean", 0.0, 0.0, 0.0),
        ("transient", 0.0, 0.0, 0.10),
        ("bitflip+transient", 0.05, 0.0, 0.05),
    ];
    for point in CrashPoint::all() {
        for &(mix, bitflip, rollback, transient) in &mixes {
            let dir = state_dir(&format!("matrix-{point}-{mix}"));
            let config = crash_config(PrivacyConfig::perfect(), 1);
            let plan = FaultPlan {
                master_seed: 97,
                bitflip,
                rollback,
                transient,
            };
            let mut rng = StdRng::seed_from_u64(11);
            let mut server = build(&config, &mut rng);
            server.enable_durability(&dir).expect("enable durability");
            server.set_fault_plan(plan);
            warm_up(&mut server, &mut rng);

            server.arm_crash_point(point);
            let crash = run_round(&mut server, 100, &mut rng);
            assert!(
                matches!(crash, Err(FedoraError::CrashInjected { .. })),
                "{point}/{mix}: expected injected crash, got {crash:?}"
            );
            let want_rounds = server.committed_rounds();
            let want_digest = server.last_committed_report().map(RoundReport::digest);
            let want_report = server.last_committed_report().cloned();
            let dying_eps = server.accountant().total_epsilon();
            drop(server);

            let mut rng2 = StdRng::seed_from_u64(11);
            let mut recovered = build(&config, &mut rng2);
            let landed = recovered.recover(&dir).expect("recover");
            assert_eq!(landed, want_rounds, "{point}/{mix}");
            assert_eq!(
                recovered.last_committed_report().cloned(),
                want_report,
                "{point}/{mix}: scrubbed report must round-trip"
            );
            assert_eq!(
                recovered.last_committed_report().map(RoundReport::digest),
                want_digest,
                "{point}/{mix}: report digest must match"
            );
            assert!(
                recovered.accountant().total_epsilon() >= dying_eps - 1e-9,
                "{point}/{mix}: recovered ε under-reports"
            );

            // The recovered server keeps making committed progress.
            recovered.set_fault_plan(plan);
            let mut attempts = 0u64;
            while recovered.committed_rounds() < landed + 1 {
                attempts += 1;
                assert!(attempts <= 32, "{point}/{mix}: no post-recovery commit");
                let _ = run_round(&mut recovered, 200 + attempts, &mut rng2);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The headline invariant: ε is journaled at round-begin, so a round torn
/// at any point after the begin record is *charged* during recovery —
/// leakage is over-reported, never under-reported.
#[test]
fn torn_round_epsilon_is_charged_conservatively() {
    let dir = state_dir("torn-eps");
    let config = crash_config(PrivacyConfig::with_epsilon(0.7), 1);
    let mut rng = StdRng::seed_from_u64(23);
    let mut server = build(&config, &mut rng);
    server.enable_durability(&dir).expect("enable durability");
    warm_up(&mut server, &mut rng);
    let committed_eps = server.accountant().total_epsilon();

    server.arm_crash_point(CrashPoint::PostJournalBegin);
    let crash = run_round(&mut server, 100, &mut rng);
    assert!(matches!(crash, Err(FedoraError::CrashInjected { .. })));
    drop(server);

    let mut rng2 = StdRng::seed_from_u64(23);
    let mut recovered = build(&config, &mut rng2);
    let landed = recovered.recover(&dir).expect("recover");
    assert_eq!(landed, WARMUP_ROUNDS, "torn round must not commit");
    assert!(
        recovered.accountant().total_epsilon() >= committed_eps + 0.7 - 1e-9,
        "torn round's intended ε must be charged (got {}, committed {committed_eps})",
        recovered.accountant().total_epsilon()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deleting the newest checkpoint and restoring from the older generation
/// is a rollback: the journal's newest commit record postdates the
/// checkpoint, and recovery must refuse with `IntegrityError::Rollback`.
#[test]
fn stale_checkpoint_restore_is_detected_as_rollback() {
    let dir = state_dir("stale");
    let config = crash_config(PrivacyConfig::with_epsilon(0.5), 1);
    let mut rng = StdRng::seed_from_u64(31);
    let mut server = build(&config, &mut rng);
    server.enable_durability(&dir).expect("enable durability");
    for round in 0..3 {
        run_round(&mut server, round, &mut rng).expect("round");
    }
    drop(server);

    let generations = fedora::durable::list_checkpoints(&dir).expect("list");
    let newest = *generations.last().expect("checkpoints exist");
    std::fs::remove_file(dir.join(format!("ckpt-{newest:020}.bin"))).expect("delete newest");

    let mut rng2 = StdRng::seed_from_u64(31);
    let mut recovered = build(&config, &mut rng2);
    let err = recovered
        .recover(&dir)
        .expect_err("stale restore must fail");
    assert!(
        matches!(
            err,
            FedoraError::Oram(OramError::Integrity {
                kind: IntegrityError::Rollback,
                ..
            })
        ),
        "expected rollback detection, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos campaigns are reproducible across restarts: two independent runs
/// under the same [`FaultPlan`] journal identical per-round injector
/// seeds, all derived from the plan — including rounds run *after* a
/// crash/recovery on one side only.
#[test]
fn fault_plan_seeds_replay_identically_across_restart() {
    let plan = FaultPlan {
        master_seed: 0xFEED,
        bitflip: 0.0,
        rollback: 0.0,
        transient: 0.0,
    };
    let begins = |dir: &Path| -> Vec<(u64, Option<u64>)> {
        read_records(dir, &journal_key())
            .expect("read journal")
            .into_iter()
            .filter_map(|r| match r {
                JournalRecord::Begin(b) => Some((b.round, b.fault_seed)),
                JournalRecord::Commit(_) => None,
            })
            .collect()
    };

    // Campaign A: two rounds, crash, recover, one more round.
    let dir_a = state_dir("replay-a");
    let config = crash_config(PrivacyConfig::perfect(), 1);
    let mut rng = StdRng::seed_from_u64(41);
    let mut server = build(&config, &mut rng);
    server.enable_durability(&dir_a).expect("enable durability");
    server.set_fault_plan(plan);
    warm_up(&mut server, &mut rng);
    server.arm_crash_point(CrashPoint::PostJournalBegin);
    assert!(run_round(&mut server, 100, &mut rng).is_err());
    drop(server);
    let mut recovered = build(&config, &mut rng);
    recovered.recover(&dir_a).expect("recover");
    recovered.set_fault_plan(plan);
    run_round(&mut recovered, 100, &mut rng).expect("post-recovery round");
    drop(recovered);

    // Campaign B: three uninterrupted rounds under the same plan.
    let dir_b = state_dir("replay-b");
    let mut rng_b = StdRng::seed_from_u64(43);
    let mut server_b = build(&config, &mut rng_b);
    server_b
        .enable_durability(&dir_b)
        .expect("enable durability");
    server_b.set_fault_plan(plan);
    for round in 0..3 {
        run_round(&mut server_b, round, &mut rng_b).expect("round");
    }
    drop(server_b);

    let seeds_a = begins(&dir_a);
    let seeds_b = begins(&dir_b);
    for (round, seed) in seeds_a.iter().chain(seeds_b.iter()) {
        assert_eq!(
            *seed,
            Some(plan.round_seed(*round)),
            "round {round}: journaled seed must be plan-derived"
        );
    }
    // Same committed round number → same injector seed, on both sides of
    // the restart and across independent campaigns.
    let per_round = |seeds: &[(u64, Option<u64>)], round: u64| -> Vec<Option<u64>> {
        seeds
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, s)| *s)
            .collect()
    };
    for round in 0..3 {
        let a = per_round(&seeds_a, round);
        let b = per_round(&seeds_b, round);
        assert!(!a.is_empty() && !b.is_empty(), "round {round} missing");
        assert_eq!(a[0], b[0], "round {round}: campaigns diverged");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Copies every regular file of a state dir (checkpoints + journal) into
/// a fresh directory — the twin-audit factory hands each traced run its
/// own private copy so both twins start from the identical recovered
/// state.
fn clone_state_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create clone dir");
    for entry in std::fs::read_dir(src).expect("read state dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy state file");
    }
}

/// The acceptance invariant: the twin-run obliviousness auditor passes
/// unchanged on *crash-recovered* servers, at 1 and 4 worker threads.
/// Both twins recover from copies of the same post-crash state dir, so
/// any recovery-induced trace divergence would be flagged.
#[test]
fn twin_audit_passes_on_recovered_servers_at_1_and_4_threads() {
    // Prepare one post-crash state dir: committed rounds, then a kill.
    let base = state_dir("audit-base");
    let prep_config = crash_config(PrivacyConfig::perfect(), 1);
    let mut rng = StdRng::seed_from_u64(53);
    let mut server = build(&prep_config, &mut rng);
    server.enable_durability(&base).expect("enable durability");
    warm_up(&mut server, &mut rng);
    server.arm_crash_point(CrashPoint::MidEvictionWrite);
    assert!(run_round(&mut server, 100, &mut rng).is_err());
    drop(server);

    let (reqs_a, reqs_b) = twin_inputs(8);
    for threads in [1usize, 4] {
        let config = crash_config(PrivacyConfig::perfect(), threads);
        let mut clones = 0u32;
        let base_ref = base.clone();
        let mut factory = |rng: &mut StdRng| -> Result<FedoraServer, FedoraError> {
            clones += 1;
            let dir = state_dir(&format!("audit-t{threads}-{clones}"));
            clone_state_dir(&base_ref, &dir);
            let mut server = build(&config, rng);
            server.recover(&dir)?;
            Ok(server)
        };
        let outcome = audit_twin_inputs_with(&config, &mut factory, 59, &reqs_a, &reqs_b, 2)
            .expect("audit on recovered servers");
        assert!(
            outcome.canonical_equal,
            "threads {threads}: recovered twins diverged"
        );
        assert_eq!(
            outcome.verdict,
            AuditVerdict::Oblivious,
            "threads {threads}: {:?}",
            outcome.verdict
        );
        for clone in 1..=clones {
            let _ = std::fs::remove_dir_all(state_dir(&format!("audit-t{threads}-{clone}")));
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Recovery is idempotent: two independent restores from the same state
/// dir land on the same round, report digest, and ε total.
#[test]
fn recovery_is_idempotent_across_independent_restores() {
    let dir = state_dir("idempotent");
    let config = crash_config(PrivacyConfig::with_epsilon(0.5), 1);
    let mut rng = StdRng::seed_from_u64(67);
    let mut server = build(&config, &mut rng);
    server.enable_durability(&dir).expect("enable durability");
    warm_up(&mut server, &mut rng);
    server.arm_crash_point(CrashPoint::PostJournalBegin);
    let _ = run_round(&mut server, 100, &mut rng);
    drop(server);

    let restore = || {
        let mut rng = StdRng::seed_from_u64(71);
        let mut recovered = build(&config, &mut rng);
        let landed = recovered.recover(&dir).expect("recover");
        (
            landed,
            recovered.last_committed_report().map(RoundReport::digest),
            recovered.accountant().total_epsilon(),
        )
    };
    assert_eq!(restore(), restore());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scrape-side consumer holding a pre-crash snapshot must survive the
/// restart: the recovered server's fresh registry restarts most counters
/// from zero, and `Snapshot::delta` across that reset saturates instead
/// of underflowing or panicking — the live-ops analogue of the
/// telemetry-level reset tests.
#[test]
fn snapshot_delta_across_recover_saturates_counter_resets() {
    let dir = state_dir("delta-reset");
    let config = crash_config(PrivacyConfig::with_epsilon(1.0), 1);
    let mut rng = StdRng::seed_from_u64(17);
    let mut server = build(&config, &mut rng);
    server.enable_durability(&dir).expect("enable durability");
    for round in 0..4 {
        run_round(&mut server, round, &mut rng).expect("round");
    }
    let pre = server.metrics_snapshot();
    assert_eq!(
        pre.histogram("round.latency").map(|h| h.count),
        Some(4),
        "pre-crash server recorded four rounds"
    );
    drop(server);

    let mut rng2 = StdRng::seed_from_u64(17);
    let mut recovered = build(&config, &mut rng2);
    recovered.recover(&dir).expect("recover");
    run_round(&mut recovered, 99, &mut rng2).expect("post-recover round");
    let post = recovered.metrics_snapshot();
    // The histogram restarted: one post-restart round versus four before
    // the crash — the raw difference would underflow.
    let post_lat = post.histogram("round.latency").expect("post histogram");
    assert_eq!(post_lat.count, 1, "fresh registry restarted the histogram");

    let window = post.delta(&pre);
    // rounds_completed is restored by recover() (it re-adds the committed
    // count), so its window is exactly the one real post-restart round.
    assert_eq!(window.counter("fl.rounds.completed"), Some(1));
    // Every windowed counter saturates — none exceeds its post-restart
    // total, and none underflowed into a huge wrapped value.
    for (name, value) in &window.counters {
        let total = post.counter(name).unwrap_or(0);
        assert!(
            *value <= total,
            "{name}: window {value} exceeds post-restart total {total}"
        );
    }
    // The histogram window saturates bucket-wise to an empty-ish window
    // rather than panicking.
    let win_lat = window.histogram("round.latency").expect("window histogram");
    assert!(win_lat.count <= post_lat.count);
    let _ = std::fs::remove_dir_all(&dir);
}
