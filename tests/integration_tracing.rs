//! End-to-end checks of causal span tracing through the live pipeline.
//!
//! Covers the acceptance contract of the tracing PR:
//!
//! 1. One traced federated round yields a complete causal tree — round →
//!    union / ORAM access / buffer load → eviction → simulated device I/O
//!    — connected purely by span/parent ids in the journal.
//! 2. The per-round [`PhaseBreakdown`] partitions the measured round
//!    wall-time exactly (`sum_ns() == round_ns`).
//! 3. A transactionally aborted round closes its `round` span with an
//!    `aborted` attribute instead of leaking it.
//! 4. The Chrome trace-event export round-trips through the bundled JSON
//!    parser with balanced begin/end pairs.
//! 5. With tracing off (the default), the journal carries no `trace.*`
//!    records at all — the PR 2 overhead bound stays intact.

use std::collections::HashMap;

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::{FedoraError, FedoraServer};
use fedora_crypto::IntegrityError;
use fedora_fl::modes::FedAvg;
use fedora_storage::FaultConfig;
use fedora_telemetry::json::{self, Json};
use fedora_telemetry::{Event, Registry, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 8;
const NUM_ENTRIES: u64 = 128;

fn init_entry(id: u64) -> Vec<u8> {
    (0..DIM).flat_map(|_| (id as f32).to_le_bytes()).collect()
}

fn test_config() -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(NUM_ENTRIES), 64);
    config.privacy = PrivacyConfig::none();
    config
}

fn traced_server(rng: &mut StdRng) -> FedoraServer {
    let registry = Registry::new();
    registry.set_tracing(true);
    FedoraServer::with_telemetry(test_config(), init_entry, registry, rng)
}

/// One full round: begin, serve + aggregate every request, end.
fn run_round(server: &mut FedoraServer, rng: &mut StdRng, round: u64) -> Result<(), FedoraError> {
    let reqs: Vec<u64> = (0..48)
        .map(|i| (i * 7 + round * 13) % NUM_ENTRIES)
        .collect();
    server.begin_round(&reqs, rng)?;
    let mode = FedAvg;
    for &id in &reqs {
        let _ = server.serve(id, rng)?;
        let _ = server.aggregate(&mode, id, &[0.125; DIM], 1, rng)?;
    }
    let mut mode = FedAvg;
    server.end_round(&mut mode, 0.5, rng)?;
    Ok(())
}

fn field_u64(event: &Event, name: &str) -> Option<u64> {
    match event.field(name) {
        Some(Value::U64(v)) => Some(*v),
        _ => None,
    }
}

fn field_str<'a>(event: &'a Event, name: &str) -> Option<&'a str> {
    match event.field(name) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Collects `span id → (name, parent id)` from `trace.begin` records.
fn span_index(events: &[Event]) -> HashMap<u64, (String, u64)> {
    events
        .iter()
        .filter(|e| e.name == "trace.begin")
        .map(|e| {
            (
                field_u64(e, "span").expect("begin has span id"),
                (
                    field_str(e, "name").expect("begin has name").to_owned(),
                    field_u64(e, "parent").expect("begin has parent"),
                ),
            )
        })
        .collect()
}

/// Walks parents from `span` to the root, returning the names passed.
fn ancestry(spans: &HashMap<u64, (String, u64)>, mut span: u64) -> Vec<String> {
    let mut names = Vec::new();
    while span != 0 {
        let (name, parent) = spans.get(&span).expect("parent span was begun");
        names.push(name.clone());
        span = *parent;
    }
    names
}

#[test]
fn traced_round_yields_complete_causal_tree() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut server = traced_server(&mut rng);
    run_round(&mut server, &mut rng, 0).expect("traced round");

    let events = server.metrics_snapshot().events;
    let spans = span_index(&events);

    // Every level the acceptance criterion names, connected to the round
    // span purely through parent ids.
    let chain_to_round = |leaf_name: &str| {
        let (&id, _) = spans
            .iter()
            .find(|(_, (name, _))| name == leaf_name)
            .unwrap_or_else(|| panic!("no '{leaf_name}' span in trace"));
        let names = ancestry(&spans, id);
        assert_eq!(
            names.last().map(String::as_str),
            Some("round"),
            "'{leaf_name}' does not chain to the round span: {names:?}"
        );
        names
    };
    let union_chain = chain_to_round("round.union");
    assert!(
        union_chain.contains(&"round.read".to_owned()),
        "union happens inside the read phase: {union_chain:?}"
    );
    chain_to_round("oram.access");
    chain_to_round("buffer.load");
    chain_to_round("buffer.serve");
    chain_to_round("buffer.aggregate");
    chain_to_round("buffer.drain");
    let eviction_chain = chain_to_round("oram.eviction");
    assert!(
        eviction_chain.contains(&"round.write".to_owned()),
        "eviction is deferred to the write phase: {eviction_chain:?}"
    );
    chain_to_round("oram.vtree.bucket");

    // Device-I/O level: simulated SSD latency attributed to an ORAM span.
    let ssd_io = events
        .iter()
        .filter(|e| e.name == "trace.io")
        .find(|e| {
            field_str(e, "name").is_some_and(|n| n.starts_with("storage."))
                && field_u64(e, "parent").is_some_and(|p| p != 0)
        })
        .expect("no storage trace.io event with a parent span");
    let io_parents = ancestry(&spans, field_u64(ssd_io, "parent").expect("parent"));
    assert!(
        io_parents
            .iter()
            .any(|n| n.starts_with("oram.") || n == "round.read"),
        "SSD I/O not attributed to the ORAM: {io_parents:?}"
    );
    assert!(
        field_u64(ssd_io, "dur").expect("dur") > 0,
        "I/O events carry the simulated latency"
    );

    // Begin/end records balance (nothing leaked past end_round).
    let begins = events.iter().filter(|e| e.name == "trace.begin").count();
    let ends = events.iter().filter(|e| e.name == "trace.end").count();
    assert_eq!(begins, ends, "unbalanced span records");
}

#[test]
fn phase_breakdown_partitions_round_wall_time() {
    let mut rng = StdRng::seed_from_u64(22);
    let mut server = traced_server(&mut rng);
    for round in 0..3 {
        run_round(&mut server, &mut rng, round).expect("round");
    }
    for report in server.reports() {
        let phases = report.phases;
        assert!(phases.round_ns > 0, "round wall-time measured");
        assert_eq!(
            phases.sum_ns(),
            phases.round_ns,
            "phases must partition the round exactly: {phases:?}"
        );
        // The phase gauges mirror the last round's breakdown.
    }
    let snap = server.metrics_snapshot();
    let last = server.reports().last().expect("rounds ran");
    assert_eq!(
        snap.gauge("round.phase.round_ns"),
        Some(last.phases.round_ns as f64)
    );
    assert_eq!(
        snap.gauge("round.phase.union_ns"),
        Some(last.phases.union_ns as f64)
    );
}

#[test]
fn aborted_round_closes_span_with_aborted_attribute() {
    let mut rng = StdRng::seed_from_u64(23);
    let registry = Registry::new();
    registry.set_tracing(true);
    let mut config = test_config();
    config.fault_tolerance = fedora::config::FaultToleranceConfig::transactional();
    config.fault_tolerance.max_read_retries = 0; // a single transient aborts
    let mut server = FedoraServer::with_telemetry(config, init_entry, registry, &mut rng);

    run_round(&mut server, &mut rng, 0).expect("clean round");
    server.arm_faults(FaultConfig::chaos(3, 0.0, 0.0, 1.0));
    let err = run_round(&mut server, &mut rng, 1).expect_err("chaos aborts");
    assert!(matches!(
        err,
        FedoraError::RoundAborted {
            kind: IntegrityError::Transient,
            ..
        }
    ));
    server.disarm_faults();

    let events = server.metrics_snapshot().events;
    let spans = span_index(&events);
    let round_ends: Vec<&Event> = events
        .iter()
        .filter(|e| {
            e.name == "trace.end"
                && field_u64(e, "span")
                    .is_some_and(|id| spans.get(&id).is_some_and(|(n, _)| n == "round"))
        })
        .collect();
    assert_eq!(round_ends.len(), 2, "both round spans closed");
    assert_eq!(
        round_ends[0].field("aborted"),
        None,
        "clean round carries no abort marker"
    );
    assert_eq!(
        round_ends[1].field("aborted"),
        Some(&Value::U64(1)),
        "aborted round is marked"
    );
    let begins = events.iter().filter(|e| e.name == "trace.begin").count();
    let ends = events.iter().filter(|e| e.name == "trace.end").count();
    assert_eq!(begins, ends, "abort leaked open spans");
}

#[test]
fn chrome_trace_export_round_trips_and_balances() {
    let mut rng = StdRng::seed_from_u64(24);
    let mut server = traced_server(&mut rng);
    run_round(&mut server, &mut rng, 0).expect("round");

    let text = server.metrics_snapshot().to_chrome_trace();
    let root = json::parse(&text).expect("chrome trace is valid JSON");
    let trace_events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());

    let mut depth_per_tid: HashMap<u64, i64> = HashMap::new();
    let mut saw_round = false;
    let mut saw_io = false;
    for event in trace_events {
        let phase = event.get("ph").and_then(Json::as_str).expect("ph");
        let tid = event.get("tid").and_then(Json::as_u64).expect("tid");
        match phase {
            "B" => {
                *depth_per_tid.entry(tid).or_insert(0) += 1;
                if event.get("name").and_then(Json::as_str) == Some("round") {
                    saw_round = true;
                }
            }
            "E" => {
                let depth = depth_per_tid.entry(tid).or_insert(0);
                *depth -= 1;
                assert!(*depth >= 0, "E before B on tid {tid}");
            }
            "X" => {
                saw_io = true;
                assert!(event.get("dur").and_then(Json::as_f64).expect("dur") >= 0.0);
            }
            "M" => {}
            other => panic!("unexpected phase '{other}'"),
        }
    }
    assert!(saw_round, "round span exported");
    assert!(saw_io, "device I/O slices exported");
    assert!(
        depth_per_tid.values().all(|&d| d == 0),
        "unbalanced B/E in export: {depth_per_tid:?}"
    );
}

#[test]
fn tracing_disabled_emits_no_trace_records() {
    let mut rng = StdRng::seed_from_u64(25);
    // Default server: enabled metrics registry, tracing off.
    let mut server = FedoraServer::new(test_config(), init_entry, &mut rng);
    run_round(&mut server, &mut rng, 0).expect("round");
    let events = server.metrics_snapshot().events;
    assert!(
        events.iter().all(|e| !e.name.starts_with("trace.")),
        "trace records present with tracing disabled"
    );
    // Phase breakdown still measured (it rides on plain clocks, not spans).
    assert!(server.reports()[0].phases.round_ns > 0);
    assert_eq!(
        server.reports()[0].phases.sum_ns(),
        server.reports()[0].phases.round_ns
    );
}
