//! Empirical-ε estimator calibration and watch-plane integration tests:
//! the strawman canary must alarm (exactly once per crossing), the honest
//! ε-FDP mechanism must not, verdicts must not depend on the worker
//! thread count, the `fdp.empirical.*` gauges must stay redacted from
//! default exports, enforcement must refuse rounds after a confident
//! exceedance, and the watch sampler's own overhead must stay under 5% of
//! round wall-time.

use fedora::audit::empirical::{adjacent_inputs, estimate_twin_inputs, EpsilonEstimate};
use fedora::config::{
    FedoraConfig, ParallelismConfig, PrivacyBudgetConfig, PrivacyConfig, TableSpec, WatchConfig,
};
use fedora::server::{FedoraError, FedoraServer};
use fedora_fl::modes::FedAvg;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 8;
const SAMPLES: usize = 16;
const SEED: u64 = 61;

fn estimator_config(privacy: PrivacyConfig, threads: usize) -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 16);
    config.privacy = privacy;
    config.parallelism = ParallelismConfig::with_threads(threads);
    config
}

/// The honest ε-FDP mechanism measures well below its configured ε and
/// never alarms; the §3.2 naive-dedup strawman measures far above the
/// *claimed* ε with a confident interval. Both verdicts are identical at
/// 1 and 4 worker threads — the estimator inherits the pipeline's
/// determinism.
#[test]
fn calibration_verdicts_are_thread_count_invariant() {
    let (a, b) = adjacent_inputs(K);
    let claimed = 1.0;
    let mut honest_estimates = Vec::new();
    let mut strawman_estimates = Vec::new();
    for threads in [1usize, 4] {
        let honest = estimate_twin_inputs(
            &estimator_config(PrivacyConfig::with_epsilon(claimed), threads),
            SEED,
            &a,
            &b,
            SAMPLES,
        )
        .expect("honest estimation");
        assert!(
            !honest.alarm,
            "honest mechanism alarmed at {threads} threads: {:?}",
            honest.estimate
        );
        assert!(
            honest.estimate.eps_hat < claimed,
            "honest eps_hat {} should sit below claimed ε {claimed}",
            honest.estimate.eps_hat
        );
        honest_estimates.push(honest.estimate);

        let strawman = estimate_twin_inputs(
            &estimator_config(PrivacyConfig::none(), threads),
            SEED,
            &a,
            &b,
            SAMPLES,
        )
        .expect("strawman estimation");
        // The strawman claims ε = ∞ (nothing), so judge it against the
        // deployment's claimed ε — the scenario is an implementation
        // leaking more than its configuration admits.
        assert!(
            strawman.estimate.exceeds(claimed),
            "strawman must confidently exceed claimed ε at {threads} threads: {:?}",
            strawman.estimate
        );
        strawman_estimates.push(strawman.estimate);
    }
    assert_eq!(
        honest_estimates[0], honest_estimates[1],
        "honest estimate must not depend on thread count"
    );
    assert_eq!(
        strawman_estimates[0], strawman_estimates[1],
        "strawman estimate must not depend on thread count"
    );
}

/// Feeding a strawman estimate into a server claiming finite ε publishes
/// the `fdp.empirical.*` gauges and journals `watch.alarm.empirical_eps`
/// exactly once per crossing — recording the same exceedance twice does
/// not re-fire the alarm; dropping below the budget re-arms it.
#[test]
fn strawman_estimate_alarms_exactly_once_per_crossing() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);

    let (a, b) = adjacent_inputs(K);
    let strawman = estimate_twin_inputs(
        &estimator_config(PrivacyConfig::none(), 1),
        SEED,
        &a,
        &b,
        SAMPLES,
    )
    .expect("strawman estimation")
    .estimate;
    assert!(strawman.exceeds(1.0), "{strawman:?}");

    server.record_empirical_estimate(strawman);
    server.record_empirical_estimate(strawman);
    let events = server.registry().snapshot();
    assert_eq!(
        events
            .events
            .iter()
            .filter(|e| e.name == "watch.alarm.empirical_eps")
            .count(),
        1,
        "one crossing, one alarm event"
    );
    assert_eq!(server.empirical_estimate(), Some(&strawman));

    // The estimate lands on the audit-only ledger gauges.
    let audit = server.metrics_snapshot().audit_view();
    assert_eq!(audit.gauge("fdp.empirical.eps_hat"), Some(strawman.eps_hat));
    assert_eq!(
        audit.gauge("fdp.empirical.samples"),
        Some(strawman.samples as f64)
    );

    // Recovering below budget re-arms the alarm; the next crossing fires
    // a second event.
    server.record_empirical_estimate(EpsilonEstimate::empty());
    server.record_empirical_estimate(strawman);
    assert_eq!(
        server
            .registry()
            .snapshot()
            .events
            .iter()
            .filter(|e| e.name == "watch.alarm.empirical_eps")
            .count(),
        2
    );
}

/// An honest estimate recorded on the server publishes gauges but never
/// journals an alarm.
#[test]
fn honest_estimate_never_alarms() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    let mut server =
        FedoraServer::with_telemetry(config.clone(), |_| vec![0u8; 32], Registry::new(), &mut rng);
    let (a, b) = adjacent_inputs(K);
    let honest = estimate_twin_inputs(&config, SEED, &a, &b, SAMPLES)
        .expect("honest estimation")
        .estimate;
    server.record_empirical_estimate(honest);
    assert!(server
        .registry()
        .snapshot()
        .events
        .iter()
        .all(|e| e.name != "watch.alarm.empirical_eps"));
}

/// The `fdp.empirical.*` gauges are audit-only: absent from the default
/// JSON/CSV/Prometheus exports, present under `audit_view`.
#[test]
fn empirical_gauges_are_redacted_from_default_exports() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    server.record_empirical_estimate(EpsilonEstimate {
        eps_hat: 0.25,
        ci_lo: 0.1,
        ci_hi: 0.4,
        samples: 9,
    });
    let snap = server.metrics_snapshot();
    for export in [snap.to_json(), snap.to_csv(), snap.to_prometheus_text()] {
        assert!(
            !export.contains("fdp.empirical") && !export.contains("fdp_empirical"),
            "default export must redact empirical gauges: {export}"
        );
    }
    let audit = snap.audit_view();
    assert!(audit.to_json().contains("\"fdp.empirical.eps_hat\":0.25"));
    assert!(audit.to_csv().contains("fdp.empirical.samples"));
    assert!(audit
        .to_prometheus_text()
        .contains("fedora_fdp_empirical_eps_hat 0.25"));
}

/// With budget enforcement on, a confidently-exceeding empirical estimate
/// refuses every subsequent round: the implementation has been *measured*
/// leaking more than the accountant admits, so the accountant's own
/// ceiling is no longer trustworthy.
#[test]
fn enforcement_refuses_rounds_after_empirical_exceedance() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    config.privacy_budget = PrivacyBudgetConfig {
        max_total_epsilon: None,
        enforce: true,
    };
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let requests: Vec<u64> = (0..K as u64).collect();
    let mut mode = FedAvg;

    // Clean round first: enforcement without an exceedance changes nothing.
    server.begin_round(&requests, &mut rng).expect("round 1");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end 1");

    // A confident exceedance (tight CI above the ε = 1 budget)…
    server.record_empirical_estimate(EpsilonEstimate {
        eps_hat: 3.0,
        ci_lo: 2.5,
        ci_hi: 3.5,
        samples: 24,
    });
    // …refuses the next round with the measured value as "spent".
    match server.begin_round(&requests, &mut rng) {
        Err(FedoraError::PrivacyBudgetExhausted { spent, budget }) => {
            assert_eq!(spent, 3.0);
            assert_eq!(budget, 1.0);
        }
        other => panic!("expected PrivacyBudgetExhausted, got {other:?}"),
    }
    let snap = server.registry().snapshot();
    assert!(snap
        .events
        .iter()
        .any(|e| e.name == "privacy.budget.refused"));

    // A retracted estimate (e.g. more samples widen the CI) lifts the
    // refusal: enforcement follows the *current* evidence.
    server.record_empirical_estimate(EpsilonEstimate::empty());
    server.begin_round(&requests, &mut rng).expect("round 2");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end 2");
}

/// The watch plane samples every N committed rounds, windows metrics via
/// snapshot deltas, and journals one `watch.alarm.*` event per tripped
/// rule — and a clean run raises no alarms at all.
#[test]
fn watch_plane_samples_windows_and_alarms() {
    let run = |max_p99: Option<u64>| {
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
        config.watch = WatchConfig {
            every_rounds: 2,
            max_round_p99_ns: max_p99,
            max_shed_ppm: Some(100_000),
            alarm_on_empirical: true,
            empirical_every_rounds: 0,
        };
        let mut server =
            FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
        let requests: Vec<u64> = (0..K as u64).collect();
        let mut mode = FedAvg;
        for _ in 0..4 {
            server.begin_round(&requests, &mut rng).expect("round");
            server.end_round(&mut mode, 1.0, &mut rng).expect("end");
        }
        let report = server.watch_report().expect("watch sampled").clone();
        let events = server.registry().snapshot().events;
        (report, events)
    };

    // Clean run: generous p99 bound, nothing trips.
    let (report, events) = run(Some(u64::MAX));
    assert_eq!(report.round, 4);
    assert_eq!(report.window_rounds, 2, "delta window covers two rounds");
    assert!(report.round_p99_ns > 0);
    assert!(report.alarms.is_empty(), "{:?}", report.alarms);
    assert!(report.total_epsilon > 0.0);
    assert!(events.iter().all(|e| !e.name.starts_with("watch.alarm.")));

    // Impossible p99 bound: every sample trips the latency rule.
    let (report, events) = run(Some(0));
    assert_eq!(report.alarms, vec!["round_p99".to_string()]);
    assert_eq!(
        events
            .iter()
            .filter(|e| e.name == "watch.alarm.round_p99")
            .count(),
        2,
        "one alarm per sample (rounds 2 and 4)"
    );
}

/// The continuous refresher feeds the estimator from live shadow traces:
/// `fdp.empirical.*` updates across ≥ 3 refresh windows of a live run,
/// with no on-demand twin replay anywhere, and the honest mechanism never
/// alarms.
#[test]
fn continuous_refresher_updates_estimate_across_live_windows() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    config.watch = WatchConfig::every(2);
    config.watch.empirical_every_rounds = 1;
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let requests: Vec<u64> = (0..K as u64).collect();
    let mut mode = FedAvg;
    let mut sample_counts = Vec::new();
    for _ in 0..8 {
        server.begin_round(&requests, &mut rng).expect("round");
        server.end_round(&mut mode, 1.0, &mut rng).expect("end");
        sample_counts.push(
            server
                .empirical_estimate()
                .map_or(0, |estimate| estimate.samples),
        );
    }
    // Capture every round, pair every two: estimates land at rounds
    // 2, 4, 6, 8 with growing sample counts — at least three distinct
    // refresh windows updated the estimate.
    assert_eq!(sample_counts, vec![0, 1, 1, 2, 2, 3, 3, 4]);
    let estimate = server.empirical_estimate().expect("live estimate");
    assert!(
        !estimate.exceeds(1.0),
        "honest mechanism must not alarm: {estimate:?}"
    );
    let snap = server.registry().snapshot();
    assert_eq!(
        snap.events
            .iter()
            .filter(|e| e.name == "watch.empirical.refresh")
            .count(),
        4,
        "one refresh event per completed pair"
    );
    assert!(
        snap.events
            .iter()
            .all(|e| e.name != "watch.alarm.empirical_eps"),
        "no alarm on an honest run"
    );
    // The gauges are live on the audit view, and the watch report taken
    // at the same commit already sees the refreshed estimate.
    let audit = server.metrics_snapshot().audit_view();
    assert_eq!(audit.gauge("fdp.empirical.samples"), Some(4.0));
    assert_eq!(audit.gauge("fdp.empirical.eps_hat"), Some(estimate.eps_hat));
    let report = server.watch_report().expect("watch sampled");
    assert_eq!(report.eps_samples, 4);
}

/// Rounds between captures pay nothing: with a sparse refresh cadence the
/// recorder is detached for the off rounds, and estimates still arrive.
#[test]
fn sparse_refresher_cadence_still_pairs_captures() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    config.watch.empirical_every_rounds = 3;
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let requests: Vec<u64> = (0..K as u64).collect();
    let mut mode = FedAvg;
    for _ in 0..12 {
        server.begin_round(&requests, &mut rng).expect("round");
        server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    // Captures at rounds 3, 6, 9, 12 → pairs complete at 6 and 12.
    let estimate = server.empirical_estimate().expect("estimate");
    assert_eq!(estimate.samples, 2);
}

/// The watch sampler's own cost stays under 5% of round wall-time, with
/// the most aggressive cadence (every round). The bound is asserted in
/// release builds only — debug-build constant factors are not the claim.
#[test]
fn watch_overhead_stays_under_five_percent_of_round_time() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    config.watch = WatchConfig::every(1);
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let requests: Vec<u64> = (0..K as u64).collect();
    let mut mode = FedAvg;
    for _ in 0..20 {
        server.begin_round(&requests, &mut rng).expect("round");
        server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    let snap = server.metrics_snapshot();
    let watch = snap.histogram("watch.sample.ns").expect("watch histogram");
    let rounds = snap.histogram("round.latency").expect("round histogram");
    assert_eq!(watch.count, 20, "sampled every round");
    assert_eq!(rounds.count, 20);
    let ratio = watch.sum as f64 / rounds.sum as f64;
    assert!(
        cfg!(debug_assertions) || ratio < 0.05,
        "watch overhead {:.2}% of round wall-time (watch {} ns vs rounds {} ns)",
        ratio * 100.0,
        watch.sum,
        rounds.sum
    );
}

/// The continuous refresher bills its own cost into `watch.sample.ns`,
/// and the combined watch + refresher overhead still clears the same <5%
/// budget at the most aggressive cadence (both every round). Asserted in
/// release builds only, like the base overhead test.
#[test]
fn watch_overhead_with_refresher_stays_under_five_percent() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut config = estimator_config(PrivacyConfig::with_epsilon(1.0), 1);
    config.watch = WatchConfig::every(1);
    config.watch.empirical_every_rounds = 1;
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let requests: Vec<u64> = (0..K as u64).collect();
    let mut mode = FedAvg;
    for _ in 0..20 {
        server.begin_round(&requests, &mut rng).expect("round");
        server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    let snap = server.metrics_snapshot();
    let watch = snap.histogram("watch.sample.ns").expect("watch histogram");
    let rounds = snap.histogram("round.latency").expect("round histogram");
    assert_eq!(
        watch.count, 40,
        "one watch sample plus one refresher sample per round"
    );
    assert!(
        server.empirical_estimate().is_some(),
        "refresher produced estimates during the run"
    );
    let ratio = watch.sum as f64 / rounds.sum as f64;
    assert!(
        cfg!(debug_assertions) || ratio < 0.05,
        "watch+refresher overhead {:.2}% of round wall-time ({} ns vs {} ns)",
        ratio * 100.0,
        watch.sum,
        rounds.sum
    );
}
