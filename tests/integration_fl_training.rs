//! FL-training integration: the FEDORA pipeline vs the reference
//! (non-ORAM) FedAvg loop, and the ε-accuracy trend of Table 1.

use fedora::training::{train_with_fedora, TrainingConfig};
use fedora_fdp::ProtectionMode;
use fedora_fl::client::LocalTrainer;
use fedora_fl::datasets::{Dataset, SyntheticConfig};
use fedora_fl::model::{DlrmConfig, DlrmModel, Pooling};
use fedora_fl::sim::{evaluate_auc, run_reference_fl, FlSimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let mut cfg = SyntheticConfig::movielens_like();
    cfg.num_users = 64;
    cfg.num_items = 128;
    cfg.samples_per_user = 10;
    cfg.test_samples = 800;
    Dataset::generate(cfg)
}

fn model(seed: u64) -> DlrmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    DlrmModel::new(
        DlrmConfig {
            num_items: 128,
            embedding_dim: 8,
            hidden_dim: 16,
            use_private_history: true,
            pooling: Pooling::Mean,
        },
        &mut rng,
    )
}

fn training_cfg(rounds: usize, protection: Option<(ProtectionMode, f64)>) -> TrainingConfig {
    TrainingConfig {
        users_per_round: 16,
        rounds,
        server_lr: 2.0,
        trainer: LocalTrainer {
            lr: 0.2,
            epochs: 1,
            ..Default::default()
        },
        protection,
        threads: 1,
    }
}

/// With ε = ∞, the pipeline is functionally plain FedAvg: same
/// aggregation semantics, no dummies, no losses. The trained model must
/// reach an AUC comparable to the reference loop's.
#[test]
fn pipeline_matches_reference_fl_at_epsilon_infinity() {
    let data = dataset();
    let rounds = 12;

    let mut ref_model = model(50);
    let mut rng = StdRng::seed_from_u64(51);
    let sim = FlSimConfig {
        users_per_round: 16,
        rounds,
        server_lr: 2.0,
        trainer: LocalTrainer {
            lr: 0.2,
            epochs: 1,
            ..Default::default()
        },
        threads: 1,
    };
    let ref_auc = *run_reference_fl(&mut ref_model, &data, &sim, &mut rng)
        .last()
        .expect("rounds > 0");

    let mut fed_model = model(50);
    let mut rng = StdRng::seed_from_u64(51);
    let out = train_with_fedora(&mut fed_model, &data, &training_cfg(rounds, None), &mut rng)
        .expect("pipeline");
    assert_eq!(out.dummy_rate, 0.0);
    assert_eq!(out.lost_rate, 0.0);
    assert!(
        (out.auc - ref_auc).abs() < 0.05,
        "pipeline AUC {:.4} vs reference {:.4} diverged",
        out.auc,
        ref_auc
    );
}

/// Training through the pipeline actually improves the model.
#[test]
fn pipeline_training_beats_untrained_model() {
    let data = dataset();
    let mut untrained = model(60);
    let base_auc = evaluate_auc(&untrained, &data);

    let mut rng = StdRng::seed_from_u64(61);
    let out = train_with_fedora(
        &mut untrained,
        &data,
        &training_cfg(15, Some((ProtectionMode::HideValue, 1.0))),
        &mut rng,
    )
    .expect("pipeline");
    assert!(
        out.auc > base_auc + 0.02,
        "training gained too little: {base_auc:.4} -> {:.4}",
        out.auc
    );
}

/// Stronger privacy costs (weakly) more noise: ε = 0.1 must produce at
/// least as many dummies+losses as ε = 1.0 relative to the optimum.
#[test]
fn smaller_epsilon_adds_more_noise() {
    let data = dataset();
    let mut rng = StdRng::seed_from_u64(70);
    let mut m1 = model(71);
    let out_1 = train_with_fedora(
        &mut m1,
        &data,
        &training_cfg(8, Some((ProtectionMode::HideValue, 1.0))),
        &mut rng,
    )
    .expect("pipeline");
    let mut rng = StdRng::seed_from_u64(70);
    let mut m01 = model(71);
    let out_01 = train_with_fedora(
        &mut m01,
        &data,
        &training_cfg(8, Some((ProtectionMode::HideValue, 0.1))),
        &mut rng,
    )
    .expect("pipeline");
    let noise_1 = out_1.dummy_rate + out_1.lost_rate;
    let noise_01 = out_01.dummy_rate + out_01.lost_rate;
    assert!(
        noise_01 > noise_1,
        "eps=0.1 noise {noise_01:.4} should exceed eps=1.0 noise {noise_1:.4}"
    );
    // Both still produce usable models.
    assert!(out_01.auc > 0.45 && out_1.auc > 0.45);
}

/// The hide-# mode pads every user to the same request count, so the
/// request stream no longer reveals how many features each user has.
#[test]
fn hide_count_mode_fixes_per_user_requests() {
    let data = dataset();
    let mut rng = StdRng::seed_from_u64(80);
    let mut m = model(81);
    let padded = 24u32;
    let out = train_with_fedora(
        &mut m,
        &data,
        &training_cfg(
            5,
            Some((
                ProtectionMode::HideValueCount {
                    padded_count: padded,
                },
                1.0,
            )),
        ),
        &mut rng,
    )
    .expect("pipeline");
    assert_eq!(
        out.total_requests,
        5 * 16 * padded as u64,
        "every user must contribute exactly {padded} requests"
    );
    // Group privacy pushed the mechanism epsilon down by the pad factor,
    // so the hide-# run should see noticeably more relative noise than
    // an equivalent hide-val run would.
    assert!(out.dummy_rate + out.lost_rate > 0.0);
}

/// The DIN-style attention model trains through the full FEDORA pipeline
/// unchanged — the server sees the same rows either way (pooling is
/// client-side).
#[test]
fn attention_model_trains_through_pipeline() {
    let data = dataset();
    let mut rng = StdRng::seed_from_u64(90);
    let mut m = {
        let mut mrng = StdRng::seed_from_u64(91);
        DlrmModel::new(
            DlrmConfig {
                num_items: 128,
                embedding_dim: 8,
                hidden_dim: 16,
                use_private_history: true,
                pooling: Pooling::Attention,
            },
            &mut mrng,
        )
    };
    let base_auc = evaluate_auc(&m, &data);
    let out = train_with_fedora(
        &mut m,
        &data,
        &training_cfg(12, Some((ProtectionMode::HideValue, 1.0))),
        &mut rng,
    )
    .expect("pipeline");
    assert!(
        out.auc > base_auc,
        "attention training regressed: {base_auc:.4} -> {:.4}",
        out.auc
    );
    assert!(out.total_accesses > 0);
}
