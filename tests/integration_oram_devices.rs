//! ORAM ↔ device integration: RAW ORAM over the simulated SSD, the
//! Merkle-free counter scheme, wear accounting, and lifetime projection
//! consistency between the simulated device and the analytic model.

use fedora::analytic::{fedora_round, lifetime_months};
use fedora_crypto::aead::Key;
use fedora_crypto::counter::EvictionSchedule;
use fedora_oram::raw::{RawOram, RawOramConfig};
use fedora_oram::store::{BucketStore, SsdBucketStore};
use fedora_oram::TreeGeometry;
use fedora_storage::profile::SsdProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ssd_raw_oram(blocks: u64, a: u32, seed: u64) -> (RawOram<SsdBucketStore>, StdRng) {
    let geo = TreeGeometry::for_blocks(blocks, 32, 8);
    let store = SsdBucketStore::new(geo, Key::from_bytes([3; 32]), SsdProfile::pm9a1_like());
    let mut rng = StdRng::seed_from_u64(seed);
    let oram = RawOram::new(
        store,
        blocks,
        RawOramConfig { eviction_period: a },
        |id| vec![(id % 256) as u8; 32],
        &mut rng,
    );
    (oram, rng)
}

#[test]
fn raw_oram_works_on_simulated_ssd() {
    let (mut oram, mut rng) = ssd_raw_oram(256, 8, 1);
    for id in (0..256).step_by(7) {
        let blk = oram.fetch(id, &mut rng).expect("fetch");
        assert_eq!(blk.payload[0], (id % 256) as u8);
        oram.insert(id, blk.payload, &mut rng).expect("insert");
    }
    oram.flush(1000).expect("flush");
    // Data still correct after eviction churn.
    for id in (0..256).step_by(13) {
        let blk = oram.fetch(id, &mut rng).expect("fetch");
        assert_eq!(blk.payload[0], (id % 256) as u8);
        oram.insert(id, blk.payload, &mut rng).expect("insert");
    }
}

#[test]
fn ssd_write_counts_follow_eviction_schedule() {
    let (mut oram, mut rng) = ssd_raw_oram(128, 4, 2);
    for round in 0..6 {
        for i in 0..16u64 {
            let id = (i * 5 + round) % 128;
            let blk = oram.fetch(id, &mut rng).expect("fetch");
            oram.insert(id, blk.payload, &mut rng).expect("insert");
        }
    }
    assert!(oram.counters_match_schedule());
    // Spot-check against an independently constructed schedule.
    let geo = oram.store().geometry();
    let schedule = EvictionSchedule::new(geo.depth());
    let eo = oram.eo_count();
    assert_eq!(
        oram.store().write_count(0),
        schedule.writes_to_bucket(0, 0, eo)
    );
    assert_eq!(oram.store().write_count(0), eo, "root is written every EO");
}

#[test]
fn ao_accesses_never_wear_the_ssd() {
    let (mut oram, mut rng) = ssd_raw_oram(256, 1_000_000, 3); // EO never triggers
    oram.store_mut().reset_device_stats();
    for id in 0..64u64 {
        oram.fetch(id, &mut rng).expect("fetch");
    }
    for _ in 0..64 {
        oram.dummy_fetch(&mut rng).expect("dummy");
    }
    let stats = oram.store().device_stats();
    assert_eq!(stats.bytes_written, 0, "read phase wrote to the SSD");
    assert_eq!(oram.store().ssd().wear_fraction(), 0.0);
}

#[test]
fn wear_projection_consistent_with_analytic_lifetime() {
    let (mut oram, mut rng) = ssd_raw_oram(512, 8, 4);
    oram.store_mut().reset_device_stats();
    let rounds = 10u64;
    let k_per_round = 40u64;
    for _ in 0..rounds {
        for _ in 0..k_per_round {
            let id = rng.gen_range(0..512);
            let blk = oram.fetch(id, &mut rng).expect("fetch");
            oram.insert(id, blk.payload, &mut rng).expect("insert");
        }
    }
    let geo = oram.store().geometry();
    let profile = *oram.store().ssd().profile();
    // Analytic per-round counts at the same k.
    let counts = fedora_round(&geo, k_per_round, 8, profile.page_bytes);
    let analytic = lifetime_months(&profile, &geo, &counts, 120.0);
    // Simulated projection from measured wear at the same cadence, rescaled
    // to the analytic convention (SSD sized to the tree, not to our tiny
    // test device — same thing here since the store sizes the SSD to the
    // tree).
    let projected = oram
        .store()
        .ssd()
        .projected_lifetime_months(rounds as f64 * 120.0);
    let ratio = analytic / projected;
    assert!(
        (0.8..1.25).contains(&ratio),
        "analytic {analytic:.2} vs projected {projected:.2} months (ratio {ratio:.3})"
    );
}

#[test]
fn tampering_with_ssd_bucket_is_detected() {
    // End-to-end integrity: flip one byte in the SSD image and the next
    // read of that bucket must fail authentication.
    let geo = TreeGeometry::for_blocks(64, 32, 8);
    let mut store = SsdBucketStore::new(geo, Key::from_bytes([5; 32]), SsdProfile::pm9a1_like());
    let bucket = store.read_bucket(3).expect("clean read");
    // Corrupt by writing a forged page image through the raw device: write
    // a valid bucket to the wrong node (splice attack).
    let forged = store.read_bucket(4).expect("read");
    store.write_bucket(4, &forged).expect("rewrite");
    // Splice node 4's pages over node 3 by loading node 4's ciphertext
    // via load_bucket at node 3's position is not directly expressible
    // through the API (good!), so emulate the strongest API-level attack:
    // replay — write, then write again, then try to read with a stale
    // counter by constructing a fresh store sharing the device image is
    // also not expressible. The check that *is* expressible: integrity of
    // honest operation.
    assert_eq!(store.read_bucket(3).expect("still clean"), bucket);
}

#[test]
fn vtree_stays_in_sync_with_tree_occupancy() {
    let (mut oram, mut rng) = ssd_raw_oram(128, 4, 6);
    // Pull half the blocks out: VTree must reflect exactly 64 valid
    // blocks fewer (they moved to the caller).
    let before: u64 = 128;
    let mut fetched = Vec::new();
    for id in 0..64u64 {
        fetched.push(oram.fetch(id, &mut rng).expect("fetch"));
    }
    // All fetched blocks are gone from the ORAM; the rest remain.
    for blk in fetched {
        oram.insert(blk.id, blk.payload, &mut rng).expect("insert");
    }
    oram.flush(10_000).expect("flush");
    // After a full flush every block is back in the tree (stash empty);
    // fetch each to prove occupancy.
    let mut present = 0u64;
    for id in 0..128u64 {
        let blk = oram.fetch(id, &mut rng).expect("fetch");
        present += 1;
        oram.insert(id, blk.payload, &mut rng).expect("insert");
    }
    assert_eq!(present, before);
}

#[test]
fn ssd_bitflip_detected_end_to_end() {
    // A NAND bit error (or malicious flip) anywhere in a bucket's pages
    // must surface as an integrity failure on the next fetch that reads
    // the bucket's path — never as silently wrong data.
    let (mut oram, mut rng) = ssd_raw_oram(128, 4, 40);
    // Corrupt the root bucket's first page: every path includes the root.
    oram.store_mut()
        .ssd_mut()
        .inject_bitflip(0, 12)
        .expect("in range");
    let result = oram.fetch(0, &mut rng);
    assert!(matches!(
        result,
        Err(fedora_oram::OramError::Integrity {
            kind: fedora_crypto::IntegrityError::Corruption,
            node: 0,
        })
    ));
}

#[test]
fn ssd_rollback_detected_end_to_end() {
    // A replay of an old bucket image fails authentication because the
    // write counter (derivable from the root EO counter) has advanced.
    let (mut oram, mut rng) = ssd_raw_oram(128, 2, 41);
    let snapshot = oram.store().ssd().snapshot_page(0).expect("root page");
    // Advance the ORAM: several insert cycles force EOs that rewrite the
    // root bucket.
    for id in 0..8u64 {
        let blk = oram.fetch(id, &mut rng).expect("fetch");
        oram.insert(id, blk.payload, &mut rng).expect("insert");
    }
    assert!(oram.eo_count() > 0, "EOs must have rewritten the root");
    oram.store_mut()
        .ssd_mut()
        .inject_rollback(0, &snapshot)
        .expect("in range");
    let result = oram.fetch(100, &mut rng);
    // The replayed image authenticates at its original (older) write
    // counter, so the failure is classified as a rollback at the root.
    assert!(matches!(
        result,
        Err(fedora_oram::OramError::Integrity {
            kind: fedora_crypto::IntegrityError::Rollback,
            node: 0,
        })
    ));
}

#[test]
fn recursive_position_map_supports_oram_scale() {
    use fedora_oram::recursive::RecursivePositionMap;
    let mut rng = StdRng::seed_from_u64(50);
    let mut map = RecursivePositionMap::new(2048, 256, Key::from_bytes([7; 32]), &mut rng);
    assert!(map.num_levels() >= 1, "2048 positions must recurse");
    for id in (0..2048).step_by(129) {
        map.set(id, id % 256, &mut rng).expect("set");
    }
    for id in (0..2048).step_by(129) {
        assert_eq!(map.get(id, &mut rng).expect("get"), id % 256);
    }
    assert!(map.accesses() > 0);
    assert!(map.device_stats().bytes_read > 0);
}

#[test]
fn encrypted_position_map_integrates_with_flat_crypto() {
    use fedora_oram::position::EncryptedPositionMap;
    let mut rng = StdRng::seed_from_u64(51);
    let mut map = EncryptedPositionMap::random(1000, 128, Key::from_bytes([8; 32]), &mut rng);
    map.set(999, 127).expect("set");
    assert_eq!(map.get(999).expect("get"), 127);
    // The §5.2 overhead claim at this scale: a few percent, not 25%.
    let overhead = map.stored_bytes() as f64 / (1000.0 * 8.0) - 1.0;
    assert!(overhead < 0.15, "overhead {overhead:.3}");
}
