//! Look-ahead pipelining integration tests: the tentpole claim is that
//! pipelined execution changes *wall-clock attribution only*. Scrubbed
//! round reports and raw main-ORAM access traces must be byte-identical
//! to serial execution, the twin-run obliviousness auditor must return
//! the same verdicts, the empirical-ε estimator must produce the same
//! numbers, and a crash mid-prefetch must recover to the last committed
//! round with the speculation discarded (never journaled).

use fedora::audit::empirical::{adjacent_inputs, estimate_twin_inputs};
use fedora::audit::{audit_twin_inputs, twin_inputs};
use fedora::config::{FedoraConfig, ParallelismConfig, PipelineConfig, PrivacyConfig, TableSpec};
use fedora::durable::CrashPoint;
use fedora::server::{FedoraError, FedoraServer, RoundReport};
use fedora_fl::modes::FedAvg;
use fedora_storage::{AccessOp, AccessRecord, AccessTraceRecorder};
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ENTRIES: u64 = 256;
const DIM: usize = 8;

fn config_with(threads: usize, pipeline: PipelineConfig) -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(ENTRIES), 64);
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    config.parallelism = ParallelismConfig::with_threads(threads);
    config.pipeline = pipeline;
    config
}

/// Deterministic per-round request batches (duplicates included, so the
/// oblivious union has real work to do).
fn batches() -> Vec<Vec<u64>> {
    (0..4u64)
        .map(|round| (0..24u64).map(|i| (i * 7 + round * 13) % ENTRIES).collect())
        .collect()
}

/// Runs the full round loop (begin, serve + aggregate every request,
/// end) over `batches`, returning the scrubbed per-round reports and the
/// raw main-ORAM access trace. When `pipelined`, the next round's client
/// set is handed to the look-ahead scheduler right after `begin_round`,
/// exactly as the net engine feeds it.
fn run(config: &FedoraConfig, seed: u64, pipelined: bool) -> (Vec<RoundReport>, Vec<AccessRecord>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = FedoraServer::with_telemetry(
        config.clone(),
        |id| vec![(id % 251) as u8; 4 * DIM],
        Registry::new(),
        &mut rng,
    );
    assert_eq!(server.pipeline_enabled(), pipelined);
    let recorder = AccessTraceRecorder::new();
    server.set_access_recorder(recorder.clone());
    let mut mode = FedAvg;
    let batches = batches();
    let mut reports = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        server.begin_round(batch, &mut rng).expect("begin");
        if pipelined {
            if let Some(next) = batches.get(i + 1) {
                assert!(server.schedule_next_round(next));
            }
        }
        for &id in batch {
            if server.serve(id, &mut rng).expect("serve").is_some() {
                server
                    .aggregate(&mode, id, &[0.25f32; DIM], 1, &mut rng)
                    .expect("aggregate");
            }
        }
        let report = server.end_round(&mut mode, 1.0, &mut rng).expect("end");
        if !pipelined {
            assert_eq!(
                report.phases.overlap_ns, 0,
                "serial rounds never credit overlap"
            );
        }
        assert_eq!(
            report.phases.sum_ns(),
            report.phases.round_ns,
            "phases partition round_ns exactly (round {i})"
        );
        reports.push(report.scrubbed());
    }
    (reports, recorder.take())
}

/// The tentpole invariant, end to end: pipelined execution produces
/// byte-identical scrubbed round reports AND a byte-identical raw access
/// trace, at one worker thread and at four.
#[test]
fn scrubbed_reports_and_trace_byte_identical_serial_vs_pipelined() {
    for threads in [1usize, 4] {
        let serial_cfg = config_with(threads, PipelineConfig::serial());
        let pipelined_cfg = config_with(threads, PipelineConfig::lookahead_one());
        let (serial_reports, serial_trace) = run(&serial_cfg, 97, false);
        let (pipe_reports, pipe_trace) = run(&pipelined_cfg, 97, true);
        assert_eq!(
            serial_reports, pipe_reports,
            "threads {threads}: scrubbed reports diverged"
        );
        // Eviction-write deferral moves writes later *within* the round
        // (that is the overlap), so the raw interleaving legitimately
        // differs. What must not move: the read sequence, the write
        // sequence, and hence the per-round canonical trace the adversary
        // model scores.
        let reads = |t: &[AccessRecord]| -> Vec<AccessRecord> {
            t.iter()
                .filter(|r| r.op == AccessOp::Read)
                .cloned()
                .collect()
        };
        let writes = |t: &[AccessRecord]| -> Vec<AccessRecord> {
            t.iter()
                .filter(|r| r.op != AccessOp::Read)
                .cloned()
                .collect()
        };
        assert_eq!(serial_trace.len(), pipe_trace.len());
        assert_eq!(
            reads(&serial_trace),
            reads(&pipe_trace),
            "threads {threads}: read sequences diverged"
        );
        assert_eq!(
            writes(&serial_trace),
            writes(&pipe_trace),
            "threads {threads}: write sequences diverged"
        );
        assert!(!serial_trace.is_empty(), "trace recorder captured nothing");
    }
}

/// The twin-run obliviousness auditor must reach the same verdict on a
/// pipelined configuration as on the serial one — for the statistically
/// indistinguishable claim (finite ε) and the exact-equality claim
/// (ε = 0) alike.
#[test]
fn auditor_verdicts_pinned_equal() {
    let (a, b) = twin_inputs(8);
    for (threads, privacy) in [
        (1usize, PrivacyConfig::with_epsilon(1.0)),
        (4, PrivacyConfig::with_epsilon(1.0)),
        (1, PrivacyConfig::perfect()),
    ] {
        let mut serial_cfg = config_with(threads, PipelineConfig::serial());
        serial_cfg.privacy = privacy.clone();
        let mut pipe_cfg = config_with(threads, PipelineConfig::lookahead_one());
        pipe_cfg.privacy = privacy;
        let serial = audit_twin_inputs(&serial_cfg, 59, &a, &b, 2).expect("serial audit");
        let piped = audit_twin_inputs(&pipe_cfg, 59, &a, &b, 2).expect("pipelined audit");
        assert_eq!(serial.verdict, piped.verdict, "threads {threads}");
        assert_eq!(serial.canonical_equal, piped.canonical_equal);
        assert_eq!(serial.len_a, piped.len_a);
        assert_eq!(serial.len_b, piped.len_b);
        assert_eq!(serial.chi.pass, piped.chi.pass);
    }
}

/// The empirical-ε estimator sees the exact same traces under pipelining,
/// so its estimate — not just its verdict — must be unchanged.
#[test]
fn empirical_estimate_unchanged_by_pipelining() {
    let (a, b) = adjacent_inputs(8);
    let serial_cfg = config_with(1, PipelineConfig::serial());
    let pipe_cfg = config_with(1, PipelineConfig::lookahead_one());
    let serial = estimate_twin_inputs(&serial_cfg, 31, &a, &b, 4).expect("serial estimate");
    let piped = estimate_twin_inputs(&pipe_cfg, 31, &a, &b, 4).expect("pipelined estimate");
    assert_eq!(serial.estimate.eps_hat, piped.estimate.eps_hat);
    assert_eq!(serial.estimate.ci_lo, piped.estimate.ci_lo);
    assert_eq!(serial.estimate.ci_hi, piped.estimate.ci_hi);
    assert_eq!(serial.estimate.samples, piped.estimate.samples);
    assert_eq!(serial.chi.pass, piped.chi.pass);
    assert_eq!(serial.alarm, piped.alarm);
}

/// Durability: a crash while a look-ahead speculation is in flight must
/// recover to the last committed round — the speculative unions live only
/// in memory and never reach the journal.
#[test]
fn crash_mid_prefetch_recovers_to_last_commit() {
    let dir = std::env::temp_dir().join(format!("fedora-pipelined-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Perfect privacy so k = K >= 1 and MidFetch fires deterministically.
    let mut config = config_with(1, PipelineConfig::lookahead_one());
    config.privacy = PrivacyConfig::perfect();

    let mut rng = StdRng::seed_from_u64(7);
    let mut server = FedoraServer::with_telemetry(
        config.clone(),
        |id| vec![(id % 251) as u8; 4 * DIM],
        Registry::new(),
        &mut rng,
    );
    server.enable_durability(&dir).expect("durability");
    let mut mode = FedAvg;
    let reqs: Vec<Vec<u64>> = (0..3u64)
        .map(|r| (0..8u64).map(|i| (i * 11 + r) % ENTRIES).collect())
        .collect();

    // Two committed rounds; round 3's unions speculate during round 2.
    server.begin_round(&reqs[0], &mut rng).expect("begin 1");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end 1");
    server.begin_round(&reqs[1], &mut rng).expect("begin 2");
    assert!(server.schedule_next_round(&reqs[2]));
    server.end_round(&mut mode, 1.0, &mut rng).expect("end 2");
    assert_eq!(server.committed_rounds(), 2);

    // Round 3 consumes the speculation, then dies mid-fetch.
    server.arm_crash_point(CrashPoint::MidFetch);
    let err = server.begin_round(&reqs[2], &mut rng).unwrap_err();
    assert!(matches!(err, FedoraError::CrashInjected { .. }), "{err}");
    assert_eq!(server.committed_rounds(), 2);
    let want_report = server.last_committed_report().cloned().expect("report");
    drop(server); // the "kill"

    // A fresh pipelined server recovers to the pre-crash commit and keeps
    // going: the discarded speculation left nothing behind.
    let mut rng2 = StdRng::seed_from_u64(7);
    let mut recovered = FedoraServer::with_telemetry(
        config,
        |id| vec![(id % 251) as u8; 4 * DIM],
        Registry::new(),
        &mut rng2,
    );
    assert_eq!(recovered.recover(&dir).expect("recover"), 2);
    assert_eq!(
        recovered.last_committed_report().cloned().expect("report"),
        want_report
    );
    recovered.begin_round(&reqs[2], &mut rng2).expect("begin 3");
    recovered
        .end_round(&mut mode, 1.0, &mut rng2)
        .expect("end 3");
    assert_eq!(recovered.committed_rounds(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}
