//! End-to-end checks of the `fedora-telemetry` subsystem as wired
//! through the live pipeline.
//!
//! Covers the acceptance contract of the observability PR:
//!
//! 1. A single federated round populates every headline series —
//!    `oram.access.latency` (with sane percentiles), `storage.pages_*`,
//!    `fl.round.upload_bytes`, `integrity.retries` — and the JSON
//!    export carries all of them.
//! 2. A server built with `Registry::disabled()` behaves identically
//!    to an instrumented one (same round outcome, empty snapshots).
//! 3. Fault injection is visible through the metrics alone:
//!    transient chaos drives `integrity.retries` above zero.
//! 4. Instrumentation overhead on the hot ORAM path stays small
//!    (lenient bound always on; the strict <5% bound is `#[ignore]`d
//!    for quiet machines — see EXPERIMENTS.md for measured numbers).

use std::time::Instant;

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::modes::FedAvg;
use fedora_storage::FaultConfig;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 8;
const NUM_ENTRIES: u64 = 128;

fn init_entry(id: u64) -> Vec<u8> {
    (0..DIM).flat_map(|_| (id as f32).to_le_bytes()).collect()
}

fn test_config() -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(NUM_ENTRIES), 64);
    config.privacy = PrivacyConfig::none();
    config
}

/// One full round: begin, serve + aggregate every request, end.
fn run_round(server: &mut FedoraServer, rng: &mut StdRng, round: u64) {
    let reqs: Vec<u64> = (0..48)
        .map(|i| (i * 7 + round * 13) % NUM_ENTRIES)
        .collect();
    server.begin_round(&reqs, rng).expect("begin_round");
    let mode = FedAvg;
    for &id in &reqs {
        let _ = server.serve(id, rng).expect("serve");
        let _ = server
            .aggregate(&mode, id, &[0.125; DIM], 1, rng)
            .expect("aggregate");
    }
    let mut mode = FedAvg;
    server.end_round(&mut mode, 0.5, rng).expect("end_round");
}

#[test]
fn one_round_populates_every_headline_series() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut server = FedoraServer::new(test_config(), init_entry, &mut rng);
    run_round(&mut server, &mut rng, 0);

    let snap = server.metrics_snapshot();

    // ORAM access latency: recorded, with ordered percentiles.
    let hist = snap
        .histogram("oram.access.latency")
        .expect("oram.access.latency histogram missing");
    assert!(hist.count > 0, "no ORAM accesses recorded");
    assert!(hist.min <= hist.p50, "min {} > p50 {}", hist.min, hist.p50);
    assert!(hist.p50 <= hist.p95, "p50 {} > p95 {}", hist.p50, hist.p95);
    assert!(hist.p95 <= hist.p99, "p95 {} > p99 {}", hist.p95, hist.p99);
    assert!(hist.p99 <= hist.max, "p99 {} > max {}", hist.p99, hist.max);

    // Storage + FL + integrity headline counters.
    let ssd = server.ssd_stats();
    assert_eq!(snap.counter("storage.pages_read"), Some(ssd.pages_read));
    assert_eq!(
        snap.counter("storage.pages_written"),
        Some(ssd.pages_written)
    );
    assert!(ssd.pages_read > 0 && ssd.pages_written > 0);
    assert!(snap.counter("fl.round.upload_bytes").unwrap() > 0);
    assert!(snap.counter("fl.round.download_bytes").unwrap() > 0);
    assert_eq!(snap.counter("integrity.retries"), Some(0));
    assert_eq!(snap.counter("fl.rounds.completed"), Some(1));

    // The JSON export carries every acceptance key.
    let json = snap.to_json();
    for key in [
        "oram.access.latency",
        "storage.pages_read",
        "storage.pages_written",
        "fl.round.upload_bytes",
        "integrity.retries",
        "\"p50\"",
        "\"p95\"",
        "\"p99\"",
    ] {
        assert!(json.contains(key), "JSON export missing {key}");
    }

    // The per-round report carries the same cumulative state.
    let report = server.reports().last().expect("one completed round");
    assert_eq!(
        report.metrics.counter("storage.pages_read"),
        Some(ssd.pages_read)
    );
}

#[test]
fn disabled_registry_is_a_faithful_noop() {
    let mut rng_on = StdRng::seed_from_u64(23);
    let mut rng_off = StdRng::seed_from_u64(23);
    let mut on = FedoraServer::new(test_config(), init_entry, &mut rng_on);
    let mut off = FedoraServer::with_telemetry(
        test_config(),
        init_entry,
        Registry::disabled(),
        &mut rng_off,
    );

    run_round(&mut on, &mut rng_on, 0);
    run_round(&mut off, &mut rng_off, 0);

    // Identical pipeline outcome either way.
    let (a, b) = (on.reports().last().unwrap(), off.reports().last().unwrap());
    assert_eq!(a.k_accesses, b.k_accesses);
    assert_eq!(a.ssd, b.ssd);

    // The disabled side exported nothing.
    let snap = off.metrics_snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.events.is_empty());
    assert!(b.metrics.counters.is_empty());
}

#[test]
fn transient_faults_surface_in_integrity_retries() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut config = test_config();
    config.fault_tolerance.max_read_retries = 16;
    let mut server = FedoraServer::new(config, init_entry, &mut rng);
    server.arm_faults(FaultConfig::chaos(0xFA117, 0.0, 0.0, 0.2));

    for round in 0..4 {
        run_round(&mut server, &mut rng, round);
    }

    let snap = server.metrics_snapshot();
    let retries = snap.counter("integrity.retries").unwrap();
    assert!(retries > 0, "chaos campaign produced no retries");
    assert_eq!(
        snap.counter("integrity.recovered").unwrap(),
        server.integrity_stats().recovered
    );
}

/// Shared body for the overhead checks: time `rounds` full rounds on an
/// instrumented server vs a disabled-registry twin, returning the ratio.
fn overhead_ratio(rounds: u64) -> f64 {
    let time = |registry: Registry| {
        let mut rng = StdRng::seed_from_u64(47);
        let mut server =
            FedoraServer::with_telemetry(test_config(), init_entry, registry, &mut rng);
        // Warm-up round so allocator and cache effects don't dominate.
        run_round(&mut server, &mut rng, 0);
        let start = Instant::now();
        for round in 1..=rounds {
            run_round(&mut server, &mut rng, round);
        }
        start.elapsed().as_secs_f64()
    };
    time(Registry::new()) / time(Registry::disabled())
}

#[test]
fn instrumentation_overhead_is_bounded_lenient() {
    // Lenient bound that holds even on noisy shared CI machines; the
    // strict acceptance bound lives in the #[ignore]d test below.
    let ratio = overhead_ratio(8);
    assert!(
        ratio < 1.5,
        "instrumented rounds {ratio:.3}x slower than no-op sink"
    );
}

#[test]
#[ignore = "timing-sensitive: run on a quiet machine for the <5% acceptance bound"]
fn instrumentation_overhead_is_under_five_percent() {
    let ratio = overhead_ratio(40);
    assert!(
        ratio < 1.05,
        "instrumented rounds {ratio:.3}x slower than no-op sink (budget 1.05x)"
    );
}
