//! Privacy integration tests: what the adversary actually observes from
//! the devices, across the whole stack.

use std::collections::HashSet;

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::modes::FedAvg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: u64 = 512;

fn run_round(privacy: &PrivacyConfig, requests: &[u64], seed: u64) -> (usize, Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), 128);
    config.privacy = privacy.clone();
    let mut server = FedoraServer::new(config, |_| vec![0u8; 32], &mut rng);
    let report = server.begin_round(requests, &mut rng).expect("round");
    let mut mode = FedAvg;
    server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    // What leaks: the access count and the physical traces. We can't
    // borrow the traces from the server API (they live in the ORAM), so
    // the count is the observable under test here; trace uniformity is
    // covered below with a raw ORAM.
    (report.k_accesses, Vec::new(), Vec::new())
}

/// The ε-FDP guarantee, empirically: the access-count distributions of
/// neighboring inputs (one feature value changed) must be e^ε-close. The
/// servers are reused across trials (the observable `k` depends only on
/// the request multiset, not the table contents).
#[test]
fn access_count_distributions_satisfy_epsilon_bound() {
    let eps = 1.0;
    let n_req = 16usize;
    // d: 16 requests over 5 unique entries. d': one value changed so the
    // union has 6 entries.
    let d: Vec<u64> = (0..n_req).map(|i| (i % 5) as u64).collect();
    let d_prime = {
        let mut v = d.clone();
        v[0] = 100; // a fresh value => k_union goes 5 -> 6
        v
    };

    let build = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 32);
        config.privacy = PrivacyConfig::with_epsilon(eps);
        (FedoraServer::new(config, |_| vec![0u8; 32], &mut rng), rng)
    };
    let (mut srv_d, mut rng_d) = build(91);
    let (mut srv_dp, mut rng_dp) = build(92);

    let trials = 1200;
    let mut histo_d = vec![0u32; n_req + 1];
    let mut histo_dp = vec![0u32; n_req + 1];
    let mut mode = FedAvg;
    for _ in 0..trials {
        let rep = srv_d.begin_round(&d, &mut rng_d).expect("round");
        srv_d.end_round(&mut mode, 1.0, &mut rng_d).expect("end");
        histo_d[rep.k_accesses.min(n_req)] += 1;
        let rep = srv_dp.begin_round(&d_prime, &mut rng_dp).expect("round");
        srv_dp.end_round(&mut mode, 1.0, &mut rng_dp).expect("end");
        histo_dp[rep.k_accesses.min(n_req)] += 1;
    }
    // For bins with decent mass in both, the ratio must respect e^eps with
    // statistical slack.
    let slack = 2.0; // sampling-noise allowance at 1200 trials
    let mut checked = 0;
    for k in 1..=n_req {
        let (a, b) = (histo_d[k] as f64, histo_dp[k] as f64);
        if a >= 40.0 && b >= 40.0 {
            let ratio = (a / b).max(b / a);
            assert!(
                ratio <= eps.exp() * slack,
                "bin k={k}: ratio {ratio:.2} exceeds e^eps * slack"
            );
            checked += 1;
        }
    }
    assert!(checked >= 3, "too few populated bins to audit ({checked})");
}

/// Strawman 2's leak, end to end: identical request *counts*, different
/// duplicate structure, observable through k.
#[test]
fn naive_dedup_leaks_duplicate_structure() {
    let privacy = PrivacyConfig::none();
    let same: Vec<u64> = vec![7; 32];
    let diff: Vec<u64> = (0..32).collect();
    let (k_same, _, _) = run_round(&privacy, &same, 1);
    let (k_diff, _, _) = run_round(&privacy, &diff, 2);
    assert_eq!(k_same, 1);
    assert_eq!(k_diff, 32);
}

/// Strawman 1 (and FEDORA at ε=0) hides duplicate structure completely.
#[test]
fn vanilla_oram_hides_duplicate_structure() {
    let privacy = PrivacyConfig::perfect();
    let same: Vec<u64> = vec![7; 32];
    let diff: Vec<u64> = (0..32).collect();
    let (k_same, _, _) = run_round(&privacy, &same, 3);
    let (k_diff, _, _) = run_round(&privacy, &diff, 4);
    assert_eq!(k_same, k_diff, "k must be input-independent at eps=0");
    assert_eq!(k_same, 32);
}

/// The AO trace (path leaves read from the SSD) is indistinguishable
/// between a skewed workload and a uniform one: each fetched block's leaf
/// is an independent uniform sample by the position-map invariant.
#[test]
fn ao_trace_is_uniform_regardless_of_workload() {
    use fedora_crypto::aead::Key;
    use fedora_oram::raw::{RawOram, RawOramConfig};
    use fedora_oram::store::DramBucketStore;
    use fedora_oram::TreeGeometry;

    let collect_trace = |skewed: bool, seed: u64| -> Vec<u64> {
        let geo = TreeGeometry::for_blocks(256, 16, 8);
        let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([1; 32]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oram = RawOram::new(
            store,
            256,
            RawOramConfig { eviction_period: 8 },
            |_| vec![0u8; 16],
            &mut rng,
        );
        for i in 0..2000u64 {
            let id = if skewed { i % 4 } else { rng.gen_range(0..256) };
            let blk = oram.fetch(id, &mut rng).expect("fetch");
            oram.insert(id, blk.payload, &mut rng).expect("insert");
        }
        oram.take_ao_trace()
    };

    let leaves = TABLE; // not used; compute from geometry below
    let _ = leaves;
    let trace_skewed = collect_trace(true, 10);
    let trace_uniform = collect_trace(false, 11);
    let num_leaves = 64u64; // for_blocks(256, _, 8): 2*256/8 = 64 leaves
    let histo = |t: &[u64]| {
        let mut h = vec![0f64; num_leaves as usize];
        for &l in t {
            h[l as usize] += 1.0;
        }
        h
    };
    let hs = histo(&trace_skewed);
    let hu = histo(&trace_uniform);
    let expected = trace_skewed.len() as f64 / num_leaves as f64;
    let sigma = expected.sqrt();
    for leaf in 0..num_leaves as usize {
        assert!(
            (hs[leaf] - expected).abs() < 6.0 * sigma,
            "skewed trace leaf {leaf}: {} vs {expected}",
            hs[leaf]
        );
        assert!(
            (hu[leaf] - expected).abs() < 6.0 * sigma,
            "uniform trace leaf {leaf}: {} vs {expected}",
            hu[leaf]
        );
    }
}

/// Repeated fetches of the *same* block read fresh uniform paths each
/// round (because insertion remaps), so access patterns cannot be linked
/// across rounds.
#[test]
fn repeated_access_paths_are_unlinkable() {
    use fedora_crypto::aead::Key;
    use fedora_oram::raw::{RawOram, RawOramConfig};
    use fedora_oram::store::DramBucketStore;
    use fedora_oram::TreeGeometry;

    let geo = TreeGeometry::for_blocks(256, 16, 8);
    let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([2; 32]));
    let mut rng = StdRng::seed_from_u64(12);
    let mut oram = RawOram::new(
        store,
        256,
        RawOramConfig { eviction_period: 4 },
        |_| vec![0u8; 16],
        &mut rng,
    );
    let mut seen = HashSet::new();
    for _ in 0..200 {
        let blk = oram.fetch(42, &mut rng).expect("fetch");
        oram.insert(42, blk.payload, &mut rng).expect("insert");
    }
    for leaf in oram.take_ao_trace() {
        seen.insert(leaf);
    }
    // 200 accesses over 64 leaves: a linkable (fixed-leaf) pattern would
    // produce 1 distinct leaf; uniform remapping produces most of them.
    assert!(
        seen.len() > 40,
        "only {} distinct leaves in 200 accesses",
        seen.len()
    );
}

/// Dummy and real accesses are indistinguishable in device I/O.
#[test]
fn dummy_and_real_round_io_identical_given_same_k() {
    // Two rounds with the same K and same sampled k must produce identical
    // SSD page counts whether entries are popular or unique.
    let privacy = PrivacyConfig::perfect(); // k = K deterministically
    let mut rng = StdRng::seed_from_u64(13);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), 128);
    config.privacy = privacy;
    let mut server = FedoraServer::new(config, |_| vec![0u8; 32], &mut rng);
    let mut mode = FedAvg;

    let before = server.ssd_stats();
    server
        .begin_round(&vec![9u64; 32], &mut rng)
        .expect("round");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    let same_delta = server.ssd_stats().since(&before);

    let before = server.ssd_stats();
    let unique: Vec<u64> = (100..132).collect();
    server.begin_round(&unique, &mut rng).expect("round");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    let unique_delta = server.ssd_stats().since(&before);

    assert_eq!(same_delta.pages_read, unique_delta.pages_read);
    assert_eq!(same_delta.pages_written, unique_delta.pages_written);
}
