//! Privacy-observability integration tests: the twin-run obliviousness
//! auditor, the privacy ledger's exact accounting (including aborted
//! rounds), audit-only redaction across every export format, the budget
//! alarm, and per-shard telemetry namespaces — the whole stack at once.

use fedora::audit::{audit_determinism, audit_twin_inputs, twin_inputs, AuditVerdict};
use fedora::config::{FedoraConfig, PrivacyBudgetConfig, PrivacyConfig, TableSpec};
use fedora::multi::MultiTableServer;
use fedora::server::{FedoraError, FedoraServer};
use fedora_fl::modes::FedAvg;
use fedora_storage::FaultConfig;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 8;
const ROUNDS: usize = 2;

fn audit_config(privacy: PrivacyConfig) -> FedoraConfig {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 16);
    config.privacy = privacy;
    config
}

/// §3.2 strawman canary: naive dedup (ε = ∞) accesses exactly `k_union`
/// entries, so twin inputs with different union sizes produce divergent
/// traces — the auditor must flag it.
#[test]
fn naive_dedup_strawman_is_flagged_trace_divergent() {
    let (a, b) = twin_inputs(K);
    let outcome =
        audit_twin_inputs(&audit_config(PrivacyConfig::none()), 41, &a, &b, ROUNDS).expect("audit");
    assert!(!outcome.canonical_equal);
    assert_ne!(outcome.len_a, outcome.len_b, "trace length leaks k_union");
    assert!(
        matches!(outcome.verdict, AuditVerdict::Leaky { .. }),
        "{:?}",
        outcome.verdict
    );
}

/// Vanilla delta(K) (ε = 0) always touches exactly K entries: the twin
/// canonical traces must be *equal*, not merely indistinguishable.
#[test]
fn vanilla_delta_k_is_trace_equivalent() {
    let (a, b) = twin_inputs(K);
    let outcome = audit_twin_inputs(&audit_config(PrivacyConfig::perfect()), 43, &a, &b, ROUNDS)
        .expect("audit");
    assert!(outcome.canonical_equal);
    assert_eq!(outcome.verdict, AuditVerdict::Oblivious);
}

/// Finite ε: traces differ (k is sampled) but per-level access frequencies
/// must pass the chi-squared indistinguishability test.
#[test]
fn epsilon_fdp_is_statistically_indistinguishable() {
    let (a, b) = twin_inputs(K);
    let outcome = audit_twin_inputs(
        &audit_config(PrivacyConfig::with_epsilon(1.0)),
        47,
        &a,
        &b,
        ROUNDS,
    )
    .expect("audit");
    assert!(outcome.verdict.is_pass(), "{:?}", outcome.verdict);
    assert!(outcome.chi.pass, "chi {:?}", outcome.chi);
}

/// Identical private inputs and seed must replay to byte-identical raw
/// traces — the foundation the twin comparison rests on.
#[test]
fn identical_input_twin_runs_are_byte_identical() {
    let (a, _) = twin_inputs(K);
    for privacy in [
        PrivacyConfig::perfect(),
        PrivacyConfig::with_epsilon(1.0),
        PrivacyConfig::none(),
    ] {
        assert!(
            audit_determinism(&audit_config(privacy), 53, &a, ROUNDS).expect("determinism"),
            "replay diverged"
        );
    }
}

/// The acceptance invariant: `fdp.total.epsilon` on the final round report
/// equals `FdpAccountant::total_epsilon()` exactly, across a multi-round
/// run that includes an *aborted* round — the abort must not consume
/// budget (and certainly not twice).
#[test]
fn ledger_matches_accountant_across_aborted_round() {
    let mut rng = StdRng::seed_from_u64(61);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    config.fault_tolerance = fedora::config::FaultToleranceConfig::transactional();
    let mut server =
        FedoraServer::with_telemetry(config, |id| vec![id as u8; 32], Registry::new(), &mut rng);
    let mut mode = FedAvg;
    let reqs = [1u64, 2, 3];

    // Two clean rounds.
    for _ in 0..2 {
        server.begin_round(&reqs, &mut rng).expect("begin");
        server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    }
    assert_eq!(server.accountant().total_epsilon(), 2.0);

    // One aborted round: every read is corrupted, the retry budget
    // exhausts, and the transactional round rolls back.
    server.arm_faults(FaultConfig::chaos(11, 1.0, 0.0, 0.0));
    let err = server.begin_round(&reqs, &mut rng).unwrap_err();
    assert!(matches!(err, FedoraError::RoundAborted { .. }), "{err}");
    server.disarm_faults();
    assert_eq!(
        server.accountant().total_epsilon(),
        2.0,
        "aborted round must not consume privacy budget"
    );

    // One more clean round; the report gauge tracks the accountant.
    server.begin_round(&reqs, &mut rng).expect("begin");
    let report = server.end_round(&mut mode, 1.0, &mut rng).expect("end");
    assert_eq!(server.accountant().total_epsilon(), 3.0);
    assert_eq!(
        report.metrics.gauge("fdp.total.epsilon"),
        Some(server.accountant().total_epsilon()),
        "ledger gauge must equal the accountant exactly"
    );
    assert_eq!(report.metrics.gauge("fdp.rounds"), Some(3.0));
}

/// Secret-dependent series (anything derived from `k_union`) are tagged
/// audit-only and stripped from every default export format, while a
/// neutral series survives in all three.
#[test]
fn audit_only_series_stripped_from_all_default_exports() {
    let mut rng = StdRng::seed_from_u64(67);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 16);
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let mut mode = FedAvg;
    server.begin_round(&[1, 2, 3], &mut rng).expect("begin");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end");

    let snap = server.metrics_snapshot();
    assert!(snap.is_audit_only("fdp.round.k_union"));
    assert!(snap.gauge("fdp.round.k_union").is_some(), "lookups resolve");
    for (name, text) in [
        ("json", snap.to_json()),
        ("csv", snap.to_csv()),
        ("prom", snap.to_prometheus_text()),
    ] {
        assert!(!text.contains("k_union"), "{name} leaks k_union");
        assert!(!text.contains("fdp.dummies"), "{name} leaks dummies");
        assert!(
            !text.contains("fdp_dummies"),
            "{name} leaks dummies (prom-mangled)"
        );
        assert!(
            text.contains("rounds"),
            "{name} must keep non-secret series"
        );
    }
    // The audit view deliberately exports everything.
    assert!(snap.audit_view().to_json().contains("k_union"));
}

/// Enforcing budget: the refused round consumes nothing and leaves no
/// active round behind; alarm mode only journals.
#[test]
fn enforcing_budget_refuses_round() {
    let mut rng = StdRng::seed_from_u64(71);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 16);
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    config.privacy_budget = PrivacyBudgetConfig::enforcing(1.5);
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let mut mode = FedAvg;
    server.begin_round(&[1], &mut rng).expect("round 1");
    server.end_round(&mut mode, 1.0, &mut rng).expect("end 1");
    let err = server.begin_round(&[2], &mut rng).unwrap_err();
    match err {
        FedoraError::PrivacyBudgetExhausted { spent, budget } => {
            assert_eq!(spent, 1.0);
            assert_eq!(budget, 1.5);
        }
        other => panic!("expected budget exhaustion, got {other}"),
    }
    assert_eq!(server.accountant().total_epsilon(), 1.0, "refusal is free");
    assert!(matches!(
        server.end_round(&mut mode, 1.0, &mut rng).unwrap_err(),
        FedoraError::NoActiveRound
    ));
}

/// Per-shard namespaces: each table's ledger lands under `oram.shard<N>.*`
/// in the aggregated round snapshot, with audit-only tags intact.
#[test]
fn shard_namespaces_survive_aggregation() {
    let mut rng = StdRng::seed_from_u64(73);
    let mk = |entries: u64| {
        let mut c = FedoraConfig::for_testing(TableSpec::tiny(entries), 16);
        c.privacy = PrivacyConfig::with_epsilon(1.0);
        c
    };
    let mut multi = MultiTableServer::new(
        vec![
            (mk(128), Box::new(|id: u64| vec![id as u8; 32])),
            (mk(256), Box::new(|_| vec![7u8; 32])),
        ],
        &mut rng,
    );
    multi
        .begin_round(&[vec![1, 2], vec![3]], &mut rng)
        .expect("begin");
    let mut mode = FedAvg;
    let report = multi.end_round(&mut mode, 1.0, &mut rng).expect("end");
    for shard in 0..2 {
        let name = format!("oram.shard{shard}.fdp.total.epsilon");
        assert_eq!(
            report.metrics.gauge(&name),
            Some(multi.table(shard).accountant().total_epsilon()),
            "{name}"
        );
    }
    assert!(report
        .metrics
        .is_audit_only("oram.shard0.fdp.round.k_union"));
    assert!(!report.metrics.to_json().contains("k_union"));
}
