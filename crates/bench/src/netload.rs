//! Open-loop, trace-driven load generation against a `fedora-net` front
//! end.
//!
//! **Open-loop** means arrivals fire on a precomputed schedule that does
//! not wait for responses — exactly how real traffic behaves, and the
//! discipline that avoids *coordinated omission*: a closed-loop client
//! that waits for each reply before sending the next one silently slows
//! its arrival rate whenever the server stalls, hiding the very latency
//! spike it should be measuring. Here each request's **response latency
//! is measured from its scheduled arrival instant**, so queueing delay —
//! including time spent waiting behind a stalled sender — is charged to
//! the server, not forgiven.
//!
//! The schedule is deterministic (seeded): either fixed-rate or Poisson
//! (exponential inter-arrivals at the same mean rate). Arrivals are
//! partitioned round-robin over a configurable number of pipelined
//! connections, each run by a paced sender thread and a matching receiver
//! thread; responses are matched back to their arrival by sequence
//! number, so out-of-order replies (an immediate `Overloaded` overtaking
//! an in-flight round) are attributed correctly.
//!
//! Results land in the caller's [`Registry`]: the
//! `net.latency.response` histogram (nanoseconds, log-bucketed p50/p95/
//! p99) and the `net.load.sent` / `net.load.ok` / `net.load.overloaded` /
//! `net.load.rejected` / `net.load.errors` counters, all registered
//! eagerly so they appear (at zero) even in an idle snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fedora_net::client::NetClient;
use fedora_net::proto::{Request, Response};
use fedora_telemetry::{Counter, Histogram, HistogramSummary, Registry};

/// What to fire at the server.
#[derive(Clone, Debug)]
pub struct NetLoadSpec {
    /// Mean arrival rate, requests per second.
    pub rate_hz: f64,
    /// Total arrivals in the trace.
    pub requests: usize,
    /// Pipelined connections the trace is partitioned over.
    pub connections: usize,
    /// Embedding entries each request touches.
    pub entries_per_request: usize,
    /// Entry-id space to draw from (must match the server's table).
    pub table_entries: u64,
    /// Fixed-point words per entry update (must match the server's
    /// `entry_bytes / 4`).
    pub dim: usize,
    /// Poisson (exponential inter-arrival) vs fixed-rate spacing.
    pub poisson: bool,
    /// Seed for the arrival schedule and entry/gradient draws.
    pub seed: u64,
    /// Per-response receive timeout; expiry counts the remainder as
    /// errors instead of hanging the run.
    pub timeout: Duration,
}

impl Default for NetLoadSpec {
    fn default() -> Self {
        NetLoadSpec {
            rate_hz: 200.0,
            requests: 200,
            connections: 4,
            entries_per_request: 4,
            table_entries: 1024,
            dim: 8,
            poisson: false,
            seed: 7,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome counts and the response-latency summary for one run.
#[derive(Clone, Debug)]
pub struct NetLoadReport {
    /// Requests actually sent.
    pub sent: u64,
    /// `TrainOk` responses.
    pub ok: u64,
    /// Explicit `Overloaded` sheds.
    pub overloaded: u64,
    /// `ShuttingDown` rejections.
    pub rejected: u64,
    /// Everything else: protocol errors, transport failures, timeouts.
    pub errors: u64,
    /// Response latency (scheduled arrival → response) in nanoseconds.
    pub latency: HistogramSummary,
}

impl NetLoadReport {
    /// Fraction of sent requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.overloaded as f64 / self.sent as f64
        }
    }
}

/// `splitmix64`: the schedule must not depend on any RNG crate's stream
/// details, so the generator is pinned here, bit-for-bit.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in (0, 1], never 0 so `ln` stays finite.
fn unit(state: &mut u64) -> f64 {
    let mantissa = splitmix64(state) >> 11;
    ((mantissa + 1) as f64) / ((1u64 << 53) as f64)
}

/// One precomputed arrival: when to fire and what to send.
struct Arrival {
    offset: Duration,
    entries: Vec<u64>,
    updates: Vec<Vec<u64>>,
}

fn build_trace(spec: &NetLoadSpec) -> Vec<Arrival> {
    let mut state = spec.seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    let mean_gap = 1.0 / spec.rate_hz.max(1e-9);
    let mut at = 0.0f64;
    (0..spec.requests)
        .map(|_| {
            let gap = if spec.poisson {
                -unit(&mut state).ln() * mean_gap
            } else {
                mean_gap
            };
            at += gap;
            let entries: Vec<u64> = (0..spec.entries_per_request)
                .map(|_| splitmix64(&mut state) % spec.table_entries.max(1))
                .collect();
            let updates: Vec<Vec<u64>> = entries
                .iter()
                .map(|_| {
                    let grad: Vec<f32> = (0..spec.dim)
                        .map(|_| (unit(&mut state) * 2.0 - 1.0) as f32)
                        .collect();
                    fedora_fl::wire::quantize(&grad)
                })
                .collect();
            Arrival {
                offset: Duration::from_secs_f64(at),
                entries,
                updates,
            }
        })
        .collect()
}

struct LoadMetrics {
    sent: Counter,
    ok: Counter,
    overloaded: Counter,
    rejected: Counter,
    errors: Counter,
    latency: Histogram,
}

impl LoadMetrics {
    fn attach(registry: &Registry) -> Self {
        LoadMetrics {
            sent: registry.counter("net.load.sent"),
            ok: registry.counter("net.load.ok"),
            overloaded: registry.counter("net.load.overloaded"),
            rejected: registry.counter("net.load.rejected"),
            errors: registry.counter("net.load.errors"),
            latency: registry.histogram("net.latency.response"),
        }
    }
}

/// Fires `spec` at `addr`, blocking until every response (or its timeout)
/// has been accounted for. Instruments land in `registry`.
///
/// # Errors
///
/// A human-readable message when the server cannot be reached or a
/// session cannot be established; per-request failures after that are
/// *counted*, not returned, so one bad response cannot abort a run.
pub fn run(addr: &str, spec: &NetLoadSpec, registry: &Registry) -> Result<NetLoadReport, String> {
    let metrics = Arc::new(LoadMetrics::attach(registry));
    // Counters are cumulative per registry; the report is this run's delta.
    let base = (
        metrics.sent.get(),
        metrics.ok.get(),
        metrics.overloaded.get(),
        metrics.rejected.get(),
        metrics.errors.get(),
    );
    let trace = build_trace(spec);
    let connections = spec.connections.max(1);

    // Establish all sessions up front (Hello assigns the client ids) so
    // connection setup cost never pollutes the response-latency columns.
    let mut sessions = Vec::with_capacity(connections);
    for c in 0..connections {
        let mut client =
            NetClient::connect(addr).map_err(|e| format!("connect {addr} (conn {c}): {e}"))?;
        client
            .set_timeout(Some(spec.timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        let client_id = match client.call(&Request::Hello) {
            Ok(Response::Welcome { client }) => client,
            Ok(other) => return Err(format!("hello got unexpected reply {other:?}")),
            Err(e) => return Err(format!("hello failed: {e}")),
        };
        sessions.push((client_id, client));
    }

    // Round-robin partition of the trace, preserving each arrival's
    // absolute offset.
    let mut per_conn: Vec<Vec<Arrival>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, arrival) in trace.into_iter().enumerate() {
        per_conn[i % connections].push(arrival);
    }

    let start = Instant::now() + Duration::from_millis(20);
    let mut threads = Vec::new();
    let mut leftovers = Vec::new();
    for (conn_idx, (client_id, client)) in sessions.into_iter().enumerate() {
        let assigned = std::mem::take(&mut per_conn[conn_idx]);
        let (mut tx, mut rx) = client
            .into_split()
            .map_err(|e| format!("split conn {conn_idx}: {e}"))?;
        // seq → scheduled arrival instant, shared between the halves so
        // out-of-order replies (an Overloaded overtaking a round in
        // flight) still attribute latency to the right arrival.
        let pending: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
        // u64::MAX = "sender still going"; the receiver drains until it
        // has matched every request the sender managed to put on the wire.
        let sent_total = Arc::new(AtomicU64::new(u64::MAX));
        leftovers.push(Arc::clone(&pending));

        let sender = {
            let pending = Arc::clone(&pending);
            let sent_total = Arc::clone(&sent_total);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                for arrival in assigned {
                    let due = start + arrival.offset;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    // Register under the *scheduled* instant before the
                    // bytes leave: a sender running behind schedule is
                    // server-induced queueing and belongs in the
                    // measurement; a response can never beat the insert.
                    let seq = tx.peek_seq();
                    {
                        let mut map = match pending.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        map.insert(seq, due);
                    }
                    let req = Request::Train {
                        client: client_id,
                        entries: arrival.entries,
                        updates: arrival.updates,
                        trace: Some(tx.next_trace_id()),
                    };
                    match tx.send(&req) {
                        Ok(_) => {
                            metrics.sent.incr();
                            sent += 1;
                        }
                        Err(_) => {
                            // Session gone: stop sending; the unsent
                            // remainder is reported via leftovers.
                            let mut map = match pending.lock() {
                                Ok(g) => g,
                                Err(p) => p.into_inner(),
                            };
                            map.remove(&seq);
                            break;
                        }
                    }
                }
                sent_total.store(sent, Ordering::SeqCst);
            })
        };

        let receiver = {
            let pending = Arc::clone(&pending);
            let sent_total = Arc::clone(&sent_total);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut matched = 0u64;
                while matched < sent_total.load(Ordering::SeqCst) {
                    match rx.recv() {
                        Ok((seq, resp)) => {
                            let due = {
                                let mut map = match pending.lock() {
                                    Ok(g) => g,
                                    Err(p) => p.into_inner(),
                                };
                                map.remove(&seq)
                            };
                            match due {
                                Some(due) => {
                                    matched += 1;
                                    let latency = Instant::now().saturating_duration_since(due);
                                    metrics.latency.record(latency.as_nanos() as u64);
                                    match resp {
                                        Response::TrainOk { .. } => metrics.ok.incr(),
                                        Response::Overloaded => metrics.overloaded.incr(),
                                        Response::ShuttingDown => metrics.rejected.incr(),
                                        _ => metrics.errors.incr(),
                                    }
                                }
                                // A reply we never asked for (e.g. a
                                // seq-0 error before session close).
                                None => metrics.errors.incr(),
                            }
                        }
                        // Timeout, close, or a framing violation: stop;
                        // whatever is still pending is counted after join.
                        Err(_) => break,
                    }
                }
            })
        };
        threads.push(sender);
        threads.push(receiver);
    }
    for handle in threads {
        let _ = handle.join();
    }
    // Requests that never got a response within the timeout.
    for pending in leftovers {
        let stranded = match pending.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        };
        metrics.errors.add(stranded as u64);
    }

    Ok(NetLoadReport {
        sent: metrics.sent.get() - base.0,
        ok: metrics.ok.get() - base.1,
        overloaded: metrics.overloaded.get() - base.2,
        rejected: metrics.rejected.get() - base.3,
        errors: metrics.errors.get() - base.4,
        latency: metrics.latency.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_respects_rate() {
        let spec = NetLoadSpec {
            rate_hz: 1000.0,
            requests: 50,
            poisson: false,
            ..NetLoadSpec::default()
        };
        let a = build_trace(&spec);
        let b = build_trace(&spec);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.offset, y.offset);
            assert_eq!(x.entries, y.entries);
            assert_eq!(x.updates, y.updates);
        }
        // Fixed rate: exactly 1ms apart.
        let gap = a[1].offset - a[0].offset;
        assert!(
            gap >= Duration::from_micros(990) && gap <= Duration::from_micros(1010),
            "gap {gap:?}"
        );
        // Entries stay inside the table.
        assert!(a
            .iter()
            .flat_map(|t| t.entries.iter())
            .all(|&e| e < spec.table_entries));
    }

    #[test]
    fn poisson_trace_matches_mean_rate_roughly() {
        let spec = NetLoadSpec {
            rate_hz: 1000.0,
            requests: 2000,
            poisson: true,
            ..NetLoadSpec::default()
        };
        let trace = build_trace(&spec);
        let total = trace.last().unwrap().offset.as_secs_f64();
        // 2000 arrivals at 1 kHz ≈ 2 s; the seeded draw should land
        // within ±20%.
        assert!((1.6..=2.4).contains(&total), "span {total}");
        // Inter-arrival gaps must actually vary (not fixed-rate).
        let gaps: Vec<f64> = trace
            .windows(2)
            .map(|w| (w[1].offset - w[0].offset).as_secs_f64())
            .collect();
        let distinct = gaps.iter().filter(|&&g| (g - gaps[0]).abs() > 1e-9).count();
        assert!(distinct > gaps.len() / 2);
    }
}
