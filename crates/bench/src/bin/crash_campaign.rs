//! Crash-point chaos campaign: kill/restore cycles over every named
//! crash point × fault mix, asserting the durability contract as it goes.
//!
//! Usage: `crash_campaign [cycles] [seed] [--metrics-out PATH]
//! [--trace-out PATH]` (defaults: 3 cycles, seed 7). Each cycle runs, for
//! every crash point × fault mix: a few committed warm-up rounds under a
//! journaled fault plan, then a round with the crash point armed — the
//! "kill" — then recovery on a fresh server, asserting:
//!
//! * recovery lands exactly on the committed round count the dying server
//!   had durably reached;
//! * the recovered last-committed round report is byte-identical to the
//!   dying server's;
//! * the recovered accountant's cumulative ε is never below the dying
//!   server's committed total (torn rounds are *over*-charged);
//! * the journaled per-round fault seeds match the plan's derivation, so
//!   the chaos stream is reproducible across the restart;
//! * the recovered server commits further rounds and a final scrub of its
//!   main ORAM comes back clean.

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::durable::{read_records, CrashPoint, FaultPlan, JournalRecord};
use fedora::server::{FedoraError, FedoraServer};
use fedora_fl::modes::FedAvg;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 8;
const NUM_ENTRIES: u64 = 256;
const REQS_PER_ROUND: u64 = 24;
const WARMUP_ROUNDS: u64 = 2;

fn arg<T: std::str::FromStr>(args: &[String], n: usize, default: T) -> T {
    args.get(n).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn build_server(rng: &mut StdRng) -> FedoraServer {
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(NUM_ENTRIES), 64);
    config.privacy = PrivacyConfig::with_epsilon(0.5);
    config.fault_tolerance.max_read_retries = 16;
    FedoraServer::new(
        config,
        |id| (0..DIM).flat_map(|_| (id as f32).to_le_bytes()).collect(),
        rng,
    )
}

fn run_round(server: &mut FedoraServer, round: u64, rng: &mut StdRng) -> Result<(), FedoraError> {
    let reqs: Vec<u64> = (0..REQS_PER_ROUND)
        .map(|i| (i * 7 + round * 13) % NUM_ENTRIES)
        .collect();
    server.begin_round(&reqs, rng)?;
    let mode = FedAvg;
    for &id in &reqs {
        // At finite ε not every request is fetched (k < k_union drops
        // some); only served entries take a gradient.
        if server.serve(id, rng)?.is_some() {
            server.aggregate(&mode, id, &[0.125; DIM], 1, rng)?;
        }
    }
    let mut mode = FedAvg;
    server.end_round(&mut mode, 0.5, rng)?;
    Ok(())
}

fn main() {
    let (opts, args) = fedora_bench::outopts::OutputOpts::from_env();
    let cycles: u64 = arg(&args, 0, 3);
    let seed: u64 = arg(&args, 1, 7);

    // (label, bitflip, rollback, transient) per device operation. Bit
    // flips heal on re-read within the retry budget; transients retry.
    let fault_mixes: [(&str, f64, f64, f64); 3] = [
        ("clean", 0.0, 0.0, 0.0),
        ("transient", 0.0, 0.0, 0.15),
        ("bitflip+transient", 0.10, 0.0, 0.10),
    ];

    println!("Crash-recovery campaign: {cycles} cycles, seed {seed}");
    println!(
        "{:<28} {:<18} {:>9} {:>9} {:>12} {:>12}",
        "crash point", "fault mix", "committed", "recovered", "ε committed", "ε recovered"
    );

    let root = std::env::temp_dir().join(format!("fedora-crash-campaign-{}", std::process::id()));
    let mut kills = 0u64;
    let mut recoveries = 0u64;
    let mut torn_rounds = 0u64;

    for cycle in 0..cycles {
        for point in CrashPoint::all() {
            for &(mix, bitflip, rollback, transient) in &fault_mixes {
                let dir = root.join(format!("c{cycle}-{point}-{mix}"));
                let plan = FaultPlan {
                    master_seed: seed ^ cycle,
                    bitflip,
                    rollback,
                    transient,
                };
                let run_seed = seed + cycle * 1000;
                let mut rng = StdRng::seed_from_u64(run_seed);
                let mut server = build_server(&mut rng);
                server.enable_durability(&dir).expect("enable durability");
                server.set_fault_plan(plan);
                server.set_round_seed_hint(run_seed);
                // Fault-induced aborts are tolerated (retried) during
                // warm-up; only the armed crash point may kill the run.
                let mut attempts = 0u64;
                while server.committed_rounds() < WARMUP_ROUNDS {
                    attempts += 1;
                    assert!(attempts <= 32, "{point}/{mix}: warm-up never committed");
                    if let Err(e) = run_round(&mut server, attempts, &mut rng) {
                        println!("warm-up abort under {mix}: {e}");
                    }
                }
                let committed = server.committed_rounds();
                let committed_eps = server.accountant().total_epsilon();
                assert_eq!(committed, WARMUP_ROUNDS);

                // The kill: arm the crash point and run one more round.
                server.arm_crash_point(point);
                match run_round(&mut server, WARMUP_ROUNDS, &mut rng) {
                    Err(FedoraError::CrashInjected { .. }) => kills += 1,
                    // A fault abort or a zero-ORAM-access round can beat a
                    // mid-round point to it; recovery must still hold.
                    Err(e) => println!("crash round abort under {mix}: {e}"),
                    Ok(()) => {}
                }
                let want_rounds = server.committed_rounds();
                let want_report = server.last_committed_report().cloned();
                let dying_eps = server.accountant().total_epsilon();
                drop(server); // process death

                // Recovery on a fresh same-config server.
                let mut rng2 = StdRng::seed_from_u64(run_seed);
                let mut recovered = build_server(&mut rng2);
                let landed = recovered.recover(&dir).expect("recover");
                assert_eq!(
                    landed, want_rounds,
                    "{point}/{mix}: recovery must land on the last committed round"
                );
                assert_eq!(
                    recovered.last_committed_report().cloned(),
                    want_report,
                    "{point}/{mix}: recovered report must be byte-identical"
                );
                let recovered_eps = recovered.accountant().total_epsilon();
                assert!(
                    recovered_eps >= dying_eps - 1e-9,
                    "{point}/{mix}: recovery under-reported ε ({recovered_eps} < {dying_eps})"
                );
                if landed == WARMUP_ROUNDS {
                    torn_rounds += 1;
                    assert!(
                        recovered_eps >= committed_eps + 0.5 - 1e-9,
                        "{point}/{mix}: torn round ε was not charged"
                    );
                }

                // Journaled fault seeds match the plan's derivation.
                let key = fedora_crypto::aead::Key::from_bytes([0x5E; 32]).derive_subkey("durable");
                for rec in read_records(&dir, &key).expect("read journal") {
                    if let JournalRecord::Begin(b) = rec {
                        assert_eq!(
                            b.fault_seed,
                            Some(plan.round_seed(b.round)),
                            "{point}/{mix}: journaled seed must be plan-derived"
                        );
                        assert_eq!(b.seed_hint, run_seed);
                    }
                }

                // The recovered server makes committed progress and its
                // tree is intact.
                recovered.set_fault_plan(plan);
                run_round(&mut recovered, landed, &mut rng2).expect("post-recovery round");
                assert_eq!(recovered.committed_rounds(), landed + 1);
                recovered.clear_fault_plan();
                let scrub = recovered.scrub().expect("scrub");
                assert!(scrub.is_clean(), "{point}/{mix}: {:?}", scrub.failed);
                recoveries += 1;

                println!(
                    "{:<28} {:<18} {:>9} {:>9} {:>12.2} {:>12.2}",
                    point.name(),
                    mix,
                    committed,
                    landed,
                    committed_eps,
                    recovered_eps
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);

    println!("\n=== campaign totals ===");
    println!(
        "kill/restore cycles: {recoveries}   crashes fired: {kills}   torn rounds: {torn_rounds}"
    );
    println!("OK: every crash point recovered to the last committed round");

    if opts.any() {
        let registry = fedora_telemetry::Registry::new();
        registry
            .gauge("campaign.crash.cycles")
            .set(recoveries as f64);
        registry.gauge("campaign.crash.kills").set(kills as f64);
        registry
            .gauge("campaign.crash.torn_rounds")
            .set(torn_rounds as f64);
        if let Err(msg) = opts.write(&registry.snapshot()) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
