//! Perf-trajectory harness: run a fixed workload matrix on the live
//! pipeline and write a schema-versioned `BENCH_<date>.json`, or diff two
//! such files for regressions.
//!
//! ```text
//! perf_trajectory run [--out PATH] [--quick] [--rounds N] [--seed S]
//!                     [--threads L1,L2,...] [--shards N]
//!                     [--metrics-out PATH] [--trace-out PATH]
//! perf_trajectory compare BASE.json NEW.json
//!                     [--threshold-pct P] [--min-abs N] [--advisory]
//! ```
//!
//! `run` drives one [`FedoraServer`] per matrix cell (table size × clients
//! × aggregator) for a few rounds and records per-phase wall-times, I/O
//! counters, and client byte traffic — every metric larger-is-worse.
//! `--quick` shrinks the matrix to the two cells CI's `perf-smoke` job
//! runs (the committed `BENCH_*.json` baseline uses the same preset).
//!
//! `--threads` takes a comma list of worker-thread counts and runs the
//! whole matrix once per count; cells at N > 1 threads get a `.t<N>` id
//! suffix (the serial cells keep their unsuffixed ids so historical
//! baselines still line up). `--shards N` adds a multi-shard cell per
//! thread count — N independent tables driven through
//! [`MultiTableServer::round_parallel`], the workload where the shard
//! fan-out's wall-clock speedup shows up.
//!
//! `compare` exits non-zero when any metric regressed beyond the threshold
//! (default +25% and at least `--min-abs` absolute growth) or baseline
//! coverage was lost, unless `--advisory` is given.

use std::path::PathBuf;

use fedora::audit::empirical::{adjacent_inputs, estimate_twin_inputs};
use fedora::config::{
    FedoraConfig, ParallelismConfig, PipelineConfig, PrivacyConfig, TableSpec, WatchConfig,
};
use fedora::multi::{MultiTableServer, TableInit};
use fedora::server::{FedoraServer, PhaseBreakdown};
use fedora_bench::outopts::OutputOpts;
use fedora_bench::trajectory::{compare, today_iso, Cell, Thresholds, Trajectory};
use fedora_bench::Workload;
use fedora_fl::modes::{AggregationMode, FedAdam, FedAvg};
use fedora_telemetry::{Registry, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USAGE: &str = "\
perf_trajectory — capture or diff a perf-trajectory point

USAGE:
    perf_trajectory run [--out PATH] [--quick] [--rounds N] [--seed S]
                        [--threads L1,L2,...] [--shards N]
                        [--metrics-out PATH] [--trace-out PATH]
    perf_trajectory compare BASE.json NEW.json
                        [--threshold-pct P] [--min-abs N] [--advisory]

`run` writes BENCH_<date>.json (schema fedora-perf-trajectory/v1) from a
fixed workload matrix on the live pipeline. --threads runs the matrix once
per listed worker-thread count (cells get a .t<N> suffix for N > 1);
--shards N adds one N-table MultiTableServer cell per thread count.
`compare` diffs two such files and exits non-zero on regressions beyond
the threshold (advisory mode always exits 0).
";

/// One matrix cell's shape.
struct CellSpec {
    entries: u64,
    clients: usize,
    aggregator: &'static str,
    /// Independent tables (1 = the classic single-table pipeline; > 1
    /// drives a [`MultiTableServer`] round per round).
    shards: usize,
    /// Worker threads the cell runs with.
    threads: usize,
    /// Run with durability on (round journal + per-commit checkpoint to a
    /// scratch state dir) and record the checkpoint-overhead metrics.
    durable: bool,
    /// Serve the cell over loopback TCP through the `fedora-net` front
    /// end under open-loop load, and record SLO response-latency
    /// percentiles + shed rate instead of the in-process columns.
    net: bool,
    /// Run with look-ahead round pipelining on (lookahead 1): the next
    /// round's oblivious unions prefetch on the dedicated worker and
    /// eviction writes batch into the write phase. Results are identical
    /// to serial cells — only wall-clock time moves.
    pipelined: bool,
}

impl CellSpec {
    fn id(&self) -> String {
        let mut id = if self.net {
            format!(
                "net.entries{}.clients{}.{}",
                self.entries, self.clients, self.aggregator
            )
        } else if self.pipelined {
            format!(
                "pipelined.entries{}.clients{}.{}",
                self.entries, self.clients, self.aggregator
            )
        } else if self.durable {
            format!(
                "durable.entries{}.clients{}.{}",
                self.entries, self.clients, self.aggregator
            )
        } else if self.shards > 1 {
            format!(
                "shards{}.entries{}.clients{}.{}",
                self.shards, self.entries, self.clients, self.aggregator
            )
        } else {
            format!(
                "entries{}.clients{}.{}",
                self.entries, self.clients, self.aggregator
            )
        };
        // Serial cells keep the historical unsuffixed ids so committed
        // baselines still line up under `compare`.
        if self.threads > 1 {
            id.push_str(&format!(".t{}", self.threads));
        }
        id
    }
}

fn matrix(quick: bool, threads_list: &[usize], shards: usize) -> Vec<CellSpec> {
    let (entry_sizes, client_counts): (&[u64], &[usize]) = if quick {
        (&[1024], &[4])
    } else {
        (&[1024, 4096, 16384], &[4, 16])
    };
    let mut cells = Vec::new();
    for &threads in threads_list {
        for &entries in entry_sizes {
            for &clients in client_counts {
                for aggregator in ["fedavg", "fedadam"] {
                    cells.push(CellSpec {
                        entries,
                        clients,
                        aggregator,
                        shards: 1,
                        threads,
                        durable: false,
                        net: false,
                        pipelined: false,
                    });
                }
            }
        }
        if shards > 1 {
            cells.push(CellSpec {
                entries: entry_sizes[0],
                clients: client_counts[0],
                aggregator: "fedavg",
                shards,
                threads,
                durable: false,
                net: false,
                pipelined: false,
            });
        }
        // One durable cell per thread count: same workload as the first
        // serial cell, but with the round journal + per-commit checkpoint
        // on — its extra columns are the checkpoint-overhead trajectory.
        cells.push(CellSpec {
            entries: entry_sizes[0],
            clients: client_counts[0],
            aggregator: "fedavg",
            shards: 1,
            threads,
            durable: true,
            net: false,
            pipelined: false,
        });
        // One network-served cell per thread count: the same pipeline
        // fronted by the fedora-net TCP server under a short open-loop
        // burst — its columns are the SLO response-latency trajectory.
        cells.push(CellSpec {
            entries: entry_sizes[0],
            clients: client_counts[0],
            aggregator: "fedavg",
            shards: 1,
            threads,
            durable: false,
            net: true,
            pipelined: false,
        });
        // One pipelined cell per thread count: the first serial cell's
        // workload with look-ahead round pipelining on — its columns are
        // the overlap-speedup trajectory against the matching serial
        // cell's `round.latency_ns.mean`.
        cells.push(CellSpec {
            entries: entry_sizes[0],
            clients: client_counts[0],
            aggregator: "fedavg",
            shards: 1,
            threads,
            durable: false,
            net: false,
            pipelined: true,
        });
    }
    cells
}

/// Drives `rounds` rounds of `spec` on a fresh per-cell registry (so
/// counters don't bleed between cells) and returns the measured cell plus
/// the cell's final snapshot.
fn run_cell(spec: &CellSpec, rounds: usize, seed: u64, tracing: bool) -> (Cell, Snapshot) {
    if spec.net {
        return run_cell_net(spec, rounds, seed, tracing);
    }
    if spec.shards > 1 {
        return run_cell_multishard(spec, rounds, seed);
    }
    let registry = Registry::new();
    if tracing {
        registry.set_tracing(true);
    }
    let cell = match spec.aggregator {
        "fedadam" => run_cell_mode(spec, rounds, seed, &registry, &mut FedAdam::new()),
        _ => run_cell_mode(spec, rounds, seed, &registry, &mut FedAvg),
    };
    (cell, registry.snapshot())
}

/// Multi-shard cell: `spec.shards` independent tables, one complete round
/// per table fanned out through [`MultiTableServer::round_parallel`]. The
/// recorded latency is *wall-clock* across the fan-out — the metric the
/// thread-scaling curve reads.
fn run_cell_multishard(spec: &CellSpec, rounds: usize, seed: u64) -> (Cell, Snapshot) {
    const HISTORY_PER_CLIENT: usize = 8;
    const DIM: usize = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let k_total = spec.clients * HISTORY_PER_CLIENT;
    let configs: Vec<TableInit<'_>> = (0..spec.shards)
        .map(|_| {
            let mut config =
                FedoraConfig::for_testing(TableSpec::tiny(spec.entries), k_total.max(16));
            config.privacy = PrivacyConfig::with_epsilon(1.0);
            (
                config,
                Box::new(|_| vec![0u8; 4 * DIM]) as Box<dyn FnMut(u64) -> Vec<u8>>,
            )
        })
        .collect();
    let mut server = MultiTableServer::with_parallelism(
        configs,
        ParallelismConfig::with_threads(spec.threads),
        &mut rng,
    );

    let mut wall_ns = 0u64;
    for round in 0..rounds {
        let requests: Vec<Vec<u64>> = (0..spec.shards)
            .map(|_| {
                Workload::Kaggle
                    .generate(spec.entries, k_total, &mut rng)
                    .requests
            })
            .collect();
        let mut modes: Vec<FedAvg> = (0..spec.shards).map(|_| FedAvg).collect();
        let start = std::time::Instant::now();
        server
            .round_parallel(
                &requests,
                &mut modes,
                1.0,
                |t, table, mode, trng| {
                    for &id in &requests[t] {
                        if table.serve(id, trng)?.is_some() {
                            let gradient: Vec<f32> =
                                (0..DIM).map(|_| trng.gen_range(-0.1..0.1)).collect();
                            table.aggregate(&*mode, id, &gradient, 1, trng)?;
                        }
                    }
                    Ok(())
                },
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("cell {}: round {round}: {e}", spec.id()));
        wall_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }

    let stats = server.ssd_stats();
    let metrics = vec![
        (
            "round.latency_ns.mean".to_owned(),
            wall_ns as f64 / rounds as f64,
        ),
        ("ssd.pages_read".to_owned(), stats.pages_read as f64),
        ("ssd.pages_written".to_owned(), stats.pages_written as f64),
    ];
    (
        Cell {
            id: spec.id(),
            metrics,
        },
        server.metrics_snapshot(),
    )
}

/// Network-served cell: the same single-table pipeline behind the
/// `fedora-net` loopback front end, hammered with a short fixed-rate
/// open-loop burst. The recorded columns are the SLO view — response
/// latency measured from each request's *scheduled* arrival (queueing
/// included), shed rate, and the per-phase attribution the server's
/// tracer spans publish into the `round.phase.*` gauges.
fn run_cell_net(spec: &CellSpec, rounds: usize, seed: u64, tracing: bool) -> (Cell, Snapshot) {
    let registry = Registry::new();
    if tracing {
        registry.set_tracing(true);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(spec.entries), 64);
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    config.parallelism = ParallelismConfig::with_threads(spec.threads);
    let server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], registry.clone(), &mut rng);
    let handle = fedora_net::NetServer::spawn(
        server,
        seed ^ 0x5EED,
        "127.0.0.1:0",
        fedora_net::NetConfig::default(),
    )
    .unwrap_or_else(|e| panic!("cell {}: spawn front end: {e}", spec.id()));
    let load = fedora_bench::NetLoadSpec {
        rate_hz: 400.0,
        requests: (rounds * 25).max(50),
        connections: spec.clients,
        entries_per_request: 4,
        table_entries: spec.entries,
        dim: 8,
        poisson: false,
        seed,
        timeout: std::time::Duration::from_secs(60),
    };
    let report = fedora_bench::netload::run(&handle.addr().to_string(), &load, &registry)
        .unwrap_or_else(|e| panic!("cell {}: open-loop load: {e}", spec.id()));
    handle.shutdown_and_join();

    let snap = registry.snapshot();
    let gauge = |name: &str| snap.gauge(name).unwrap_or(0.0);
    let mut metrics = vec![
        (
            "net.latency.response_ns.p50".to_owned(),
            report.latency.p50 as f64,
        ),
        (
            "net.latency.response_ns.p95".to_owned(),
            report.latency.p95 as f64,
        ),
        (
            "net.latency.response_ns.p99".to_owned(),
            report.latency.p99 as f64,
        ),
        ("net.shed.ppm".to_owned(), report.shed_rate() * 1e6),
        ("net.load.errors".to_owned(), report.errors as f64),
    ];
    // Mean round latency over the burst keeps the cell comparable with
    // the in-process cells' headline column.
    if let Some(h) = snap.histogram("net.request.service_ns") {
        metrics.push(("round.latency_ns.mean".to_owned(), h.mean()));
    }
    // Per-phase attribution for the last served round, as published by
    // the pipeline's tracer spans.
    for phase in ["union", "fetch", "serve", "aggregate", "write"] {
        metrics.push((
            format!("net.phase.{phase}_ns"),
            gauge(&format!("round.phase.{phase}_ns")),
        ));
    }
    (
        Cell {
            id: spec.id(),
            metrics,
        },
        snap,
    )
}

fn run_cell_mode<M: AggregationMode>(
    spec: &CellSpec,
    rounds: usize,
    seed: u64,
    registry: &Registry,
    mode: &mut M,
) -> Cell {
    const HISTORY_PER_CLIENT: usize = 8;
    const DIM: usize = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let k_total = spec.clients * HISTORY_PER_CLIENT;
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(spec.entries), k_total.max(16));
    config.privacy = PrivacyConfig::with_epsilon(1.0);
    config.parallelism = ParallelismConfig::with_threads(spec.threads);
    if spec.pipelined {
        config.pipeline = PipelineConfig::lookahead_one();
    }
    // Watch plane at its most aggressive cadence: the overhead column
    // below records what sampling every round actually costs.
    config.watch = WatchConfig::every(1);
    let estimator_config = config.clone();
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 4 * DIM], registry.clone(), &mut rng);
    let state_dir = spec.durable.then(|| {
        let dir = std::env::temp_dir().join(format!(
            "fedora-perf-durable-{}-{}",
            std::process::id(),
            spec.id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        server
            .enable_durability(&dir)
            .unwrap_or_else(|e| panic!("cell {}: enable durability: {e}", spec.id()));
        dir
    });

    let mut phase_sums = PhaseBreakdown::default();
    // Pipelined cells draw the next round's workload right after
    // `begin_round` so its client set can be scheduled on the look-ahead
    // worker while the current round runs; serial cells keep the
    // historical draw order so committed baselines still line up.
    let mut next_stream = spec
        .pipelined
        .then(|| Workload::Kaggle.generate(spec.entries, k_total, &mut rng));
    for round in 0..rounds {
        let stream = match next_stream.take() {
            Some(s) => s,
            None => Workload::Kaggle.generate(spec.entries, k_total, &mut rng),
        };
        server
            .begin_round(&stream.requests, &mut rng)
            .unwrap_or_else(|e| panic!("cell {}: round {round} begin: {e}", spec.id()));
        if spec.pipelined {
            let upcoming = Workload::Kaggle.generate(spec.entries, k_total, &mut rng);
            if round + 1 < rounds {
                server.schedule_next_round(&upcoming.requests);
            }
            next_stream = Some(upcoming);
        }
        for &id in &stream.requests {
            let served = server
                .serve(id, &mut rng)
                .unwrap_or_else(|e| panic!("cell {}: serve {id}: {e}", spec.id()));
            if served.is_some() {
                let gradient: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-0.1..0.1)).collect();
                server
                    .aggregate(mode, id, &gradient, 1, &mut rng)
                    .unwrap_or_else(|e| panic!("cell {}: aggregate {id}: {e}", spec.id()));
            }
        }
        let report = server
            .end_round(mode, 1.0, &mut rng)
            .unwrap_or_else(|e| panic!("cell {}: round {round} end: {e}", spec.id()));
        phase_sums.union_ns += report.phases.union_ns;
        phase_sums.fetch_ns += report.phases.fetch_ns;
        phase_sums.serve_ns += report.phases.serve_ns;
        phase_sums.aggregate_ns += report.phases.aggregate_ns;
        phase_sums.write_ns += report.phases.write_ns;
        phase_sums.round_ns += report.phases.round_ns;
        phase_sums.overlap_ns += report.phases.overlap_ns;
    }

    let snap = server.metrics_snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0) as f64;
    let per_round = |total: u64| total as f64 / rounds as f64;
    let mut metrics = vec![
        (
            "round.latency_ns.mean".to_owned(),
            per_round(phase_sums.round_ns),
        ),
        (
            "phase.union_ns.mean".to_owned(),
            per_round(phase_sums.union_ns),
        ),
        (
            "phase.fetch_ns.mean".to_owned(),
            per_round(phase_sums.fetch_ns),
        ),
        (
            "phase.serve_ns.mean".to_owned(),
            per_round(phase_sums.serve_ns),
        ),
        (
            "phase.aggregate_ns.mean".to_owned(),
            per_round(phase_sums.aggregate_ns),
        ),
        (
            "phase.write_ns.mean".to_owned(),
            per_round(phase_sums.write_ns),
        ),
        ("ssd.pages_read".to_owned(), counter("storage.pages_read")),
        (
            "ssd.pages_written".to_owned(),
            counter("storage.pages_written"),
        ),
        (
            "fl.download_bytes".to_owned(),
            counter("fl.round.download_bytes"),
        ),
        (
            "fl.upload_bytes".to_owned(),
            counter("fl.round.upload_bytes"),
        ),
    ];
    if spec.pipelined {
        // Union work the prefetch worker absorbed off the critical path —
        // informational (excluded from round_ns), so only the new
        // pipelined cells carry it.
        metrics.push((
            "phase.overlap_ns.mean".to_owned(),
            per_round(phase_sums.overlap_ns),
        ));
    }
    if let Some(h) = snap.histogram("oram.access.latency") {
        metrics.push(("oram.access.latency_ns.p95".to_owned(), h.p95 as f64));
    }
    let gauge = |name: &str| snap.gauge(name).unwrap_or(0.0);
    metrics.push(("fdp.total.epsilon".to_owned(), gauge("fdp.total.epsilon")));
    metrics.push(("fdp.round.epsilon".to_owned(), gauge("fdp.round.epsilon")));
    // Empirical-ε trajectory: a short adjacent-twin estimation on the
    // cell's own configuration (replayed on fresh servers; the live
    // server just records the result so the audit gauges are published).
    const EMPIRICAL_SAMPLES: usize = 8;
    let (adj_a, adj_b) = adjacent_inputs(8);
    match estimate_twin_inputs(&estimator_config, seed, &adj_a, &adj_b, EMPIRICAL_SAMPLES) {
        Ok(emp) => {
            server.record_empirical_estimate(emp.estimate);
            metrics.push(("fdp.empirical.eps_hat".to_owned(), emp.estimate.eps_hat));
            metrics.push(("fdp.empirical.ci_hi".to_owned(), emp.estimate.ci_hi));
        }
        Err(e) => eprintln!("warning: cell {}: empirical estimate: {e}", spec.id()),
    }
    // Journal pressure: events evicted from the telemetry ring before
    // any tail could read them. Nonzero means the default capacity is
    // too small for this workload (serve --journal-capacity raises it).
    metrics.push((
        "telemetry.journal.dropped".to_owned(),
        counter("telemetry.journal.dropped"),
    ));
    // Watch-plane self-cost, in parts-per-million of round wall-time
    // (larger-is-worse like every column; the <5% claim is 50_000 here).
    if let Some(w) = snap.histogram("watch.sample.ns") {
        let round_ns = phase_sums.round_ns.max(1);
        metrics.push((
            "watch.overhead_ppm".to_owned(),
            w.sum as f64 * 1e6 / round_ns as f64,
        ));
    }
    if let Some(dir) = state_dir {
        // Checkpoint-overhead columns: the last commit's checkpoint size
        // and sync time (gauges), both larger-is-worse like every metric.
        metrics.push((
            "durable.checkpoint.bytes".to_owned(),
            gauge("durable.checkpoint.bytes"),
        ));
        metrics.push((
            "durable.checkpoint.ns".to_owned(),
            gauge("durable.checkpoint.ns"),
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    Cell {
        id: spec.id(),
        metrics,
    }
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn flag_present(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn cmd_run(opts: &OutputOpts, threads_list: &[usize], mut args: Vec<String>) -> i32 {
    let quick = flag_present(&mut args, "--quick");
    let out = flag_value(&mut args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", today_iso())));
    let rounds: usize = flag_value(&mut args, "--rounds")
        .map(|v| v.parse().unwrap_or(4))
        .unwrap_or(4);
    let seed: u64 = flag_value(&mut args, "--seed")
        .map(|v| v.parse().unwrap_or(42))
        .unwrap_or(42);
    let shards: usize = flag_value(&mut args, "--shards")
        .map(|v| v.parse().unwrap_or(1))
        .unwrap_or(1);
    if !args.is_empty() {
        eprintln!("error: unexpected arguments {args:?}\n\n{USAGE}");
        return 2;
    }

    let mut trajectory = Trajectory::new(&today_iso());
    let cells = matrix(quick, threads_list, shards);
    println!(
        "perf_trajectory: {} cells × {rounds} rounds (seed {seed}, threads {threads_list:?}{})",
        cells.len(),
        if quick { ", quick preset" } else { "" }
    );
    println!("  {:<42} {:>7} {:>16}", "cell", "threads", "round mean");
    // --metrics-out / --trace-out export the LAST cell's registry (each
    // cell runs on its own registry so counters don't bleed between cells).
    let mut last_snapshot = None;
    for spec in &cells {
        let (cell, snapshot) = run_cell(spec, rounds, seed, opts.trace_out.is_some());
        let mean_ms = cell.metric("round.latency_ns.mean").unwrap_or(0.0) / 1e6;
        println!("  {:<42} {:>7} {mean_ms:>13.3} ms", cell.id, spec.threads);
        trajectory.cells.push(cell);
        last_snapshot = Some(snapshot);
    }
    if let Err(e) = trajectory.write(&out) {
        eprintln!("error: writing {}: {e}", out.display());
        return 1;
    }
    println!("trajectory written to {}", out.display());
    if let Some(snapshot) = last_snapshot {
        opts.write_or_die(&snapshot);
    }
    0
}

fn cmd_compare(mut args: Vec<String>) -> i32 {
    let advisory = flag_present(&mut args, "--advisory");
    let thresholds = Thresholds {
        relative: flag_value(&mut args, "--threshold-pct")
            .and_then(|v| v.parse::<f64>().ok())
            .map(|p| p / 100.0)
            .unwrap_or(Thresholds::default().relative),
        min_absolute: flag_value(&mut args, "--min-abs")
            .and_then(|v| v.parse().ok())
            .unwrap_or(Thresholds::default().min_absolute),
    };
    let [base_path, new_path] = &args[..] else {
        eprintln!("error: compare needs BASE.json and NEW.json\n\n{USAGE}");
        return 2;
    };
    let load = |path: &str| -> Result<Trajectory, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Trajectory::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let report = match compare(&base, &new, &thresholds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    println!(
        "compare {base_path} ({}) -> {new_path} ({}), threshold +{:.0}% / {:.0} abs",
        base.date,
        new.date,
        thresholds.relative * 100.0,
        thresholds.min_absolute
    );
    for note in &report.notes {
        println!("note: {note}");
    }
    for missing in &report.missing {
        println!("MISSING: {missing} (present in baseline, absent now)");
    }
    for r in &report.regressions {
        println!(
            "REGRESSION: {}::{} {:.0} -> {:.0} ({:.2}x)",
            r.cell,
            r.metric,
            r.base,
            r.new,
            r.ratio()
        );
    }
    if report.failed() {
        println!(
            "{} regression(s), {} missing",
            report.regressions.len(),
            report.missing.len()
        );
        if advisory {
            println!("advisory mode: not failing the build");
            0
        } else {
            1
        }
    } else {
        println!("OK: no regressions beyond threshold");
        0
    }
}

/// Extracts `--threads L1,L2,...` (a comma list of positive integers)
/// before [`OutputOpts`] sees the arguments — the shared parser only
/// accepts a single count, while `run` sweeps a whole list.
fn extract_threads_list(args: &mut Vec<String>) -> Vec<usize> {
    let Some(value) = flag_value(args, "--threads") else {
        return vec![1];
    };
    let parsed: Option<Vec<usize>> = value
        .split(',')
        .map(|part| part.trim().parse::<usize>().ok().filter(|&n| n > 0))
        .collect();
    match parsed {
        Some(list) if !list.is_empty() => list,
        _ => {
            eprintln!("error: --threads needs a comma list of positive integers, got '{value}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads_list = extract_threads_list(&mut args);
    let opts = match OutputOpts::extract(&mut args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let code = match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => cmd_run(&opts, &threads_list, rest.to_vec()),
        Some((cmd, rest)) if cmd == "compare" => cmd_compare(rest.to_vec()),
        Some((cmd, _)) if cmd == "help" || cmd == "--help" || cmd == "-h" => {
            print!("{USAGE}");
            0
        }
        _ => {
            print!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}
