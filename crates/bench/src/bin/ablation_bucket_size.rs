//! §6.6 bucket-size ablation: growing the bucket from 4 KiB to 16 KiB
//! raises the eviction period `A` (longer SSD lifetime) but moves more
//! data per path (higher latency) — the paper reports +18 % lifetime for
//! +67 % latency on the Small table.

use fedora::analytic::{fedora_round, lifetime_months};
use fedora::config::{FedoraConfig, TableSpec};
use fedora::latency::LatencyModel;
use fedora_bench::outopts::OutputOpts;
use fedora_bench::Workload;
use fedora_fdp::FdpMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHUNK: usize = 16 * 1024;

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    let mut rng = StdRng::seed_from_u64(11);
    let model = LatencyModel::default();
    let mech = FdpMechanism::new(1.0, fedora_fdp::YShape::Uniform).expect("valid");
    let table = TableSpec::small();
    let k_total = 100_000usize;

    println!("Bucket-size ablation (Small table, {k_total} updates, e=1, MovieLens hide-val)");
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>16} {:>14}",
        "Bucket", "Z", "A", "Depth", "Lifetime (mo)", "Latency (s)"
    );

    let stream = Workload::MovielensHideVal.generate(table.num_entries, k_total, &mut rng);
    let summary = stream.summarize(&mech, CHUNK, &mut rng);
    let scans = fedora_oblivious::union::requests_scan_cost(k_total, CHUNK);

    let mut baseline: Option<(f64, f64)> = None;
    for pages in [1usize, 2, 4, 8] {
        let geo = table.geometry_for_bucket_pages(pages);
        let a = FedoraConfig::tuned_eviction_period(&geo);
        let mut config = FedoraConfig::paper_tuned(table, k_total);
        config.geometry = geo;
        config.raw.eviction_period = a;
        let counts = fedora_round(&geo, summary.k_accesses, a, 4096);
        let life = lifetime_months(&config.ssd, &geo, &counts, fedora::latency::FL_ROUND_BASE_S);
        let lat = model
            .analytic_round_latency(&config, &counts, k_total as u64, scans, true)
            .total_s();
        let note = match &baseline {
            None => {
                baseline = Some((life, lat));
                String::new()
            }
            Some((l0, t0)) => format!(
                "  [{:+.0}% life, {:+.0}% latency]",
                (life / l0 - 1.0) * 100.0,
                (lat / t0 - 1.0) * 100.0
            ),
        };
        let prefix = format!("bucket_ablation.{}kib", 4 * pages);
        registry
            .gauge(&format!("{prefix}.lifetime_months"))
            .set(life);
        registry.gauge(&format!("{prefix}.latency_s")).set(lat);
        println!(
            "{:<12} {:>6} {:>6} {:>8} {:>16.1} {:>14.2}{note}",
            format!("{} KiB", 4 * pages),
            geo.z(),
            a,
            geo.depth(),
            life,
            lat
        );
    }
    println!("\nPaper reference: 4->16 KiB on Small gave +18% lifetime, +67% latency;");
    println!("larger buckets trade latency for lifetime with diminishing returns.");
    opts.write_or_die(&registry.snapshot());
}
