//! §3.2 strawman comparison: vanilla ORAM (Strawman 1) vs the naive dedup
//! optimization (Strawman 2) vs ε-FDP, measured on the *simulated* FEDORA
//! pipeline (real ORAM, real devices) at reduced scale.
//!
//! Demonstrates the leakage argument concretely: Strawman 2's access count
//! reveals whether all users requested the same entry; Strawman 1 and the
//! ε-FDP configurations bound that leakage at the cost of extra accesses.

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_bench::outopts::{metric_label, OutputOpts};
use fedora_fl::modes::FedAvg;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(privacy: PrivacyConfig, requests: &[u64], seed: u64, registry: Registry) -> (usize, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(1024), 256);
    config.privacy = privacy;
    let mut server =
        FedoraServer::with_telemetry(config, |id| vec![id as u8; 32], registry, &mut rng);
    let report = server.begin_round(requests, &mut rng).expect("round fits");
    let mut mode = FedAvg;
    let report_end = server
        .end_round(&mut mode, 1.0, &mut rng)
        .expect("round ends");
    (
        report.k_accesses,
        report_end.ssd.pages_read + report_end.ssd.pages_written,
    )
}

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    // Two worlds the adversary wants to distinguish: everyone requests the
    // SAME entry vs everyone requests DIFFERENT entries.
    let same: Vec<u64> = vec![7; 64];
    let diff: Vec<u64> = (0..64).collect();

    println!("Strawman comparison on the simulated pipeline (64 requests):\n");
    println!(
        "{:<34} {:>14} {:>14} {:>10}",
        "Design", "k (same)", "k (diff)", "Leaks?"
    );
    type MakePrivacy = fn() -> PrivacyConfig;
    let configs: [(&str, MakePrivacy); 4] = [
        ("Strawman 1: vanilla ORAM (e=0)", PrivacyConfig::perfect),
        ("Strawman 2: naive dedup (e=inf)", PrivacyConfig::none),
        ("FEDORA e=1", || PrivacyConfig::with_epsilon(1.0)),
        ("FEDORA e=0.1", || PrivacyConfig::with_epsilon(0.1)),
    ];
    for (label, make) in configs {
        let (k_same, io_same) = run(make(), &same, 100, registry.clone());
        let (k_diff, io_diff) = run(make(), &diff, 101, registry.clone());
        let prefix = format!("strawmen.{}", metric_label(label));
        registry
            .gauge(&format!("{prefix}.k_same"))
            .set(k_same as f64);
        registry
            .gauge(&format!("{prefix}.k_diff"))
            .set(k_diff as f64);
        let leaks = if label.contains("Strawman 2") {
            "YES"
        } else {
            "bounded"
        };
        println!(
            "{:<34} {:>7} ({:>4}p) {:>7} ({:>4}p) {:>10}",
            label, k_same, io_same, k_diff, io_diff, leaks
        );
    }
    println!();
    println!("Strawman 2's k jumps from 1 to 64 between the two worlds — an");
    println!("unbounded (eps = inf) leak. Strawman 1 always reads 64 (perfect");
    println!("privacy, maximal I/O). The e-FDP rows stay close to the cheap");
    println!("dedup cost while keeping the distributions e^eps-close.");
    opts.write_or_die(&registry.snapshot());
}
