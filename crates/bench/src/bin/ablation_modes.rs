//! §4.3 operation-mode ablation: the same FL workload trained through the
//! FEDORA pipeline under each supported `Pre`/`Post` aggregation mode
//! (FedAvg, FedAdam, EANA, LazyDP), comparing final model quality and
//! showing that every mode runs unmodified over the buffer ORAM's
//! aggregation slots.

use fedora::training::{train_with_fedora_mode, TrainingConfig, TrainingOutcome};
use fedora_bench::outopts::{metric_label, OutputOpts};
use fedora_fdp::ProtectionMode;
use fedora_fl::client::LocalTrainer;
use fedora_fl::datasets::{Dataset, SyntheticConfig};
use fedora_fl::model::{DlrmConfig, DlrmModel, Pooling};
use fedora_fl::modes::{AggregationMode, Eana, FedAdam, FedAvg, LazyDp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run<M: AggregationMode>(
    label: &str,
    mut mode: M,
    dataset: &Dataset,
    server_lr: f32,
    rounds: usize,
    threads: usize,
) -> TrainingOutcome {
    let mut rng = StdRng::seed_from_u64(404);
    let mut model = DlrmModel::new(
        DlrmConfig {
            num_items: dataset.config().num_items,
            embedding_dim: 8,
            hidden_dim: 16,
            use_private_history: true,
            pooling: Pooling::Mean,
        },
        &mut StdRng::seed_from_u64(405),
    );
    let cfg = TrainingConfig {
        users_per_round: 24,
        rounds,
        server_lr,
        trainer: LocalTrainer {
            lr: 0.2,
            epochs: 2,
            ..Default::default()
        },
        protection: Some((ProtectionMode::HideValue, 1.0)),
        threads,
    };
    let out = train_with_fedora_mode(&mut model, dataset, &cfg, &mut mode, &mut rng)
        .expect("pipeline run");
    println!(
        "{:<28} AUC {:.4}   reduced {:>5.1}%  dummy {:>5.2}%  lost {:>5.2}%",
        label,
        out.auc,
        out.reduced_accesses * 100.0,
        out.dummy_rate * 100.0,
        out.lost_rate * 100.0
    );
    out
}

fn main() {
    let (opts, args) = OutputOpts::from_env();
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 8 } else { 30 };
    let threads = opts.threads_or_serial();
    let registry = opts.registry();
    let record = |label: &str, out: TrainingOutcome| {
        let prefix = format!("modes.{}", metric_label(label));
        registry.gauge(&format!("{prefix}.auc")).set(out.auc);
        registry
            .gauge(&format!("{prefix}.reduced_accesses"))
            .set(out.reduced_accesses);
        registry
            .gauge(&format!("{prefix}.dummy_rate"))
            .set(out.dummy_rate);
        registry
            .gauge(&format!("{prefix}.lost_rate"))
            .set(out.lost_rate);
    };

    let mut cfg = SyntheticConfig::movielens_like();
    cfg.num_users = 96;
    cfg.num_items = 256;
    cfg.samples_per_user = 12;
    cfg.test_samples = 1500;
    let dataset = Dataset::generate(cfg);

    println!("Operation-mode ablation (MovieLens-like, eps = 1, {rounds} rounds):\n");
    record(
        "FedAvg",
        run("FedAvg (Eq. 1)", FedAvg, &dataset, 2.0, rounds, threads),
    );
    // Adam's normalized steps want a smaller server LR.
    record(
        "FedAdam",
        run("FedAdam", FedAdam::new(), &dataset, 0.05, rounds, threads),
    );
    record(
        "EANA",
        run(
            "EANA (clip 1.0, sigma 0.01)",
            Eana::new(1.0, 0.01),
            &dataset,
            2.0,
            rounds,
            threads,
        ),
    );
    record(
        "LazyDP",
        run(
            "LazyDP (clip 1.0, sigma 0.01)",
            LazyDp::new(1.0, 0.01),
            &dataset,
            2.0,
            rounds,
            threads,
        ),
    );
    println!("\nAll four modes run unmodified through the buffer ORAM (Eq. 4);");
    println!("the DP modes (EANA/LazyDP) trade a little AUC for gradient privacy.");
    opts.write_or_die(&registry.snapshot());
}
