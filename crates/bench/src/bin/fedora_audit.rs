//! `fedora_audit` — the obliviousness / privacy-ledger audit harness.
//!
//! Runs the twin-run obliviousness auditor ([`fedora::audit`]) against the
//! three mechanism presets and writes a schema-versioned audit report:
//!
//! * **vanilla delta(K)** (ε = 0): canonical traces must match exactly;
//! * **ε-FDP** (finite ε): traces differ, but per-level access
//!   frequencies must be statistically indistinguishable;
//! * **naive dedup** (ε = ∞, the §3.2 strawman): a deliberate canary —
//!   the auditor must *flag* it, proving the detector has teeth.
//!
//! A determinism check (identical inputs + seed ⇒ byte-identical raw
//! traces) guards the twin comparison itself, and a privacy-ledger check
//! verifies `fdp.total.epsilon` on the final round report equals the
//! accountant's total exactly.
//!
//! ```text
//! fedora_audit [--k N] [--rounds N] [--seed S] [--entries N]
//!              [--epsilon E] [--out PATH]
//!              [--metrics-out PATH] [--metrics-format json|csv|prom]
//! ```
//!
//! Exits non-zero when any check fails (honest mechanism flagged, canary
//! missed, nondeterminism, or a ledger mismatch).

use std::path::PathBuf;

use fedora::audit::empirical::{adjacent_inputs, estimate_twin_inputs};
use fedora::audit::{
    audit_determinism, audit_twin_inputs, twin_inputs, AuditOutcome, AuditVerdict,
};
use fedora::config::{FedoraConfig, ParallelismConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_bench::outopts::OutputOpts;
use fedora_fl::modes::FedAvg;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "\
fedora_audit — twin-run obliviousness auditor + privacy-ledger check

USAGE:
    fedora_audit [--k N] [--rounds N] [--seed S] [--entries N]
                 [--epsilon E] [--out PATH] [--threads N]
                 [--empirical] [--empirical-samples N]
                 [--metrics-out PATH] [--metrics-format json|csv|prom]

--threads N runs every audited pipeline with N worker threads; the checks
must pass identically at any thread count (determinism is the point).

--empirical additionally runs the online empirical-ε estimator
(fedora::audit::empirical) over N replayed adjacent twin pairs per check
(default 24, --empirical-samples): the honest mechanisms must NOT trip
the empirical alarm and the naive-dedup canary MUST. The canary's ε is
∞ (it claims nothing), so its estimate is judged against the *claimed*
deployment ε (--epsilon) — the strawman scenario is an implementation
leaking more than its configuration admits.

Writes an audit report (schema fedora-privacy-audit/v1) to --out (default
fedora_audit.json) and exits non-zero when any check fails: an honest
mechanism flagged leaky, the naive-dedup canary NOT flagged, a
nondeterministic replay, or a ledger/accountant mismatch.
";

/// One named auditor check with its expectation.
struct Check {
    name: &'static str,
    privacy: PrivacyConfig,
    /// Whether the auditor is *supposed* to flag this mechanism.
    expect_leak: bool,
}

fn verdict_str(v: &AuditVerdict) -> &'static str {
    match v {
        AuditVerdict::Oblivious => "oblivious",
        AuditVerdict::IndistinguishableWithinEpsilon => "indistinguishable_within_epsilon",
        AuditVerdict::Leaky { .. } => "leaky",
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".to_owned()
    } else if v > 0.0 {
        "\"inf\"".to_owned()
    } else {
        "\"-inf\"".to_owned()
    }
}

fn check_json(name: &str, expect_leak: bool, outcome: &AuditOutcome, pass: bool) -> String {
    format!(
        "{{\"name\":\"{name}\",\"epsilon\":{},\"len_a\":{},\"len_b\":{},\
         \"canonical_equal\":{},\"chi_statistic\":{},\"chi_critical\":{},\
         \"chi_df\":{},\"verdict\":\"{}\",\"expect_leak\":{expect_leak},\
         \"pass\":{pass}}}",
        json_f64(outcome.mechanism_epsilon),
        outcome.len_a,
        outcome.len_b,
        outcome.canonical_equal,
        json_f64(outcome.chi.statistic),
        json_f64(outcome.chi.critical),
        outcome.chi.df,
        verdict_str(&outcome.verdict),
    )
}

/// Ledger check: run a few live rounds and compare `fdp.total.epsilon` on
/// the final report against the accountant. Returns (total, matches).
fn ledger_check(
    entries: u64,
    k: usize,
    rounds: usize,
    seed: u64,
    epsilon: f64,
    threads: usize,
) -> (f64, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(entries), k.max(16));
    config.privacy = PrivacyConfig::with_epsilon(epsilon);
    config.parallelism = ParallelismConfig::with_threads(threads);
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], Registry::new(), &mut rng);
    let mut mode = FedAvg;
    let requests: Vec<u64> = (0..k as u64).collect();
    let mut last_gauge = None;
    for _ in 0..rounds {
        if server.begin_round(&requests, &mut rng).is_err() {
            return (f64::NAN, false);
        }
        match server.end_round(&mut mode, 1.0, &mut rng) {
            Ok(report) => last_gauge = report.metrics.gauge("fdp.total.epsilon"),
            Err(_) => return (f64::NAN, false),
        }
    }
    let total = server.accountant().total_epsilon();
    (total, last_gauge == Some(total))
}

fn bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let (opts, mut args) = OutputOpts::from_env();
    if args
        .iter()
        .any(|a| a == "help" || a == "--help" || a == "-h")
    {
        print!("{USAGE}");
        return;
    }
    let k: usize = flag_value(&mut args, "--k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let rounds: usize = flag_value(&mut args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let seed: u64 = flag_value(&mut args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let entries: u64 = flag_value(&mut args, "--entries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let epsilon: f64 = flag_value(&mut args, "--epsilon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let empirical = bool_flag(&mut args, "--empirical");
    let empirical_samples: usize = flag_value(&mut args, "--empirical-samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let out = flag_value(&mut args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("fedora_audit.json"));
    if !args.is_empty() {
        eprintln!("error: unexpected arguments {args:?}\n\n{USAGE}");
        std::process::exit(2);
    }

    let checks = [
        Check {
            name: "vanilla_delta_k",
            privacy: PrivacyConfig::perfect(),
            expect_leak: false,
        },
        Check {
            name: "epsilon_fdp",
            privacy: PrivacyConfig::with_epsilon(epsilon),
            expect_leak: false,
        },
        Check {
            name: "naive_dedup_canary",
            privacy: PrivacyConfig::none(),
            expect_leak: true,
        },
    ];

    let registry = opts.registry();
    let threads = opts.threads_or_serial();
    let (req_a, req_b) = twin_inputs(k);
    let (adj_a, adj_b) = adjacent_inputs(k);
    let mut all_pass = true;
    let mut check_blobs = Vec::new();
    let mut emp_blobs = Vec::new();
    println!(
        "fedora_audit: K = {k}, {rounds} rounds, seed {seed}, {entries} entries, \
         {threads} thread(s)"
    );
    for check in &checks {
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(entries), k.max(16));
        config.privacy = check.privacy.clone();
        config.parallelism = ParallelismConfig::with_threads(threads);
        let outcome = match audit_twin_inputs(&config, seed, &req_a, &req_b, rounds) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: check {}: {e}", check.name);
                std::process::exit(1);
            }
        };
        let flagged = !outcome.verdict.is_pass();
        let pass = flagged == check.expect_leak;
        all_pass &= pass;
        println!(
            "  {:<20} ε = {:<8} verdict = {:<32} [{}]",
            check.name,
            json_f64(outcome.mechanism_epsilon).replace('"', ""),
            verdict_str(&outcome.verdict),
            if pass { "ok" } else { "FAIL" }
        );
        if let AuditVerdict::Leaky { reason } = &outcome.verdict {
            println!("      {reason}");
        }
        registry
            .gauge(&format!("audit.{}.pass", check.name))
            .set_u64(u64::from(pass));
        registry
            .gauge(&format!("audit.{}.chi_statistic", check.name))
            .set(outcome.chi.statistic);
        check_blobs.push(check_json(check.name, check.expect_leak, &outcome, pass));

        if empirical {
            let emp = match estimate_twin_inputs(&config, seed, &adj_a, &adj_b, empirical_samples) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: empirical {}: {e}", check.name);
                    std::process::exit(1);
                }
            };
            let est = emp.estimate;
            // The canary claims ε = ∞, which no estimate can exceed;
            // judge it against the *claimed* deployment ε instead.
            let budget = if emp.mechanism_epsilon.is_finite() {
                emp.mechanism_epsilon
            } else {
                epsilon
            };
            let alarm = est.exceeds(budget);
            let emp_pass = alarm == check.expect_leak;
            all_pass &= emp_pass;
            println!(
                "  {:<20} empirical eps_hat = {:.4} [{:.4}, {:.4}] over {} pairs \
                 (budget {}, alarm {}) [{}]",
                format!("{}:eps", check.name),
                est.eps_hat,
                est.ci_lo,
                est.ci_hi,
                est.samples,
                json_f64(budget).replace('"', ""),
                alarm,
                if emp_pass { "ok" } else { "FAIL" }
            );
            registry
                .gauge(&format!("audit.{}.empirical_eps_hat", check.name))
                .set(est.eps_hat);
            registry
                .gauge(&format!("audit.{}.empirical_alarm", check.name))
                .set_u64(u64::from(alarm));
            emp_blobs.push(format!(
                "{{\"name\":\"{}\",\"eps_hat\":{},\"ci_lo\":{},\"ci_hi\":{},\
                 \"samples\":{},\"distance\":{},\"mechanism_epsilon\":{},\
                 \"budget\":{},\"alarm\":{alarm},\"expect_alarm\":{},\
                 \"pass\":{emp_pass}}}",
                check.name,
                json_f64(est.eps_hat),
                json_f64(est.ci_lo),
                json_f64(est.ci_hi),
                est.samples,
                emp.distance,
                json_f64(emp.mechanism_epsilon),
                json_f64(budget),
                check.expect_leak,
            ));
        }
    }

    let mut det_config = FedoraConfig::for_testing(TableSpec::tiny(entries), k.max(16));
    det_config.privacy = PrivacyConfig::with_epsilon(epsilon);
    det_config.parallelism = ParallelismConfig::with_threads(threads);
    let deterministic = match audit_determinism(&det_config, seed, &req_a, rounds) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: determinism check: {e}");
            std::process::exit(1);
        }
    };
    all_pass &= deterministic;
    println!(
        "  {:<20} byte-identical replay {}",
        "determinism",
        if deterministic { "[ok]" } else { "[FAIL]" }
    );

    let (ledger_total, ledger_ok) = ledger_check(entries, k, rounds, seed, epsilon, threads);
    all_pass &= ledger_ok;
    println!(
        "  {:<20} fdp.total.epsilon == accountant ({}) {}",
        "privacy_ledger",
        json_f64(ledger_total).replace('"', ""),
        if ledger_ok { "[ok]" } else { "[FAIL]" }
    );
    registry
        .gauge("audit.determinism.pass")
        .set_u64(u64::from(deterministic));
    registry
        .gauge("audit.ledger.pass")
        .set_u64(u64::from(ledger_ok));

    let report = format!(
        "{{\"schema\":\"fedora-privacy-audit/v1\",\"seed\":{seed},\"k\":{k},\
         \"rounds\":{rounds},\"entries\":{entries},\"checks\":[{}],\
         \"empirical\":[{}],\
         \"determinism\":{{\"byte_identical\":{deterministic}}},\
         \"ledger\":{{\"total_epsilon\":{},\"matches_accountant\":{ledger_ok}}},\
         \"pass\":{all_pass}}}",
        check_blobs.join(","),
        emp_blobs.join(","),
        json_f64(ledger_total),
    );
    if let Err(e) = std::fs::write(&out, format!("{report}\n")) {
        eprintln!("error: writing {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("audit report written to {}", out.display());
    opts.write_or_die(&registry.snapshot());
    if !all_pass {
        eprintln!("error: audit FAILED (see report)");
        std::process::exit(1);
    }
    println!("audit PASSED");
}
