//! Table 1: ORAM access reduction and model quality under different ε-FDP
//! settings, on MovieLens-like and Taobao-like synthetic datasets.
//!
//! Runs real FL training through the *simulated* FEDORA pipeline (actual
//! RAW ORAM over the simulated SSD, buffer ORAM, oblivious union, FDP
//! sampling). `pub` rows train without private features (conventional FL).
//!
//! Usage: `table1_fl_accuracy [--quick]` — `--quick` shrinks rounds for a
//! fast smoke run.

use fedora::training::{train_with_fedora, TrainingConfig, TrainingOutcome};
use fedora_bench::outopts::{metric_label, OutputOpts};
use fedora_fdp::ProtectionMode;
use fedora_fl::client::LocalTrainer;
use fedora_fl::datasets::{Dataset, DatasetKind, SyntheticConfig};
use fedora_fl::model::{DlrmConfig, DlrmModel, Pooling};
use fedora_fl::sim::{run_reference_fl, FlSimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset_for(kind: DatasetKind) -> Dataset {
    let mut cfg = match kind {
        DatasetKind::MovieLens => SyntheticConfig::movielens_like(),
        DatasetKind::Taobao => SyntheticConfig::taobao_like(),
        DatasetKind::Kaggle => SyntheticConfig::kaggle_like(),
    };
    cfg.num_users = 256;
    cfg.num_items = 1024;
    cfg.samples_per_user = 12;
    cfg.test_samples = 3000;
    Dataset::generate(cfg)
}

fn fresh_model(dataset: &Dataset, private: bool, seed: u64) -> DlrmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    DlrmModel::new(
        DlrmConfig {
            num_items: dataset.config().num_items,
            embedding_dim: 8,
            hidden_dim: 16,
            use_private_history: private,
            pooling: Pooling::Mean,
        },
        &mut rng,
    )
}

fn row(label: &str, eps: &str, o: &TrainingOutcome) {
    println!(
        "{:<12} {:>5} {:>10.2}% {:>9.2}% {:>9.2}% {:>9.4}",
        label,
        eps,
        o.reduced_accesses * 100.0,
        o.dummy_rate * 100.0,
        o.lost_rate * 100.0,
        o.auc
    );
}

fn main() {
    let (opts, args) = OutputOpts::from_env();
    let quick = args.iter().any(|a| a == "--quick");
    let registry = opts.registry();
    let rounds = if quick { 8 } else { 40 };
    let users_per_round = 32;

    println!("Table 1: access reduction and model quality (synthetic datasets; see DESIGN.md)");
    println!("Rounds: {rounds}, users/round: {users_per_round}\n");
    println!(
        "{:<12} {:>5} {:>11} {:>10} {:>10} {:>9}",
        "Dataset", "eps", "Reduced", "Dummy", "Lost", "AUC"
    );

    for kind in [DatasetKind::MovieLens, DatasetKind::Taobao] {
        let dataset = dataset_for(kind);

        // pub baseline: conventional FL without private features.
        let mut rng = StdRng::seed_from_u64(1000);
        let mut pub_model = fresh_model(&dataset, false, 999);
        let sim = FlSimConfig {
            users_per_round,
            rounds,
            server_lr: 2.0,
            trainer: LocalTrainer {
                lr: 0.2,
                epochs: 2,
                ..Default::default()
            },
            threads: opts.threads_or_serial(),
        };
        let pub_auc = *run_reference_fl(&mut pub_model, &dataset, &sim, &mut rng)
            .last()
            .expect("at least one round");
        registry
            .gauge(&format!("table1.{}.pub.auc", metric_label(kind.label())))
            .set(pub_auc);
        println!(
            "{:<12} {:>5} {:>11} {:>10} {:>10} {:>9.4}   (no private features)",
            kind.label(),
            "pub",
            "-",
            "-",
            "-",
            pub_auc
        );

        for (mode_label, protection) in [
            ("hide priv val", None::<ProtectionMode>),
            (
                "hide # of priv vals",
                Some(ProtectionMode::HideValueCount { padded_count: 100 }),
            ),
        ] {
            println!("  -- {mode_label} --");
            for eps in [f64::INFINITY, 1.0, 0.1] {
                let prot = match (&protection, eps.is_infinite()) {
                    (_, true) => None,
                    (None, false) => Some((ProtectionMode::HideValue, eps)),
                    (Some(m), false) => Some((*m, eps)),
                };
                // ε=∞ in hide-# mode still pads the request stream.
                let prot = if eps.is_infinite() && protection.is_some() {
                    Some((
                        ProtectionMode::HideValueCount { padded_count: 100 },
                        f64::INFINITY,
                    ))
                } else {
                    prot
                };
                let cfg = TrainingConfig {
                    users_per_round,
                    rounds,
                    server_lr: 2.0,
                    trainer: LocalTrainer {
                        lr: 0.2,
                        epochs: 2,
                        ..Default::default()
                    },
                    protection: prot,
                    threads: opts.threads_or_serial(),
                };
                let mut model = fresh_model(&dataset, true, 777);
                let mut rng = StdRng::seed_from_u64(2024);
                let outcome =
                    train_with_fedora(&mut model, &dataset, &cfg, &mut rng).expect("pipeline run");
                let eps_label = if eps.is_infinite() {
                    "inf".into()
                } else {
                    format!("{eps}")
                };
                let prefix = format!(
                    "table1.{}.{}.eps_{}",
                    metric_label(kind.label()),
                    metric_label(mode_label),
                    metric_label(&eps_label)
                );
                registry.gauge(&format!("{prefix}.auc")).set(outcome.auc);
                registry
                    .gauge(&format!("{prefix}.reduced_accesses"))
                    .set(outcome.reduced_accesses);
                registry
                    .gauge(&format!("{prefix}.dummy_rate"))
                    .set(outcome.dummy_rate);
                registry
                    .gauge(&format!("{prefix}.lost_rate"))
                    .set(outcome.lost_rate);
                row(kind.label(), &eps_label, &outcome);
            }
        }
        println!();
    }
    println!("Expected shape (paper Table 1): pub << all private rows; AUC drops only");
    println!("slightly as eps shrinks; hide-# rows save far more accesses but pay");
    println!("large dummy rates at small eps.");
    opts.write_or_die(&registry.snapshot());
}
