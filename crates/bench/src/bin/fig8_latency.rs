//! Figure 8: per-round latency overhead relative to the 2-minute FL round.
//!
//! Uses the analytic latency model (SSD batched path I/O + DRAM buffer
//! traffic + controller compute) with access totals from per-workload
//! request streams.
//!
//! Usage: `fig8_latency [--metrics-out PATH] [--trace-out PATH]`. The
//! first flag exports every printed overhead figure as a
//! `fig8.<table>.<updates>.*` gauge in a telemetry JSON snapshot; the
//! second writes the (analytic, hence empty) span journal as Chrome
//! trace-event JSON for tooling-pipeline smoke tests.

use fedora::analytic::{fedora_round, path_oram_plus_round};
use fedora::config::{FedoraConfig, TableSpec};
use fedora::latency::LatencyModel;
use fedora_bench::Workload;
use fedora_fdp::FdpMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHUNK: usize = 16 * 1024;

fn union_scan_slots(k: usize) -> u64 {
    fedora_oblivious::union::requests_scan_cost(k, CHUNK)
}

fn main() {
    let (opts, _args) = fedora_bench::outopts::OutputOpts::from_env();
    let registry = opts.registry();

    let mut rng = StdRng::seed_from_u64(8);
    let model = LatencyModel::default();
    let updates = [10_000usize, 100_000, 1_000_000];

    println!("Figure 8: round overhead w.r.t. the 2-minute FL round");
    for k_total in updates {
        println!("\n=== {k_total} updates per round ===");
        println!(
            "{:<8} {:<32} {:>12} {:>13} {:>13}",
            "Table", "Workload", "PathORAM+", "FEDORA(e=0)", "FEDORA(e=1)"
        );
        for table in TableSpec::paper_presets() {
            let config = FedoraConfig::paper_tuned(table, k_total);
            let geo = config.geometry;
            let a = config.raw.eviction_period;
            let scans = union_scan_slots(k_total);

            // Path ORAM+: K accesses each phase, all path read+write. It
            // needs no union (it reads per request), so no scan term.
            let base_counts = path_oram_plus_round(&geo, k_total as u64, 4096);
            let base = model.analytic_round_latency(&config, &base_counts, k_total as u64, 0, true);

            let fed0_counts = fedora_round(&geo, k_total as u64, a, 4096);
            let fed0 =
                model.analytic_round_latency(&config, &fed0_counts, k_total as u64, scans, true);

            // ε=1: geomean across workloads.
            let mech = FdpMechanism::new(1.0, fedora_fdp::YShape::Uniform).expect("valid");
            let mut ln_sum = 0.0;
            let mut rows = Vec::new();
            for w in Workload::all() {
                let stream = w.generate(table.num_entries, k_total, &mut rng);
                let summary = stream.summarize(&mech, CHUNK, &mut rng);
                let counts = fedora_round(&geo, summary.k_accesses, a, 4096);
                let lat =
                    model.analytic_round_latency(&config, &counts, k_total as u64, scans, true);
                ln_sum += lat.overhead_fraction().ln();
                rows.push((w.label(), lat.overhead_fraction()));
            }
            let geo_mean = (ln_sum / rows.len() as f64).exp();

            let prefix = format!("fig8.{}.{}", table.name, k_total);
            registry
                .gauge(&format!("{prefix}.path_oram_plus_overhead"))
                .set(base.overhead_fraction());
            registry
                .gauge(&format!("{prefix}.fedora_e0_overhead"))
                .set(fed0.overhead_fraction());
            registry
                .gauge(&format!("{prefix}.fedora_e1_geomean_overhead"))
                .set(geo_mean);
            for (label, overhead) in &rows {
                registry
                    .gauge(&format!("{prefix}.e1.{label}"))
                    .set(*overhead);
            }

            println!(
                "{:<8} {:<32} {:>11.1}% {:>12.1}% {:>12.1}%",
                table.name,
                "All / Geomean(e=1)",
                base.overhead_fraction() * 100.0,
                fed0.overhead_fraction() * 100.0,
                geo_mean * 100.0
            );
            for (label, overhead) in rows {
                println!(
                    "{:<8} {:<32} {:>12} {:>13} {:>12.1}%",
                    table.name,
                    label,
                    "-",
                    "-",
                    overhead * 100.0
                );
            }
            println!(
                "{:<8} improvement: e=1 vs PathORAM+ {:.1}x, vs e=0 {:.1}x",
                table.name,
                base.overhead_fraction() / geo_mean,
                fed0.overhead_fraction() / geo_mean
            );
        }
    }

    println!();
    opts.write_or_die(&registry.snapshot());
}
