//! Figure 10: normalized training latency with vs without the 4-KiB
//! on-chip scratchpad (the "No Secure SRAM" ablation, §6.6).

use fedora::analytic::fedora_round;
use fedora::config::{FedoraConfig, TableSpec};
use fedora::latency::LatencyModel;
use fedora_bench::outopts::OutputOpts;
use fedora_bench::workload::summarize_all_parallel;
use fedora_fdp::FdpMechanism;

const CHUNK: usize = 16 * 1024;

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    let model = LatencyModel::default();
    let mech = FdpMechanism::new(1.0, fedora_fdp::YShape::Uniform).expect("valid");
    let pairs = [
        (TableSpec::small(), 10_000usize),
        (TableSpec::medium(), 100_000),
        (TableSpec::large(), 1_000_000),
    ];

    println!("Figure 10: round latency without the scratchpad, normalized to with-scratchpad");
    println!(
        "{:<22} {:>16} {:>16} {:>12}",
        "Config", "With SRAM (s)", "No SRAM (s)", "Slowdown"
    );
    for (table, k_total) in pairs {
        let config = FedoraConfig::paper_tuned(table, k_total);
        let a = config.raw.eviction_period;
        let scans = fedora_oblivious::union::requests_scan_cost(k_total, CHUNK);
        // Geomean over workloads (as in the other figures), generated in
        // parallel across threads.
        let mut ln_with = 0.0;
        let mut ln_without = 0.0;
        for (_w, summary) in summarize_all_parallel(table.num_entries, k_total, &mech, CHUNK, 10) {
            let counts = fedora_round(&config.geometry, summary.k_accesses, a, 4096);
            let with = model
                .analytic_round_latency(&config, &counts, k_total as u64, scans, true)
                .total_s();
            let without = model
                .analytic_round_latency(&config, &counts, k_total as u64, scans, false)
                .total_s();
            ln_with += with.ln();
            ln_without += without.ln();
        }
        let with = (ln_with / 5.0).exp();
        let without = (ln_without / 5.0).exp();
        let prefix = format!("fig10.{}.{}", table.name, k_total);
        registry.gauge(&format!("{prefix}.with_sram_s")).set(with);
        registry.gauge(&format!("{prefix}.no_sram_s")).set(without);
        registry
            .gauge(&format!("{prefix}.slowdown"))
            .set(without / with);
        println!(
            "{:<22} {:>16.2} {:>16.2} {:>11.2}x",
            format!("{} / {}K", table.name, k_total / 1000),
            with,
            without,
            without / with
        );
    }
    println!("\nShape check: the scratchpad helps most when blocks are small");
    println!("(Small/Medium ~1.5x in the paper) and least for Large blocks.");
    opts.write_or_die(&registry.snapshot());
}
