//! Y-shape tuning sweep (Observation 3 as a deployment tool).
//!
//! Recommends a shape for each (ε, cost-weights) cell and prints the
//! expected dummy/lost split — the concrete knob a FEDORA operator turns
//! when deciding how much accuracy to trade for SSD traffic.

use fedora_bench::outopts::{metric_label, OutputOpts};
use fedora_fdp::tuning::{recommend_shape, CostWeights};
use fedora_fdp::YShape;

fn shape_label(shape: &YShape) -> String {
    match shape {
        YShape::Uniform => "uniform".into(),
        YShape::DeltaAtK => "delta@K".into(),
        YShape::Pow { exponent } => format!("pow({exponent})"),
        YShape::Square { lo_frac, hi_frac } => format!("square[{lo_frac},{hi_frac}]"),
        YShape::Custom(_) => "custom".into(),
    }
}

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    let (k_union, k_max) = (30u64, 100u64);
    println!("Y-shape recommendations at k_union = {k_union}, K = {k_max}:\n");
    println!(
        "{:>6} {:<22} {:>18} {:>12} {:>10}",
        "eps", "cost regime", "recommended Y", "E[dummy]", "E[lost]"
    );
    for eps in [0.1, 0.5, 1.0, 3.0] {
        for (label, weights) in [
            ("performance-first", CostWeights::performance_first()),
            (
                "balanced",
                CostWeights {
                    dummy: 1.0,
                    lost: 1.0,
                },
            ),
            ("accuracy-first", CostWeights::accuracy_first()),
            (
                "never-lose",
                CostWeights {
                    dummy: 0.01,
                    lost: 1e6,
                },
            ),
        ] {
            let rec = recommend_shape(eps, k_union, k_max, &weights).expect("searchable");
            let prefix = format!(
                "tune.eps_{}.{}",
                metric_label(&format!("{eps}")),
                metric_label(label)
            );
            registry
                .gauge(&format!("{prefix}.expected_dummies"))
                .set(rec.expected_dummies);
            registry
                .gauge(&format!("{prefix}.expected_lost"))
                .set(rec.expected_lost);
            println!(
                "{:>6} {:<22} {:>18} {:>12.3} {:>10.3}",
                eps,
                label,
                shape_label(&rec.shape),
                rec.expected_dummies,
                rec.expected_lost
            );
        }
    }
    println!("\nReading the table: cheap-loss regimes pick uniform-ish shapes");
    println!("(few dummies); expensive-loss regimes climb toward pow/delta,");
    println!("re-deriving Strawman 1 as the infinite-loss-cost limit.");
    opts.write_or_die(&registry.snapshot());
}
