//! Stash-occupancy study: the empirical grounding of §4.4's privacy
//! analysis ("the same proofs for stash overflow can be used").
//!
//! Measures the stash high-water mark of FEDORA's RAW ORAM across
//! eviction periods `A` and round shapes, on the live (simulated-device)
//! ORAM. The paper's argument is that deferring EO accesses to the write
//! phase leaves end-of-round stash occupancy exactly where vanilla RAW
//! ORAM would have it; this harness shows occupancy stays small and scales
//! with `A`, not with the table.

use fedora_bench::outopts::OutputOpts;
use fedora_crypto::aead::Key;
use fedora_oram::raw::{RawOram, RawOramConfig};
use fedora_oram::store::DramBucketStore;
use fedora_oram::TreeGeometry;
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn measure(
    blocks: u64,
    z: usize,
    a: u32,
    rounds: usize,
    per_round: usize,
    seed: u64,
    registry: &Registry,
) -> (usize, usize) {
    let geo = TreeGeometry::for_blocks(blocks, 16, z);
    let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([6; 32]));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oram = RawOram::new(
        store,
        blocks,
        RawOramConfig { eviction_period: a },
        |_| vec![0u8; 16],
        &mut rng,
    );
    oram.set_telemetry(registry);
    for _ in 0..rounds {
        // Read phase: fetch a working set (stash untouched — Opt. 1).
        let mut ids: Vec<u64> = (0..per_round).map(|_| rng.gen_range(0..blocks)).collect();
        ids.sort_unstable();
        ids.dedup();
        let fetched: Vec<_> = ids
            .iter()
            .map(|&id| oram.fetch(id, &mut rng).expect("fetch"))
            .collect();
        // Write phase: insert back; EO every A.
        for blk in fetched {
            oram.insert(blk.id, blk.payload, &mut rng).expect("insert");
        }
    }
    (oram.stash_high_water(), oram.stash_len())
}

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    println!("Stash occupancy of FEDORA's RAW ORAM (high-water / end-state), 40 rounds:\n");
    println!(
        "{:>8} {:>4} {:>4} {:>12} {:>18} {:>14}",
        "Blocks", "Z", "A", "Reqs/round", "High water", "End of run"
    );
    for &(blocks, z) in &[(1024u64, 8usize), (4096, 8), (4096, 16)] {
        for &a in &[4u32, 8, 16, 32] {
            if a > 2 * z as u32 {
                continue;
            }
            let (high, end) = measure(blocks, z, a, 40, 64, 1000 + a as u64, &registry);
            registry
                .gauge(&format!("stash.b{blocks}.z{z}.a{a}.high_water"))
                .set(high as f64);
            println!("{blocks:>8} {z:>4} {a:>4} {:>12} {high:>18} {end:>14}", 64);
        }
    }
    println!("\nReading the table: high-water stays O(working set + A), independent");
    println!("of the table size — the §4.4 invariant that lets FEDORA defer every");
    println!("EO access to the write phase without overflow risk.");
    opts.write_or_die(&registry.snapshot());
}
