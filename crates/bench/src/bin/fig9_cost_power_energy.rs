//! Figure 9: estimated hardware cost, power, and energy per round,
//! normalized by the DRAM-based alternative that holds the main ORAM in
//! DRAM.
//!
//! Pairs each table size with its paper update count (Small/10K,
//! Medium/100K, Large/1M) as in the figure.

use fedora::analytic::{fedora_round, lifetime_months, path_oram_plus_round, ssd_busy_ns};
use fedora::config::{FedoraConfig, TableSpec};
use fedora::cost::CostModel;
use fedora_bench::outopts::{metric_label, OutputOpts};
use fedora_bench::Workload;
use fedora_fdp::FdpMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHUNK: usize = 16 * 1024;

struct Row {
    label: String,
    hw: f64,
    power: f64,
    energy: f64,
}

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    let mut rng = StdRng::seed_from_u64(9);
    let cost = CostModel::default();
    let pairs = [
        (TableSpec::small(), 10_000usize),
        (TableSpec::medium(), 100_000),
        (TableSpec::large(), 1_000_000),
    ];

    println!("Figure 9: hardware cost / power / energy per round, % of the DRAM-based design");
    for (table, k_total) in pairs {
        let geo = table.geometry();
        let a = FedoraConfig::tuned_eviction_period(&geo);
        let tree_bytes = geo.tree_bytes(4096);
        // Auxiliary DRAM: buffer ORAM + VTree + position map (~2% of tree).
        let aux_dram = tree_bytes / 50;
        let dram_ref = cost.dram_design(tree_bytes, aux_dram);

        let mut rows: Vec<Row> = Vec::new();
        let make = |label: String, counts: &fedora::analytic::RoundCounts| {
            let life = lifetime_months(&cost.ssd, &geo, counts, cost.round_period_s);
            let busy = ssd_busy_ns(&cost.ssd, counts) as f64 / 1e9;
            let design = cost.ssd_design(tree_bytes, aux_dram, busy, life);
            let n = CostModel::normalized(&design, &dram_ref);
            Row {
                label,
                hw: n.hardware_usd * 100.0,
                power: n.avg_power_w * 100.0,
                energy: n.energy_per_round_j * 100.0,
            }
        };

        rows.push(make(
            "PathORAM+ (All)".into(),
            &path_oram_plus_round(&geo, k_total as u64, 4096),
        ));
        rows.push(make(
            "FEDORA e=0 (All)".into(),
            &fedora_round(&geo, k_total as u64, a, 4096),
        ));
        let mech = FdpMechanism::new(1.0, fedora_fdp::YShape::Uniform).expect("valid");
        let mut ln = [0.0f64; 3];
        for w in Workload::all() {
            let stream = w.generate(table.num_entries, k_total, &mut rng);
            let summary = stream.summarize(&mech, CHUNK, &mut rng);
            let r = make(
                format!("FEDORA e=1 ({})", w.label()),
                &fedora_round(&geo, summary.k_accesses, a, 4096),
            );
            ln[0] += r.hw.ln();
            ln[1] += r.power.ln();
            ln[2] += r.energy.ln();
            rows.push(r);
        }
        rows.push(Row {
            label: "FEDORA e=1 (Geomean)".into(),
            hw: (ln[0] / 5.0).exp(),
            power: (ln[1] / 5.0).exp(),
            energy: (ln[2] / 5.0).exp(),
        });

        println!(
            "\n=== {} table, {k_total} updates per round ===",
            table.name
        );
        println!(
            "{:<44} {:>10} {:>10} {:>12}",
            "Design", "HW cost", "Power", "Energy/rnd"
        );
        for r in &rows {
            let prefix = format!("fig9.{}.{}.{}", table.name, k_total, metric_label(&r.label));
            registry.gauge(&format!("{prefix}.hw_pct")).set(r.hw);
            registry.gauge(&format!("{prefix}.power_pct")).set(r.power);
            registry
                .gauge(&format!("{prefix}.energy_pct"))
                .set(r.energy);
            println!(
                "{:<44} {:>9.1}% {:>9.1}% {:>11.1}%",
                r.label, r.hw, r.power, r.energy
            );
        }
        let g = rows.last().expect("geomean row");
        println!(
            "    FEDORA e=1 saves {:.1}x HW cost, {:.1}x power, {:.1}x energy vs DRAM-based",
            100.0 / g.hw,
            100.0 / g.power,
            100.0 / g.energy
        );
    }
    opts.write_or_die(&registry.snapshot());
}
