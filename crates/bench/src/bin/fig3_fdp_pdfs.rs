//! Figure 3: sample ε-FDP PDFs with different ε and Y shapes.
//!
//! Reproduces the six panels (k_union = 30, K = 100) as ASCII histograms
//! and prints the dummy/lost expectations behind Observations 1–4.

use fedora_bench::outopts::{metric_label, OutputOpts};
use fedora_fdp::{FdpMechanism, YShape};

const K_UNION: u64 = 30;
const K_MAX: u64 = 100;

fn render_panel(title: &str, mech: &FdpMechanism) {
    println!("--- {title} ---");
    let pdf = mech.pdf(K_UNION, K_MAX).expect("valid panel config");
    // Bucket the 100 points into 50 columns for display.
    let cols = 50;
    let per = K_MAX as usize / cols;
    let max_p = pdf.iter().cloned().fold(0.0, f64::max).max(1e-12);
    for row in (1..=10).rev() {
        let threshold = row as f64 / 10.0;
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let p: f64 = pdf[c * per..(c + 1) * per].iter().sum::<f64>() / per as f64;
            line.push(if p / max_p >= threshold { '#' } else { ' ' });
        }
        println!("|{line}|");
    }
    let mut axis = vec![b' '; cols];
    axis[(K_UNION as usize / per).min(cols - 1)] = b'U'; // k_union
    axis[cols - 1] = b'K';
    println!("+{}+", "-".repeat(cols));
    println!(" {}", String::from_utf8(axis).expect("ascii"));
    let dummies = mech.expected_dummies(K_UNION, K_MAX).expect("valid");
    let lost = mech.expected_lost(K_UNION, K_MAX).expect("valid");
    println!("  E[dummy] = {dummies:8.3}   E[lost] = {lost:7.3}\n");
}

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    println!("Figure 3: PDFs of k with k_union = {K_UNION}, K = {K_MAX}");
    println!("(U marks k_union on the x-axis; K marks the right edge)\n");

    let panels: [(&str, FdpMechanism); 6] = [
        (
            "(a) eps=99999, Y=uniform  [Strawman 2: k = k_union]",
            FdpMechanism::new(99_999.0, YShape::Uniform).expect("valid"),
        ),
        (
            "(b) eps=0.5, Y=square[K/4, K]",
            FdpMechanism::new(0.5, YShape::square_upper_three_quarters()).expect("valid"),
        ),
        (
            "(c) eps=3.0, Y=uniform",
            FdpMechanism::new(3.0, YShape::Uniform).expect("valid"),
        ),
        (
            "(d) eps=0.5, Y=pow (i^5)",
            FdpMechanism::new(0.5, YShape::pow5()).expect("valid"),
        ),
        (
            "(e) eps=1.0, Y=uniform",
            FdpMechanism::new(1.0, YShape::Uniform).expect("valid"),
        ),
        (
            "(f) eps=0.5, Y=delta at K  [Strawman 1: k = K, perfect FDP]",
            FdpMechanism::new(0.5, YShape::DeltaAtK).expect("valid"),
        ),
    ];
    for (title, mech) in &panels {
        render_panel(title, mech);
        let prefix = format!("fig3.{}", metric_label(title));
        registry
            .gauge(&format!("{prefix}.expected_dummies"))
            .set(mech.expected_dummies(K_UNION, K_MAX).expect("valid"));
        registry
            .gauge(&format!("{prefix}.expected_lost"))
            .set(mech.expected_lost(K_UNION, K_MAX).expect("valid"));
    }

    println!("Observation 1: (a-e) read far fewer than K = {K_MAX} accesses.");
    println!("Observation 2: shrinking eps (c->e) widens both tails.");
    println!("Observation 3: pow/delta shapes (d, f) trade losses for dummies.");
    println!("Observation 4: (a) degenerates to Strawman 2, (f) to Strawman 1.");
    opts.write_or_die(&registry.snapshot());
}
