//! Fault-tolerance campaign: drives the live FEDORA pipeline under
//! seeded chaos injection and reports detection/recovery accounting.
//!
//! Usage: `fault_campaign [rounds] [seed] [bitflip] [rollback] [transient]
//! [--metrics-out PATH] [--trace-out PATH]` (rates are per device
//! operation; defaults:
//! 40 rounds, seed 7, 0.25 / 0.10 / 0.15). With `--metrics-out` the
//! campaign totals are written as a telemetry JSON snapshot: the live
//! registry (oram/storage/crypto/integrity/fl series) plus
//! `campaign.*` gauges mirroring the printed summary.
//!
//! The run asserts the system's invariants as it goes: every injected
//! fault is detected exactly once, recovered reads outnumber quarantines,
//! and a final scrub of the tree comes back clean.

use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::modes::FedAvg;
use fedora_storage::FaultConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 8;
const NUM_ENTRIES: u64 = 256;
const REQS_PER_ROUND: u64 = 48;

fn arg<T: std::str::FromStr>(args: &[String], n: usize, default: T) -> T {
    args.get(n).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    // Strip the output flag pairs before positional parsing.
    let (opts, args) = fedora_bench::outopts::OutputOpts::from_env();
    let rounds: u64 = arg(&args, 0, 40);
    let seed: u64 = arg(&args, 1, 7);
    let bitflip: f64 = arg(&args, 2, 0.25);
    let rollback: f64 = arg(&args, 3, 0.10);
    let transient: f64 = arg(&args, 4, 0.15);

    let mut config = FedoraConfig::for_testing(TableSpec::tiny(NUM_ENTRIES), 64);
    config.privacy = PrivacyConfig::none();
    config.fault_tolerance.max_read_retries = 16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = FedoraServer::with_telemetry(
        config,
        |id| (0..DIM).flat_map(|_| (id as f32).to_le_bytes()).collect(),
        opts.registry(),
        &mut rng,
    );

    println!("Fault-tolerance campaign: {rounds} rounds, seed {seed}");
    println!("rates/op: bitflip {bitflip}, rollback {rollback}, transient {transient}\n");
    server.arm_faults(FaultConfig::chaos(seed, bitflip, rollback, transient));

    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>10} {:>11} {:>11}",
        "round", "bitflips", "rollbacks", "transients", "recovered", "quarantined", "aborts"
    );
    for round in 0..rounds {
        let reqs: Vec<u64> = (0..REQS_PER_ROUND)
            .map(|i| (i * 7 + round * 13) % NUM_ENTRIES)
            .collect();
        let mode = FedAvg;
        match server.begin_round(&reqs, &mut rng) {
            Ok(_) => {}
            Err(e) => {
                println!("round {round}: aborted ({e}); retrying next round");
                continue;
            }
        }
        for &id in &reqs {
            server.serve(id, &mut rng).expect("serve");
            server
                .aggregate(&mode, id, &[0.125; DIM], 1, &mut rng)
                .expect("aggregate");
        }
        let mut mode = FedAvg;
        if let Err(e) = server.end_round(&mut mode, 0.5, &mut rng) {
            println!("round {round}: write phase aborted ({e})");
            continue;
        }
        let f = server.fault_stats();
        let i = server.integrity_stats();
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>10} {:>11} {:>11}",
            round,
            f.bitflips,
            f.rollbacks,
            f.transients,
            i.recovered,
            i.quarantined,
            server.aborts().len()
        );
    }

    let injected = server.fault_stats();
    let integ = server.integrity_stats();
    println!("\n=== campaign totals ===");
    println!("injected : {injected:?}");
    println!(
        "detected : corruption {}, rollback {}, transient {}",
        integ.detected_corruption, integ.detected_rollback, integ.transient_retries
    );
    println!(
        "recovered: {}   quarantined: {}   aborted rounds: {}",
        integ.recovered,
        integ.quarantined,
        server.aborts().len()
    );
    assert_eq!(
        integ.detected_corruption, injected.bitflips,
        "undetected bit flip!"
    );
    assert_eq!(
        integ.detected_rollback, injected.rollbacks,
        "undetected rollback!"
    );
    assert_eq!(
        integ.transient_retries, injected.transients,
        "unaccounted transient!"
    );

    server.disarm_faults();
    let scrub = server.scrub().expect("scrub between rounds");
    println!(
        "final scrub: {} buckets checked, {} failed",
        scrub.checked,
        scrub.failed.len()
    );
    assert!(
        scrub.is_clean(),
        "silent corruption survived the campaign: {:?}",
        scrub.failed
    );
    println!(
        "\nOK: 100% detection, zero silent corruption, {} rounds completed",
        server.reports().len()
    );

    if opts.any() {
        let registry = server.registry();
        registry
            .gauge("campaign.injected.bitflips")
            .set(injected.bitflips as f64);
        registry
            .gauge("campaign.injected.rollbacks")
            .set(injected.rollbacks as f64);
        registry
            .gauge("campaign.injected.transients")
            .set(injected.transients as f64);
        registry
            .gauge("campaign.recovered")
            .set(integ.recovered as f64);
        registry
            .gauge("campaign.quarantined")
            .set(integ.quarantined as f64);
        registry
            .gauge("campaign.aborted_rounds")
            .set(server.aborts().len() as f64);
        registry
            .gauge("campaign.completed_rounds")
            .set(server.reports().len() as f64);
        if let Err(msg) = opts.write(&server.metrics_snapshot()) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
