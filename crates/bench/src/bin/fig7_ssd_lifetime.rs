//! Figure 7: expected SSD lifetime of Path ORAM+ vs FEDORA (ε = 0, ε = 1)
//! across table sizes, update counts, and workloads.
//!
//! Counts come from the validated closed forms in `fedora::analytic`
//! (DESIGN.md §2); the per-workload access totals come from generated
//! request streams with the datasets' duplicate structure.

use fedora::analytic::{fedora_round, lifetime_months, path_oram_plus_round};
use fedora::config::{FedoraConfig, TableSpec};
use fedora_bench::outopts::OutputOpts;
use fedora_bench::Workload;
use fedora_fdp::FdpMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUND_PERIOD_S: f64 = 120.0;
const CHUNK: usize = 16 * 1024;

fn fmt_months(m: f64) -> String {
    if m.is_infinite() {
        "inf".into()
    } else if m >= 120.0 {
        format!("{:.1}y", m / 12.0)
    } else if m >= 1.0 {
        format!("{m:.1}mo")
    } else {
        format!("{:.1}d", m * 30.44)
    }
}

fn main() {
    let (opts, _args) = OutputOpts::from_env();
    let registry = opts.registry();
    let mut rng = StdRng::seed_from_u64(7);
    let updates = [10_000usize, 100_000, 1_000_000];

    println!("Figure 7: expected SSD lifetime (SSD sized to the ORAM; {ROUND_PERIOD_S} s rounds)");
    for k_total in updates {
        println!("\n=== {k_total} updates per round ===");
        println!(
            "{:<8} {:<32} {:>14} {:>14} {:>14}",
            "Table", "Workload", "PathORAM+", "FEDORA(e=0)", "FEDORA(e=1)"
        );
        for table in TableSpec::paper_presets() {
            let geo = table.geometry();
            let a = FedoraConfig::tuned_eviction_period(&geo);
            let profile = fedora_storage::SsdProfile::pm9a1_like();

            // Path ORAM+ and FEDORA(ε=0) are workload-independent ("All"):
            // both perform one access per request.
            let base = path_oram_plus_round(&geo, k_total as u64, 4096);
            let base_life = lifetime_months(&profile, &geo, &base, ROUND_PERIOD_S);
            let fed0 = fedora_round(&geo, k_total as u64, a, 4096);
            let fed0_life = lifetime_months(&profile, &geo, &fed0, ROUND_PERIOD_S);
            println!(
                "{:<8} {:<32} {:>14} {:>14} {:>14}",
                table.name,
                "All",
                fmt_months(base_life),
                fmt_months(fed0_life),
                "-"
            );

            let mech = FdpMechanism::new(1.0, fedora_fdp::YShape::Uniform).expect("valid");
            let mut geomean = 0.0f64;
            let mut n = 0;
            for w in Workload::all() {
                let stream = w.generate(table.num_entries, k_total, &mut rng);
                let summary = stream.summarize(&mech, CHUNK, &mut rng);
                let fed1 = fedora_round(&geo, summary.k_accesses, a, 4096);
                let fed1_life = lifetime_months(&profile, &geo, &fed1, ROUND_PERIOD_S);
                println!(
                    "{:<8} {:<32} {:>14} {:>14} {:>14}",
                    table.name,
                    w.label(),
                    "-",
                    "-",
                    fmt_months(fed1_life)
                );
                geomean += fed1_life.ln();
                n += 1;
            }
            let geomean = (geomean / n as f64).exp();
            let prefix = format!("fig7.{}.{}", table.name, k_total);
            registry
                .gauge(&format!("{prefix}.path_oram_plus_months"))
                .set(base_life);
            registry
                .gauge(&format!("{prefix}.fedora_e0_months"))
                .set(fed0_life);
            registry
                .gauge(&format!("{prefix}.fedora_e1_geomean_months"))
                .set(geomean);
            println!(
                "{:<8} {:<32} {:>14} {:>14} {:>14}   [e=1 vs PathORAM+: {:.0}x, vs e=0: {:.2}x]",
                table.name,
                "Geomean (e=1)",
                "-",
                "-",
                fmt_months(geomean),
                geomean / base_life,
                geomean / fed0_life,
            );
        }
    }
    println!("\nReference lines: 2 years = 24 months, 5 years = 60 months.");
    opts.write_or_die(&registry.snapshot());
}
