//! Open-loop load generator for the `fedora-net` serving front end.
//!
//! ```text
//! openloop_load [--addr HOST:PORT] [--rate HZ] [--requests N]
//!               [--connections N] [--entries-per-request N] [--poisson]
//!               [--seed N] [--timeout-secs N] [--shutdown-after]
//!               [--entries N] [--queue-depth N]
//!               [--scrape prom|json] [--scrape-out PATH]
//!               [--metrics-out PATH] [--metrics-format json|csv|prom]
//!               [--trace-out PATH]
//! ```
//!
//! Without `--addr` the binary spawns its own loopback front end (table
//! size `--entries`, bounded job queue `--queue-depth`) and tears it down
//! afterwards, folding the server-side `net.*` and `round.phase.*` series
//! into the exported snapshot. With `--addr` it drives an external
//! `fedora-cli serve` process, retrying the first connection for a few
//! seconds so it can be started concurrently (as the CI smoke job does);
//! `--shutdown-after` then sends the admin shutdown so the server drains
//! and exits.
//!
//! `--scrape prom|json` exercises the ops plane *while the data plane is
//! under load*: a dedicated connection polls the wire `scrape` verb every
//! 250 ms for the whole run (chunked bodies reassembled client-side) and
//! reports poll count, bytes, and per-scrape latency afterwards —
//! evidence that ops polling rides the reader threads without stalling
//! rounds. `--scrape-out PATH` writes the final scraped body verbatim.
//!
//! Response latency is measured from each request's *scheduled* arrival
//! (open-loop; queueing included — see `fedora_bench::netload`) and
//! reported as p50/p95/p99 plus the shed rate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fedora::{FedoraConfig, FedoraServer, TableSpec};
use fedora_bench::{netload, NetLoadSpec, OutputOpts};
use fedora_net::{NetClient, NetConfig, NetServer, ScrapeFormat};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn flag_present(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn parsed<T: std::str::FromStr>(value: Option<String>, flag: &str, default: T) -> T {
    match value {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} got unparsable value '{text}'");
            std::process::exit(2);
        }),
    }
}

/// What the concurrent ops poller saw over a run: successful scrapes,
/// total body bytes, and the slowest single scrape.
struct ScrapeStats {
    polls: u64,
    bytes: u64,
    max_ns: u64,
    last_body: String,
}

/// Polls the wire `scrape` verb on its own connection until `stop` is
/// raised, then performs one final scrape so the returned body reflects
/// end-of-run state. Failures end the loop (the server is shutting down).
fn scrape_poller(addr: &str, format: ScrapeFormat, stop: &AtomicBool) -> ScrapeStats {
    let mut stats = ScrapeStats {
        polls: 0,
        bytes: 0,
        max_ns: 0,
        last_body: String::new(),
    };
    let Ok(mut client) = NetClient::connect(addr) else {
        return stats;
    };
    let mut done = false;
    while !done {
        done = stop.load(Ordering::SeqCst);
        let started = Instant::now();
        match client.scrape(format) {
            Ok(body) => {
                stats.polls += 1;
                stats.bytes += body.len() as u64;
                stats.max_ns = stats.max_ns.max(started.elapsed().as_nanos() as u64);
                stats.last_body = body;
            }
            Err(_) => break,
        }
        if !done {
            std::thread::sleep(Duration::from_millis(250));
        }
    }
    stats
}

/// Waits for the server to accept connections (the CI smoke job starts
/// `fedora-cli serve` concurrently).
fn await_server(addr: &str, patience: Duration) -> Result<(), String> {
    let deadline = Instant::now() + patience;
    loop {
        match NetClient::connect(addr) {
            Ok(_probe) => return Ok(()),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("server at {addr} not reachable: {e}"))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn main() {
    let (opts, mut args) = OutputOpts::from_env();
    let addr_flag = flag_value(&mut args, "--addr");
    let shutdown_after = flag_present(&mut args, "--shutdown-after");
    let spec = NetLoadSpec {
        rate_hz: parsed(flag_value(&mut args, "--rate"), "--rate", 200.0),
        requests: parsed(flag_value(&mut args, "--requests"), "--requests", 200),
        connections: parsed(flag_value(&mut args, "--connections"), "--connections", 4),
        entries_per_request: parsed(
            flag_value(&mut args, "--entries-per-request"),
            "--entries-per-request",
            4,
        ),
        table_entries: parsed(flag_value(&mut args, "--entries"), "--entries", 1024),
        dim: 8, // TableSpec::tiny entry_bytes / 4, the serve-side layout
        poisson: flag_present(&mut args, "--poisson"),
        seed: parsed(flag_value(&mut args, "--seed"), "--seed", 7),
        timeout: Duration::from_secs(parsed(
            flag_value(&mut args, "--timeout-secs"),
            "--timeout-secs",
            30u64,
        )),
    };
    let queue_depth = parsed(flag_value(&mut args, "--queue-depth"), "--queue-depth", 128);
    let scrape_format = flag_value(&mut args, "--scrape").map(|f| match f.as_str() {
        "prom" | "prometheus" => ScrapeFormat::Prom,
        "json" => ScrapeFormat::Json,
        other => {
            eprintln!("error: --scrape got unknown format '{other}' (prom|json)");
            std::process::exit(2);
        }
    });
    let scrape_out = flag_value(&mut args, "--scrape-out");
    if scrape_out.is_some() && scrape_format.is_none() {
        eprintln!("error: --scrape-out needs --scrape prom|json");
        std::process::exit(2);
    }
    if !args.is_empty() {
        eprintln!("error: unrecognized arguments: {args:?}");
        std::process::exit(2);
    }

    println!("== open-loop load ==");
    println!(
        "  {} arrivals at {:.0} req/s ({}), {} connections, {} entries/request",
        spec.requests,
        spec.rate_hz,
        if spec.poisson {
            "Poisson"
        } else {
            "fixed-rate"
        },
        spec.connections,
        spec.entries_per_request,
    );

    // One registry for the run; the loopback server (when spawned) shares
    // it, so its server-side net.* and round.phase.* series land in the
    // same exported snapshot as the client-side latency columns.
    let registry = opts.registry();

    // Self-spawned loopback front end unless --addr points elsewhere.
    let mut loopback = None;
    let addr = match addr_flag {
        Some(addr) => {
            if let Err(msg) = await_server(&addr, Duration::from_secs(10)) {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
            addr
        }
        None => {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let config = FedoraConfig::for_testing(TableSpec::tiny(spec.table_entries), 64);
            let server =
                FedoraServer::with_telemetry(config, |_| vec![0u8; 32], registry.clone(), &mut rng);
            let net_config = NetConfig {
                queue_depth,
                ..NetConfig::default()
            };
            let handle = NetServer::spawn(server, spec.seed ^ 0x5EED, "127.0.0.1:0", net_config)
                .unwrap_or_else(|e| {
                    eprintln!("error: spawn loopback server: {e}");
                    std::process::exit(1);
                });
            let addr = handle.addr().to_string();
            println!("  loopback front end on {addr}");
            loopback = Some(handle);
            addr
        }
    };

    // Concurrent ops poller: scrapes on its own connection while the
    // load below saturates the data plane.
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scrape_thread = scrape_format.map(|format| {
        let addr = addr.clone();
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || scrape_poller(&addr, format, &stop))
    });

    let report = match netload::run(&addr, &spec, &registry) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };

    if let Some(handle) = scrape_thread {
        scrape_stop.store(true, Ordering::SeqCst);
        match handle.join() {
            Ok(stats) => {
                println!("== concurrent scrape poller ==");
                println!(
                    "  {} polls, {} body bytes, slowest scrape {:.3} ms",
                    stats.polls,
                    stats.bytes,
                    stats.max_ns as f64 / 1e6
                );
                if let Some(path) = &scrape_out {
                    if let Err(e) = std::fs::write(path, &stats.last_body) {
                        eprintln!("error: --scrape-out {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("  final scrape written to {path}");
                }
                if stats.polls == 0 {
                    eprintln!("error: --scrape requested but no scrape succeeded");
                    std::process::exit(1);
                }
            }
            Err(_) => eprintln!("warning: scrape poller panicked"),
        }
    }

    if shutdown_after {
        match NetClient::connect(&addr) {
            Ok(mut admin) => match admin.call(&fedora_net::Request::Shutdown) {
                Ok(_) => println!("  sent shutdown; server draining"),
                Err(e) => eprintln!("warning: shutdown request failed: {e}"),
            },
            Err(e) => eprintln!("warning: could not reconnect for shutdown: {e}"),
        }
    }

    if let Some(handle) = loopback {
        let outcome = handle.shutdown_and_join();
        println!("  loopback front end stopped: {outcome:?}");
    }
    let snapshot = registry.snapshot();

    let lat = &report.latency;
    println!("== response latency (ns, from scheduled arrival) ==");
    println!(
        "  count {:6}  p50 {:>12}  p95 {:>12}  p99 {:>12}  max {:>12}",
        lat.count, lat.p50, lat.p95, lat.p99, lat.max
    );
    println!(
        "  sent {}  ok {}  overloaded {}  rejected {}  errors {}  shed-rate {:.4}",
        report.sent,
        report.ok,
        report.overloaded,
        report.rejected,
        report.errors,
        report.shed_rate()
    );

    opts.write_or_die(&snapshot);

    if report.ok == 0 && report.sent > 0 {
        eprintln!("error: no request succeeded");
        std::process::exit(1);
    }
}
