//! Shared harness code for regenerating every table and figure of the
//! FEDORA paper (see DESIGN.md §3 for the experiment index).
//!
//! The binaries in `src/bin/` each regenerate one figure/table:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig3_fdp_pdfs` | Figure 3 (ε-FDP PDFs) |
//! | `fig7_ssd_lifetime` | Figure 7 (SSD lifetime) |
//! | `fig8_latency` | Figure 8 (round-latency overhead) |
//! | `fig9_cost_power_energy` | Figure 9 (cost/power/energy vs DRAM) |
//! | `fig10_scratchpad` | Figure 10 (scratchpad ablation) |
//! | `table1_fl_accuracy` | Table 1 (access reduction + AUC) |
//! | `ablation_bucket_size` | §6.6 bucket-size discussion |
//! | `ablation_strawmen` | §3.2 strawman comparison |
//! | `ablation_modes` | §4.3 operation modes through the live pipeline |
//! | `ablation_stash_occupancy` | §4.4 stash-occupancy argument |
//! | `tune_shape` | §3.3 Observation 3 as a tuning tool |
//! | `fault_campaign` | chaos-injection fault-tolerance campaign (this reproduction's addition) |
//! | `perf_trajectory` | perf-trajectory harness: `BENCH_<date>.json` writer + regression diff |
//! | `fedora_audit` | twin-run obliviousness auditor + privacy-ledger check (audit report) |
//! | `openloop_load` | open-loop load generator against a `fedora-net` front end (SLO latency/shed report) |
//!
//! Every binary accepts `--metrics-out PATH` (telemetry snapshot JSON) and
//! `--trace-out PATH` (Chrome trace-event JSON for Perfetto) — see
//! [`outopts`].
//!
//! Criterion micro-benches live in `benches/`.

pub mod netload;
pub mod outopts;
pub mod trajectory;
pub mod workload;

pub use netload::{NetLoadReport, NetLoadSpec};
pub use outopts::OutputOpts;
pub use workload::{RequestStream, Workload};
