//! Shared `--metrics-out` / `--trace-out` handling for the bench binaries.
//!
//! Every binary in `src/bin/` accepts the same output flags:
//!
//! * `--metrics-out PATH` — write a telemetry [`Snapshot`] (counters,
//!   gauges, histogram percentiles, event journal).
//! * `--metrics-format json|csv|prom` — the serialization for
//!   `--metrics-out`: single-line JSON (default), flat CSV, or Prometheus
//!   text exposition. Audit-only series are redacted in every format.
//! * `--trace-out PATH` — write the causal span journal as Chrome
//!   trace-event JSON, loadable in <https://ui.perfetto.dev> or
//!   `chrome://tracing`.
//! * `--threads N` — worker threads for the deterministic parallel
//!   pipeline (default 1 = serial). Thread count never changes results,
//!   only wall-clock time.
//! * `--pipeline` — enable look-ahead round pipelining (lookahead 1):
//!   the next round's oblivious unions prefetch on a dedicated worker and
//!   eviction writes batch into the write phase. Like `--threads`, this
//!   never changes results — scrubbed round reports and the access trace
//!   are byte-identical to serial execution — only wall-clock time.
//!
//! [`OutputOpts::extract`] strips both flag pairs from an argument vector
//! (so positional parsing stays untouched), [`OutputOpts::registry`] builds
//! the registry the run should report into (tracing pre-enabled iff a trace
//! was requested), and [`OutputOpts::write`] emits whatever was asked for.

use std::path::PathBuf;

use fedora_telemetry::{Registry, Snapshot};

/// Serialization format for `--metrics-out`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Single-line JSON (`fedora-telemetry/v1`), the default.
    #[default]
    Json,
    /// Flat `name,value` CSV.
    Csv,
    /// Prometheus text exposition (`fedora_*` series).
    Prom,
}

impl MetricsFormat {
    /// Parses a `--metrics-format` value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "json" => Ok(MetricsFormat::Json),
            "csv" => Ok(MetricsFormat::Csv),
            "prom" | "prometheus" => Ok(MetricsFormat::Prom),
            other => Err(format!("unknown metrics format '{other}' (json|csv|prom)")),
        }
    }

    /// Writes `snapshot` to `path` in this format.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(self, snapshot: &Snapshot, path: &std::path::Path) -> std::io::Result<()> {
        match self {
            MetricsFormat::Json => snapshot.write_json(path),
            MetricsFormat::Csv => snapshot.write_csv(path),
            MetricsFormat::Prom => snapshot.write_prometheus(path),
        }
    }
}

/// Parsed output flags shared by every bench binary.
#[derive(Clone, Debug, Default)]
pub struct OutputOpts {
    /// Where to write the metrics snapshot, if requested.
    pub metrics_out: Option<PathBuf>,
    /// Serialization for `metrics_out` (JSON unless `--metrics-format`).
    pub metrics_format: MetricsFormat,
    /// Where to write the Chrome trace-event JSON, if requested.
    pub trace_out: Option<PathBuf>,
    /// Worker threads (`--threads N`); `None` means the binary's default
    /// (serial). Thread count never changes results — only wall-clock time.
    pub threads: Option<usize>,
    /// Look-ahead round pipelining (`--pipeline`). Never changes results —
    /// only wall-clock time.
    pub pipeline: bool,
}

impl OutputOpts {
    /// Strips `--metrics-out PATH`, `--metrics-format FMT`, and
    /// `--trace-out PATH` pairs out of `args`, leaving any positional
    /// arguments in place.
    ///
    /// # Errors
    ///
    /// Returns a message when a flag is present without a value, or the
    /// format value is unknown.
    pub fn extract(args: &mut Vec<String>) -> Result<Self, String> {
        let mut opts = OutputOpts::default();
        let mut format: Option<String> = None;
        let take = |args: &mut Vec<String>, flag: &str| -> Result<Option<String>, String> {
            if let Some(pos) = args.iter().position(|a| a == flag) {
                if pos + 1 >= args.len() {
                    return Err(format!("{flag} needs a value"));
                }
                let value = args.remove(pos + 1);
                args.remove(pos);
                return Ok(Some(value));
            }
            Ok(None)
        };
        if let Some(path) = take(args, "--metrics-out")? {
            opts.metrics_out = Some(PathBuf::from(path));
        }
        if let Some(fmt) = take(args, "--metrics-format")? {
            format = Some(fmt);
        }
        if let Some(path) = take(args, "--trace-out")? {
            opts.trace_out = Some(PathBuf::from(path));
        }
        if let Some(threads) = take(args, "--threads")? {
            let parsed: usize = threads
                .parse()
                .map_err(|_| format!("--threads needs a positive integer, got '{threads}'"))?;
            if parsed == 0 {
                return Err("--threads needs a positive integer, got '0'".to_owned());
            }
            opts.threads = Some(parsed);
        }
        if let Some(pos) = args.iter().position(|a| a == "--pipeline") {
            args.remove(pos);
            opts.pipeline = true;
        }
        if let Some(fmt) = format {
            opts.metrics_format = MetricsFormat::parse(&fmt)?;
        }
        Ok(opts)
    }

    /// The [`PipelineConfig`] the `--pipeline` flag asks for.
    ///
    /// [`PipelineConfig`]: fedora::config::PipelineConfig
    pub fn pipeline_config(&self) -> fedora::config::PipelineConfig {
        if self.pipeline {
            fedora::config::PipelineConfig::lookahead_one()
        } else {
            fedora::config::PipelineConfig::serial()
        }
    }

    /// The worker-thread count to use: the `--threads` value, or 1.
    pub fn threads_or_serial(&self) -> usize {
        self.threads.unwrap_or(1)
    }

    /// Extracts the flags from the process arguments (after the binary
    /// name), exiting with a usage error on a dangling flag. Returns the
    /// options plus the remaining positional arguments.
    pub fn from_env() -> (Self, Vec<String>) {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        match Self::extract(&mut args) {
            Ok(opts) => (opts, args),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// An enabled registry for the run, with causal tracing pre-enabled
    /// when `--trace-out` asked for a trace.
    pub fn registry(&self) -> Registry {
        let registry = Registry::new();
        if self.trace_out.is_some() {
            registry.set_tracing(true);
        }
        registry
    }

    /// True when either output was requested.
    pub fn any(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Writes the requested outputs from `snapshot`, printing one line per
    /// file written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures with the offending path in the message.
    pub fn write(&self, snapshot: &Snapshot) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            self.metrics_format
                .write(snapshot, path)
                .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
            println!("metrics written to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            snapshot
                .write_chrome_trace(path)
                .map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
            println!(
                "trace written to {} (load in https://ui.perfetto.dev)",
                path.display()
            );
        }
        Ok(())
    }

    /// Convenience wrapper: write and exit(1) on failure, for binaries
    /// without their own error plumbing.
    pub fn write_or_die(&self, snapshot: &Snapshot) {
        if let Err(msg) = self.write(snapshot) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

/// Lower-cases a free-form label into a dotted-metric-safe segment
/// (alphanumerics kept, everything else collapsed to single `_`).
pub fn metric_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_sep = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_strips_both_flag_pairs() {
        let mut args: Vec<String> = [
            "40",
            "--metrics-out",
            "m.json",
            "7",
            "--trace-out",
            "t.json",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let opts = OutputOpts::extract(&mut args).unwrap();
        assert_eq!(args, vec!["40".to_owned(), "7".to_owned()]);
        assert_eq!(opts.metrics_out, Some(PathBuf::from("m.json")));
        assert_eq!(opts.trace_out, Some(PathBuf::from("t.json")));
        assert!(opts.any());
    }

    #[test]
    fn extract_rejects_dangling_flag() {
        let mut args = vec!["--trace-out".to_owned()];
        assert!(OutputOpts::extract(&mut args).is_err());
    }

    #[test]
    fn extract_parses_threads() {
        let mut args: Vec<String> = ["8", "--threads", "4"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let opts = OutputOpts::extract(&mut args).unwrap();
        assert_eq!(args, vec!["8".to_owned()]);
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.threads_or_serial(), 4);
        assert_eq!(OutputOpts::default().threads_or_serial(), 1);
        for bad in ["0", "x"] {
            let mut args: Vec<String> = vec!["--threads".to_owned(), bad.to_owned()];
            assert!(OutputOpts::extract(&mut args).is_err(), "{bad}");
        }
    }

    #[test]
    fn extract_parses_pipeline_flag() {
        let mut args: Vec<String> = ["8", "--pipeline", "7"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let opts = OutputOpts::extract(&mut args).unwrap();
        assert_eq!(args, vec!["8".to_owned(), "7".to_owned()]);
        assert!(opts.pipeline);
        assert!(opts.pipeline_config().enabled());
        let plain = OutputOpts::default();
        assert!(!plain.pipeline);
        assert!(!plain.pipeline_config().enabled());
    }

    #[test]
    fn extract_parses_metrics_format() {
        let mut args: Vec<String> = ["--metrics-format", "prom", "--metrics-out", "m.prom"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let opts = OutputOpts::extract(&mut args).unwrap();
        assert!(args.is_empty());
        assert_eq!(opts.metrics_format, MetricsFormat::Prom);
        assert_eq!(
            OutputOpts::extract(&mut vec![]).unwrap().metrics_format,
            MetricsFormat::Json
        );
        let mut bad: Vec<String> = ["--metrics-format", "xml"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(OutputOpts::extract(&mut bad).is_err());
    }

    #[test]
    fn format_writers_match_exporters() {
        let r = Registry::new();
        r.counter("storage.pages_read").add(3);
        let snap = r.snapshot_lite();
        let dir = std::env::temp_dir();
        for (fmt, name, needle) in [
            (MetricsFormat::Json, "m.json", "\"storage.pages_read\":3"),
            (
                MetricsFormat::Csv,
                "m.csv",
                "counter,storage.pages_read,value,3",
            ),
            (MetricsFormat::Prom, "m.prom", "fedora_storage_pages_read 3"),
        ] {
            let path = dir.join(format!("fedora-outopts-{}-{name}", std::process::id()));
            fmt.write(&snap, &path).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains(needle), "{fmt:?}: {text}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn registry_enables_tracing_only_for_trace_out() {
        let plain = OutputOpts::default();
        assert!(!plain.registry().tracing_enabled());
        let traced = OutputOpts {
            trace_out: Some(PathBuf::from("t.json")),
            ..Default::default()
        };
        assert!(traced.registry().tracing_enabled());
    }

    #[test]
    fn metric_label_collapses_punctuation() {
        assert_eq!(metric_label("Zipf(1.2) / hot"), "zipf_1_2_hot");
        assert_eq!(metric_label("uniform"), "uniform");
    }
}
