//! Shared `--metrics-out` / `--trace-out` handling for the bench binaries.
//!
//! Every binary in `src/bin/` accepts the same two output flags:
//!
//! * `--metrics-out PATH` — write a telemetry [`Snapshot`] as single-line
//!   JSON (counters, gauges, histogram percentiles, event journal).
//! * `--trace-out PATH` — write the causal span journal as Chrome
//!   trace-event JSON, loadable in <https://ui.perfetto.dev> or
//!   `chrome://tracing`.
//!
//! [`OutputOpts::extract`] strips both flag pairs from an argument vector
//! (so positional parsing stays untouched), [`OutputOpts::registry`] builds
//! the registry the run should report into (tracing pre-enabled iff a trace
//! was requested), and [`OutputOpts::write`] emits whatever was asked for.

use std::path::PathBuf;

use fedora_telemetry::{Registry, Snapshot};

/// Parsed output flags shared by every bench binary.
#[derive(Clone, Debug, Default)]
pub struct OutputOpts {
    /// Where to write the snapshot JSON, if requested.
    pub metrics_out: Option<PathBuf>,
    /// Where to write the Chrome trace-event JSON, if requested.
    pub trace_out: Option<PathBuf>,
}

impl OutputOpts {
    /// Strips `--metrics-out PATH` and `--trace-out PATH` pairs out of
    /// `args`, leaving any positional arguments in place.
    ///
    /// # Errors
    ///
    /// Returns a message when either flag is present without a value.
    pub fn extract(args: &mut Vec<String>) -> Result<Self, String> {
        let mut opts = OutputOpts::default();
        for (flag, slot) in [
            ("--metrics-out", &mut opts.metrics_out),
            ("--trace-out", &mut opts.trace_out),
        ] {
            if let Some(pos) = args.iter().position(|a| a == flag) {
                if pos + 1 >= args.len() {
                    return Err(format!("{flag} needs a value"));
                }
                let path = args.remove(pos + 1);
                args.remove(pos);
                *slot = Some(PathBuf::from(path));
            }
        }
        Ok(opts)
    }

    /// Extracts the flags from the process arguments (after the binary
    /// name), exiting with a usage error on a dangling flag. Returns the
    /// options plus the remaining positional arguments.
    pub fn from_env() -> (Self, Vec<String>) {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        match Self::extract(&mut args) {
            Ok(opts) => (opts, args),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// An enabled registry for the run, with causal tracing pre-enabled
    /// when `--trace-out` asked for a trace.
    pub fn registry(&self) -> Registry {
        let registry = Registry::new();
        if self.trace_out.is_some() {
            registry.set_tracing(true);
        }
        registry
    }

    /// True when either output was requested.
    pub fn any(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Writes the requested outputs from `snapshot`, printing one line per
    /// file written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures with the offending path in the message.
    pub fn write(&self, snapshot: &Snapshot) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            snapshot
                .write_json(path)
                .map_err(|e| format!("--metrics-out {}: {e}", path.display()))?;
            println!("metrics written to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            snapshot
                .write_chrome_trace(path)
                .map_err(|e| format!("--trace-out {}: {e}", path.display()))?;
            println!(
                "trace written to {} (load in https://ui.perfetto.dev)",
                path.display()
            );
        }
        Ok(())
    }

    /// Convenience wrapper: write and exit(1) on failure, for binaries
    /// without their own error plumbing.
    pub fn write_or_die(&self, snapshot: &Snapshot) {
        if let Err(msg) = self.write(snapshot) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}

/// Lower-cases a free-form label into a dotted-metric-safe segment
/// (alphanumerics kept, everything else collapsed to single `_`).
pub fn metric_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_sep = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_strips_both_flag_pairs() {
        let mut args: Vec<String> = [
            "40",
            "--metrics-out",
            "m.json",
            "7",
            "--trace-out",
            "t.json",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let opts = OutputOpts::extract(&mut args).unwrap();
        assert_eq!(args, vec!["40".to_owned(), "7".to_owned()]);
        assert_eq!(opts.metrics_out, Some(PathBuf::from("m.json")));
        assert_eq!(opts.trace_out, Some(PathBuf::from("t.json")));
        assert!(opts.any());
    }

    #[test]
    fn extract_rejects_dangling_flag() {
        let mut args = vec!["--trace-out".to_owned()];
        assert!(OutputOpts::extract(&mut args).is_err());
    }

    #[test]
    fn registry_enables_tracing_only_for_trace_out() {
        let plain = OutputOpts::default();
        assert!(!plain.registry().tracing_enabled());
        let traced = OutputOpts {
            trace_out: Some(PathBuf::from("t.json")),
            ..Default::default()
        };
        assert!(traced.registry().tracing_enabled());
    }

    #[test]
    fn metric_label_collapses_punctuation() {
        assert_eq!(metric_label("Zipf(1.2) / hot"), "zipf_1_2_hot");
        assert_eq!(metric_label("uniform"), "uniform");
    }
}
