//! Perf-trajectory data model: schema-versioned `BENCH_<date>.json` files
//! plus the regression diff between two of them.
//!
//! A *trajectory point* is one run of the `perf_trajectory` binary's fixed
//! workload matrix (table size × clients × aggregator). Each matrix cell
//! records a flat list of metrics — latencies, byte counts, per-phase
//! wall-times — all oriented **larger-is-worse**, so the comparison logic
//! needs no per-metric direction table. Files carry a schema tag
//! ([`SCHEMA`]) and a machine fingerprint so cross-machine diffs are
//! detectable rather than silently misleading.
//!
//! [`compare`] diffs two trajectories cell-by-cell and flags every metric
//! that regressed beyond a configurable relative threshold (with an
//! absolute floor to ignore noise on near-zero values). The CI `perf-smoke`
//! job runs it in advisory mode against the committed baseline.

use std::fmt::Write as _;
use std::path::Path;

use fedora_telemetry::json::{self, Json};

/// Schema tag written into (and required of) every trajectory file.
pub const SCHEMA: &str = "fedora-perf-trajectory/v1";

/// Where the trajectory ran: enough to tell two machines apart, not enough
/// to deanonymize anyone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineFingerprint {
    /// `std::env::consts::OS` (e.g. `linux`).
    pub os: String,
    /// `std::env::consts::ARCH` (e.g. `x86_64`).
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: u64,
    /// Version of this crate when the file was written.
    pub crate_version: String,
}

impl MachineFingerprint {
    /// Detects the current machine.
    pub fn detect() -> Self {
        MachineFingerprint {
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            crate_version: env!("CARGO_PKG_VERSION").to_owned(),
        }
    }
}

/// One workload-matrix cell and its measured metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Stable cell id, e.g. `entries4096.clients8.fedavg` — the join key
    /// for [`compare`].
    pub id: String,
    /// Metrics in insertion order; every value is larger-is-worse.
    pub metrics: Vec<(String, f64)>,
}

impl Cell {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A full trajectory point: schema + date + fingerprint + matrix results.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Always [`SCHEMA`] for files this code writes.
    pub schema: String,
    /// ISO date (`YYYY-MM-DD`) of the run.
    pub date: String,
    /// Machine the run happened on.
    pub fingerprint: MachineFingerprint,
    /// One entry per workload-matrix cell.
    pub cells: Vec<Cell>,
}

impl Trajectory {
    /// An empty trajectory stamped with `date` and the current machine.
    pub fn new(date: &str) -> Self {
        Trajectory {
            schema: SCHEMA.to_owned(),
            date: date.to_owned(),
            fingerprint: MachineFingerprint::detect(),
            cells: Vec::new(),
        }
    }

    /// Serializes to pretty-ish JSON (one metric per line — the files are
    /// committed as baselines, so diffs should be line-oriented).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", escape(&self.schema));
        let _ = writeln!(out, "  \"date\": {},", escape(&self.date));
        let _ = writeln!(
            out,
            "  \"machine\": {{\"os\": {}, \"arch\": {}, \"logical_cpus\": {}, \"crate_version\": {}}},",
            escape(&self.fingerprint.os),
            escape(&self.fingerprint.arch),
            self.fingerprint.logical_cpus,
            escape(&self.fingerprint.crate_version)
        );
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let _ = writeln!(out, "    {{\"id\": {},", escape(&cell.id));
            out.push_str("     \"metrics\": {\n");
            for (j, (name, value)) in cell.metrics.iter().enumerate() {
                let sep = if j + 1 == cell.metrics.len() { "" } else { "," };
                let _ = writeln!(out, "       {}: {}{sep}", escape(name), fmt_f64(*value));
            }
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(out, "     }}}}{sep}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a trajectory file, validating the schema tag.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing/foreign schema tag,
    /// or structurally wrong fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = json::parse(text).map_err(|e| e.to_string())?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file is '{schema}', this tool reads '{SCHEMA}'"
            ));
        }
        let date = root
            .get("date")
            .and_then(Json::as_str)
            .ok_or("missing \"date\"")?
            .to_owned();
        let machine = root.get("machine").ok_or("missing \"machine\"")?;
        let fingerprint = MachineFingerprint {
            os: machine
                .get("os")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            arch: machine
                .get("arch")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            logical_cpus: machine
                .get("logical_cpus")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            crate_version: machine
                .get("crate_version")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
        };
        let mut cells = Vec::new();
        for cell in root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("missing \"cells\"")?
        {
            let id = cell
                .get("id")
                .and_then(Json::as_str)
                .ok_or("cell missing \"id\"")?
                .to_owned();
            let metrics = cell
                .get("metrics")
                .and_then(Json::as_object)
                .ok_or("cell missing \"metrics\"")?
                .iter()
                .map(|(name, value)| {
                    value
                        .as_f64()
                        .map(|v| (name.clone(), v))
                        .ok_or_else(|| format!("metric '{name}' is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            cells.push(Cell { id, metrics });
        }
        Ok(Trajectory {
            schema: schema.to_owned(),
            date,
            fingerprint,
            cells,
        })
    }
}

/// When does a metric delta count as a regression.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Relative growth that counts, e.g. `0.25` = +25%.
    pub relative: f64,
    /// Absolute growth floor — deltas smaller than this never count (kills
    /// noise on near-zero metrics like sub-microsecond phases).
    pub min_absolute: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            relative: 0.25,
            min_absolute: 1000.0,
        }
    }
}

/// One metric that regressed beyond the thresholds.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Cell id the metric lives in.
    pub cell: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
}

impl Regression {
    /// Growth factor (`new / base`; infinite when base is 0).
    pub fn ratio(&self) -> f64 {
        if self.base == 0.0 {
            f64::INFINITY
        } else {
            self.new / self.base
        }
    }
}

/// The outcome of diffing two trajectories.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompareReport {
    /// Metrics that got worse beyond the thresholds.
    pub regressions: Vec<Regression>,
    /// Cells/metrics present in the baseline but absent from the candidate
    /// (coverage loss — also a failure).
    pub missing: Vec<String>,
    /// Non-fatal observations (fingerprint drift, new cells).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// True when CI should go red (non-advisory mode).
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty() || !self.missing.is_empty()
    }
}

/// Diffs `new` against `base` cell-by-cell.
///
/// # Errors
///
/// Returns a message when the two files carry different schema tags (the
/// per-file tag is already validated by [`Trajectory::parse`]).
pub fn compare(
    base: &Trajectory,
    new: &Trajectory,
    thresholds: &Thresholds,
) -> Result<CompareReport, String> {
    if base.schema != new.schema {
        return Err(format!(
            "schema mismatch: base '{}' vs candidate '{}'",
            base.schema, new.schema
        ));
    }
    let mut report = CompareReport::default();
    if base.fingerprint != new.fingerprint {
        report.notes.push(format!(
            "machine fingerprint differs (base {}/{} {} cpus v{}, candidate {}/{} {} cpus v{}) — treat deltas with suspicion",
            base.fingerprint.os,
            base.fingerprint.arch,
            base.fingerprint.logical_cpus,
            base.fingerprint.crate_version,
            new.fingerprint.os,
            new.fingerprint.arch,
            new.fingerprint.logical_cpus,
            new.fingerprint.crate_version,
        ));
    }
    for base_cell in &base.cells {
        let Some(new_cell) = new.cells.iter().find(|c| c.id == base_cell.id) else {
            report.missing.push(base_cell.id.clone());
            continue;
        };
        for (name, base_value) in &base_cell.metrics {
            let Some(new_value) = new_cell.metric(name) else {
                report.missing.push(format!("{}::{name}", base_cell.id));
                continue;
            };
            let grew_relatively = new_value > base_value * (1.0 + thresholds.relative);
            let grew_absolutely = new_value - base_value > thresholds.min_absolute;
            if grew_relatively && grew_absolutely {
                report.regressions.push(Regression {
                    cell: base_cell.id.clone(),
                    metric: name.clone(),
                    base: *base_value,
                    new: new_value,
                });
            }
        }
    }
    // Coverage *growth* is the normal shape of a stacked PR sequence: a
    // candidate adding cells or columns the baseline never measured must
    // read as progress (advisory notes), never as an error.
    for new_cell in &new.cells {
        let Some(base_cell) = base.cells.iter().find(|c| c.id == new_cell.id) else {
            report
                .notes
                .push(format!("new cell '{}' has no baseline", new_cell.id));
            continue;
        };
        for (name, _) in &new_cell.metrics {
            if base_cell.metric(name).is_none() {
                report.notes.push(format!(
                    "new metric '{}::{name}' has no baseline",
                    new_cell.id
                ));
            }
        }
    }
    Ok(report)
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock — the civil
/// date algorithm of Howard Hinnant's `days_from_civil`, inverted.
pub fn today_iso() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days-since-1970-01-01 to (year, month, day).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Inf/NaN; clamp (metrics are all non-negative).
        return "0".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: &str, latency: f64) -> Cell {
        Cell {
            id: id.to_owned(),
            metrics: vec![
                ("round.latency_ns.mean".to_owned(), latency),
                ("ssd.pages_written".to_owned(), 128.0),
            ],
        }
    }

    fn trajectory(latency: f64) -> Trajectory {
        let mut t = Trajectory::new("2026-08-06");
        t.cells.push(cell("entries4096.clients8.fedavg", latency));
        t
    }

    #[test]
    fn json_round_trips() {
        let t = trajectory(1_500_000.0);
        let parsed = Trajectory::parse(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        let text = trajectory(1.0).to_json().replace(SCHEMA, "other/v9");
        let err = Trajectory::parse(&text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn compare_flags_injected_regression_beyond_threshold() {
        let base = trajectory(1_000_000.0);
        let bad = trajectory(1_600_000.0); // +60% > 25% threshold
        let report = compare(&base, &bad, &Thresholds::default()).unwrap();
        assert!(report.failed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "round.latency_ns.mean");
        assert!((report.regressions[0].ratio() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn compare_tolerates_noise_within_threshold() {
        let base = trajectory(1_000_000.0);
        let ok = trajectory(1_100_000.0); // +10% < 25% threshold
        let report = compare(&base, &ok, &Thresholds::default()).unwrap();
        assert!(!report.failed(), "{:?}", report.regressions);
    }

    #[test]
    fn compare_ignores_tiny_absolute_deltas() {
        // 10ns → 100ns is +900% relative but under the absolute floor.
        let base = trajectory(10.0);
        let noisy = trajectory(100.0);
        let report = compare(&base, &noisy, &Thresholds::default()).unwrap();
        assert!(!report.failed());
    }

    #[test]
    fn compare_reports_missing_cells_as_failures() {
        let base = trajectory(1_000_000.0);
        let mut thin = trajectory(1_000_000.0);
        thin.cells.clear();
        let report = compare(&base, &thin, &Thresholds::default()).unwrap();
        assert!(report.failed());
        assert_eq!(report.missing, vec!["entries4096.clients8.fedavg"]);
    }

    #[test]
    fn new_cells_and_metrics_are_advisory_not_failures() {
        // The candidate grows coverage two ways: a brand-new cell, and a
        // new metric inside an existing cell. Both must surface as notes
        // while the exit status stays green.
        let base = trajectory(1_000_000.0);
        let mut grown = trajectory(1_000_000.0);
        grown.cells[0]
            .metrics
            .push(("net.latency.response_ns.p99".to_owned(), 123.0));
        grown.cells.push(Cell {
            id: "net.entries1024.clients4.fedavg".to_owned(),
            metrics: vec![("net.shed.ppm".to_owned(), 0.0)],
        });
        let report = compare(&base, &grown, &Thresholds::default()).unwrap();
        assert!(!report.failed(), "{report:?}");
        assert!(report.regressions.is_empty());
        assert!(report.missing.is_empty());
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("new cell 'net.entries1024.clients4.fedavg'")));
        assert!(report.notes.iter().any(
            |n| n.contains("new metric 'entries4096.clients8.fedavg::net.latency.response_ns.p99'")
        ));
        // And the growth is one-directional: diffing the grown file
        // against itself is silent.
        let clean = compare(&grown, &grown, &Thresholds::default()).unwrap();
        assert!(!clean.failed());
        assert!(clean.notes.is_empty());
    }

    #[test]
    fn fingerprint_drift_is_a_note_not_a_failure() {
        let base = trajectory(1.0);
        let mut other = trajectory(1.0);
        other.fingerprint.logical_cpus += 1;
        let report = compare(&base, &other, &Thresholds::default()).unwrap();
        assert!(!report.failed());
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn today_iso_is_well_formed() {
        let d = today_iso();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        // Sanity: the epoch math must not have drifted into the past.
        assert!(d.as_str() >= "2026-01-01", "{d}");
    }

    #[test]
    fn civil_from_days_hits_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(20_671), (2026, 8, 6));
    }
}
