//! Paper-scale request-stream generators for the performance figures.
//!
//! Figures 7–9 need request streams with the *duplicate structure* of the
//! paper's five workloads (Kaggle, Taobao/MovieLens × hide-val/hide-#),
//! scaled to K ∈ {10 K, 100 K, 1 M} requests over tables of up to 250 M
//! entries. Only the per-chunk union sizes matter for the counting models,
//! so the generators here use fast (non-oblivious) hashing — the *secure*
//! union lives in `fedora-oblivious` and is exercised by the simulated
//! pipeline and its benches.
//!
//! "Hide #" workloads pad every user to exactly 100 requests with a
//! reserved dummy feature value (§3.1): dummies collapse to one union
//! entry, which is why skewed datasets enjoy enormous access reductions
//! (Table 1's 91–99 %).

use std::collections::HashSet;

use fedora_fdp::FdpMechanism;
use rand::Rng;

/// Samples an approximately Zipf(s)-distributed index in `[0, n)` without
/// a CDF table (continuous inverse-CDF approximation; fine for workload
/// statistics over hundreds of millions of ids).
pub fn approx_zipf<R: Rng>(n: u64, s: f64, rng: &mut R) -> u64 {
    debug_assert!(n > 0);
    if s <= 1.001 {
        // Near-uniform tail behaviour: mix a light head with uniform.
        let u: f64 = rng.gen();
        if u < 0.2 {
            // Head: first ~1000 ids, 1/x-ish.
            let v: f64 = rng.gen();
            let head = (1000.0f64.powf(v)) as u64;
            return head.min(n - 1);
        }
        return rng.gen_range(0..n);
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    // Inverse CDF of p(x) ∝ x^(−s) on [1, n].
    let exp = 1.0 - s;
    let x = ((n as f64).powf(exp) * u + (1.0 - u)).powf(1.0 / exp);
    (x as u64 - 1).min(n - 1)
}

/// One of the paper's five evaluation workloads (Fig. 7/8 legends).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Criteo-Kaggle, hide-value mode.
    Kaggle,
    /// Taobao, hide individual feature values.
    TaobaoHideVal,
    /// MovieLens, hide individual feature values.
    MovielensHideVal,
    /// MovieLens, hide the number of feature values (pad to 100).
    MovielensHideCount,
    /// Taobao, hide the number of feature values (pad to 100).
    TaobaoHideCount,
}

impl Workload {
    /// All five, in the paper's legend order.
    pub fn all() -> [Workload; 5] {
        [
            Workload::Kaggle,
            Workload::TaobaoHideVal,
            Workload::MovielensHideVal,
            Workload::MovielensHideCount,
            Workload::TaobaoHideCount,
        ]
    }

    /// Figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Kaggle => "Kaggle",
            Workload::TaobaoHideVal => "Taobao (Hide priv val)",
            Workload::MovielensHideVal => "Movielens (Hide priv val)",
            Workload::MovielensHideCount => "Movielens (Hide # of priv val)",
            Workload::TaobaoHideCount => "Taobao (Hide # of priv val)",
        }
    }

    /// Whether this workload pads every user to a fixed request count.
    pub fn pads_to(&self) -> Option<usize> {
        match self {
            Workload::MovielensHideCount | Workload::TaobaoHideCount => Some(100),
            _ => None,
        }
    }

    fn zipf_exponent(&self) -> f64 {
        match self {
            Workload::Kaggle => 1.05,
            Workload::TaobaoHideVal | Workload::TaobaoHideCount => 1.3,
            Workload::MovielensHideVal | Workload::MovielensHideCount => 1.15,
        }
    }

    /// Draws one user's real feature count.
    fn history_len<R: Rng>(&self, rng: &mut R) -> usize {
        let lognormal = |median: f64, sigma: f64, max: usize, rng: &mut R| {
            let n = fedora_fl::modes::standard_normal(rng);
            ((median.ln() + sigma * n).exp().round() as usize).clamp(1, max)
        };
        match self {
            Workload::Kaggle => 24,
            Workload::MovielensHideVal | Workload::MovielensHideCount => {
                lognormal(30.0, 0.8, 200, rng)
            }
            Workload::TaobaoHideVal | Workload::TaobaoHideCount => {
                if rng.gen::<f64>() < 0.35 {
                    0
                } else {
                    lognormal(6.0, 1.6, 400, rng)
                }
            }
        }
    }

    /// Generates a request stream of (at least) `k_total` requests over a
    /// table of `table_entries` ids, by concatenating users until the
    /// target is met.
    pub fn generate<R: Rng>(
        &self,
        table_entries: u64,
        k_total: usize,
        rng: &mut R,
    ) -> RequestStream {
        let mut requests = Vec::with_capacity(k_total + 128);
        let dummy_value = table_entries - 1; // the reserved padding value
        let s = self.zipf_exponent();
        while requests.len() < k_total {
            let real = self.history_len(rng);
            match self.pads_to() {
                Some(n) => {
                    let real = real.min(n);
                    for _ in 0..real {
                        requests.push(approx_zipf(table_entries, s, rng));
                    }
                    for _ in real..n {
                        requests.push(dummy_value);
                    }
                }
                None => {
                    for _ in 0..real.max(1) {
                        requests.push(approx_zipf(table_entries, s, rng));
                    }
                }
            }
        }
        requests.truncate(k_total);
        RequestStream { requests }
    }
}

/// A generated request stream.
#[derive(Clone, Debug)]
pub struct RequestStream {
    /// The flat per-round request list (all selected users concatenated).
    pub requests: Vec<u64>,
}

/// Per-round access totals after the FDP mechanism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessSummary {
    /// Total requests `K`.
    pub k_requests: u64,
    /// Σ per-chunk unique entries.
    pub k_union: u64,
    /// Σ per-chunk sampled accesses `k`.
    pub k_accesses: u64,
    /// Dummy accesses.
    pub dummies: u64,
    /// Lost entries.
    pub lost: u64,
}

impl RequestStream {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-chunk `(K_c, k_union_c)` pairs under `chunk_size` chunking.
    pub fn chunk_unions(&self, chunk_size: usize) -> Vec<(usize, usize)> {
        self.requests
            .chunks(chunk_size)
            .map(|c| {
                let unique: HashSet<u64> = c.iter().copied().collect();
                (c.len(), unique.len())
            })
            .collect()
    }

    /// Applies the FDP mechanism chunk by chunk, returning the round's
    /// access totals (what the lifetime/latency models consume).
    pub fn summarize<R: Rng>(
        &self,
        mechanism: &FdpMechanism,
        chunk_size: usize,
        rng: &mut R,
    ) -> AccessSummary {
        let mut summary = AccessSummary {
            k_requests: self.requests.len() as u64,
            ..Default::default()
        };
        for (k_c, union_c) in self.chunk_unions(chunk_size) {
            if k_c == 0 {
                continue;
            }
            let k = mechanism.sample_k(union_c as u64, k_c as u64, rng);
            summary.k_union += union_c as u64;
            summary.k_accesses += k;
            summary.dummies += k.saturating_sub(union_c as u64);
            summary.lost += (union_c as u64).saturating_sub(k);
        }
        summary
    }
}

/// Generates and summarizes all five workloads in parallel (one thread
/// each, via `crossbeam::scope`), deterministically: each workload gets a
/// seed derived from `base_seed` and its index, so results match the
/// sequential order regardless of scheduling.
pub fn summarize_all_parallel(
    table_entries: u64,
    k_total: usize,
    mechanism: &FdpMechanism,
    chunk_size: usize,
    base_seed: u64,
) -> Vec<(Workload, AccessSummary)> {
    use rand::SeedableRng;
    let workloads = Workload::all();
    let mut results: Vec<Option<(Workload, AccessSummary)>> = vec![None; workloads.len()];
    crossbeam::thread::scope(|scope| {
        for (i, (w, slot)) in workloads.iter().zip(results.iter_mut()).enumerate() {
            let mech = mechanism.clone();
            scope.spawn(move |_| {
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(base_seed.wrapping_add(i as u64 * 7919));
                let stream = w.generate(table_entries, k_total, &mut rng);
                let summary = stream.summarize(&mech, chunk_size, &mut rng);
                *slot = Some((*w, summary));
            });
        }
    })
    .expect("workload threads do not panic");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut r = rng();
        let mut head = 0;
        for _ in 0..10_000 {
            let x = approx_zipf(1_000_000, 1.3, &mut r);
            assert!(x < 1_000_000);
            if x < 100 {
                head += 1;
            }
        }
        assert!(head > 2_000, "zipf(1.3) head mass too small: {head}");
    }

    #[test]
    fn streams_hit_target_length() {
        let mut r = rng();
        for w in Workload::all() {
            let s = w.generate(1_000_000, 10_000, &mut r);
            assert_eq!(s.len(), 10_000, "{}", w.label());
        }
    }

    #[test]
    fn hide_count_padding_collapses() {
        let mut r = rng();
        let s = Workload::TaobaoHideCount.generate(10_000_000, 20_000, &mut r);
        let unions = s.chunk_unions(16 * 1024);
        let total_union: usize = unions.iter().map(|(_, u)| u).sum();
        // Taobao hide-#: most requests are the shared dummy value.
        assert!(
            (total_union as f64) < 0.12 * s.len() as f64,
            "union {total_union} of {} too large",
            s.len()
        );
    }

    #[test]
    fn hide_val_reduction_moderate() {
        let mut r = rng();
        let s = Workload::MovielensHideVal.generate(10_000_000, 100_000, &mut r);
        let total_union: usize = s.chunk_unions(16 * 1024).iter().map(|(_, u)| u).sum();
        let ratio = total_union as f64 / s.len() as f64;
        assert!(
            (0.2..0.8).contains(&ratio),
            "hide-val union ratio {ratio} outside the plausible band"
        );
    }

    #[test]
    fn summary_epsilon_inf_equals_union() {
        let mut r = rng();
        let s = Workload::Kaggle.generate(1_000_000, 50_000, &mut r);
        let m = FdpMechanism::no_privacy();
        let sum = s.summarize(&m, 16 * 1024, &mut r);
        assert_eq!(sum.k_accesses, sum.k_union);
        assert_eq!(sum.dummies, 0);
        assert_eq!(sum.lost, 0);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let mech = FdpMechanism::no_privacy();
        let results = summarize_all_parallel(1_000_000, 20_000, &mech, 16 * 1024, 99);
        assert_eq!(results.len(), 5);
        for (i, (w, summary)) in results.iter().enumerate() {
            // Reproduce sequentially with the same derived seed.
            let mut rng = StdRng::seed_from_u64(99u64.wrapping_add(i as u64 * 7919));
            let stream = w.generate(1_000_000, 20_000, &mut rng);
            let expected = stream.summarize(&mech, 16 * 1024, &mut rng);
            assert_eq!(*summary, expected, "{}", w.label());
        }
    }

    #[test]
    fn summary_epsilon_zero_reads_everything() {
        let mut r = rng();
        let s = Workload::Kaggle.generate(1_000_000, 20_000, &mut r);
        let m = FdpMechanism::vanilla();
        let sum = s.summarize(&m, 16 * 1024, &mut r);
        assert_eq!(sum.k_accesses, sum.k_requests);
        assert_eq!(sum.lost, 0);
    }
}
