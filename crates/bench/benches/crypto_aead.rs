//! Criterion bench: ChaCha20-Poly1305 AEAD and group-tree path crypto at
//! bucket-sized payloads (the per-path cost the latency model charges as
//! `crypto_ns_per_byte`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce};
use fedora_crypto::group::GroupTreeCipher;

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_aead");
    let aead = ChaCha20Poly1305::new(&Key::from_bytes([7; 32]));
    for size in [512usize, 4096, 16_384] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encrypt", size), &data, |b, data| {
            let mut ctr = 0u64;
            b.iter(|| {
                ctr += 1;
                aead.encrypt(&Nonce::from_u64_pair(1, ctr), data, b"bucket")
            });
        });
        let ct = aead.encrypt(&Nonce::from_u64_pair(1, 0), &data, b"bucket");
        group.bench_with_input(BenchmarkId::new("decrypt", size), &ct, |b, ct| {
            b.iter(|| {
                aead.decrypt(&Nonce::from_u64_pair(1, 0), ct, b"bucket")
                    .expect("authentic")
            });
        });
    }

    group.bench_function("group_tree_path_20_levels", |b| {
        let mut cipher = GroupTreeCipher::new(Key::from_bytes([9; 32]));
        let payloads: Vec<Vec<u8>> = (0..20).map(|_| vec![0u8; 496]).collect();
        let ids: Vec<u32> = (0..20).collect();
        let dirs = vec![false; 19];
        let enc = cipher.encrypt_fresh_path(&payloads, &ids, &dirs);
        b.iter(|| {
            let dec = cipher.decrypt_path(&enc, &ids, &dirs).expect("authentic");
            dec.payloads.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_aead);
criterion_main!(benches);
