//! Criterion bench: buffer-ORAM operations (load / serve / aggregate /
//! drain) — the DRAM-side cost of steps ③–⑦.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fedora_crypto::aead::Key;
use fedora_oram::buffer::BufferOram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CAPACITY: usize = 512;
const ENTRY_BYTES: usize = 64;

fn loaded_buffer() -> (BufferOram, StdRng) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut buf = BufferOram::new(CAPACITY, ENTRY_BYTES, Key::from_bytes([3; 32]), &mut rng);
    for id in 0..256u64 {
        buf.load_entry(id, &[1u8; ENTRY_BYTES], &mut rng)
            .expect("capacity");
    }
    (buf, rng)
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_oram");

    group.bench_function("serve", |b| {
        let (mut buf, mut rng) = loaded_buffer();
        b.iter(|| {
            let id = rng.gen_range(0..256u64);
            buf.serve(id, &mut rng).expect("loaded")
        });
    });

    group.bench_function("aggregate", |b| {
        let (mut buf, mut rng) = loaded_buffer();
        let grad = vec![0.5f32; ENTRY_BYTES / 4];
        b.iter(|| {
            let id = rng.gen_range(0..256u64);
            buf.aggregate(id, &grad, 1.0, &mut rng).expect("loaded")
        });
    });

    group.bench_function("load_64_drain", |b| {
        let rng = StdRng::seed_from_u64(7);
        b.iter_batched(
            || {
                let mut r = rng.clone();
                (
                    BufferOram::new(CAPACITY, ENTRY_BYTES, Key::from_bytes([4; 32]), &mut r),
                    r,
                )
            },
            |(mut buf, mut r)| {
                for id in 0..64u64 {
                    buf.load_entry(id, &[1u8; ENTRY_BYTES], &mut r)
                        .expect("capacity");
                }
                buf.drain_round(&mut r).expect("drain")
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
