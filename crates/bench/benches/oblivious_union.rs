//! Criterion bench: the O(K²) oblivious union and its chunked variant —
//! the §4.2 "linear scanning overhead" the 16 Ki chunking bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedora_oblivious::union::{oblivious_union, ChunkedUnion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn requests(n: usize, domain: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("oblivious_union");
    for n in [256usize, 1024, 4096] {
        let reqs = requests(n, n as u64 / 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("monolithic", n), &reqs, |b, reqs| {
            b.iter(|| oblivious_union(reqs, reqs.len()));
        });
    }
    // Chunked: same 4096 requests, 512-request chunks → 8× less scanning.
    let reqs = requests(4096, 2048);
    group.bench_function("chunked_4096_by_512", |b| {
        let plan = ChunkedUnion::new(512);
        b.iter(|| plan.union_chunks(&reqs));
    });
    // Sort-based O(K log² K) alternative at the same sizes.
    for n in [256usize, 1024, 4096] {
        let reqs = requests(n, n as u64 / 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sort_based", n), &reqs, |b, reqs| {
            b.iter(|| fedora_oblivious::sorted_union::sorted_oblivious_union(reqs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_union);
criterion_main!(benches);
