//! Criterion bench: one full FEDORA round (steps ①–⑦) vs Path ORAM+ on
//! the simulated devices — the end-to-end server cost per round.

use criterion::{criterion_group, criterion_main, Criterion};
use fedora::baseline::PathOramPlus;
use fedora::config::{FedoraConfig, PrivacyConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::modes::FedAvg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: u64 = 4096;
const REQUESTS: usize = 256;

fn request_stream(rng: &mut StdRng) -> Vec<u64> {
    // Zipf-ish duplicates: half the requests hit a 64-entry head.
    (0..REQUESTS)
        .map(|_| {
            if rng.gen_bool(0.5) {
                rng.gen_range(0..64)
            } else {
                rng.gen_range(0..TABLE)
            }
        })
        .collect()
}

fn run_fedora_round(server: &mut FedoraServer, reqs: &[u64], rng: &mut StdRng) {
    server.begin_round(reqs, rng).expect("round");
    let mut mode = FedAvg;
    for &id in reqs.iter().take(32) {
        let _ = server.serve(id, rng).expect("serve");
        let _ = server
            .aggregate(&mode, id, &[0.1f32; 8], 1, rng)
            .expect("aggregate");
    }
    server.end_round(&mut mode, 1.0, rng).expect("end");
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_pipeline");
    group.sample_size(20);

    for (name, privacy) in [
        ("fedora_eps1", PrivacyConfig::with_epsilon(1.0)),
        ("fedora_eps0_vanilla", PrivacyConfig::perfect()),
        ("fedora_dedup_no_privacy", PrivacyConfig::none()),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(8);
            let mut config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), REQUESTS);
            config.privacy = privacy.clone();
            let mut server = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
            let reqs = request_stream(&mut rng);
            b.iter(|| run_fedora_round(&mut server, &reqs, &mut rng));
        });
    }

    group.bench_function("path_oram_plus_round", |b| {
        let mut rng = StdRng::seed_from_u64(10);
        let config = FedoraConfig::for_testing(TableSpec::tiny(TABLE), REQUESTS);
        let mut baseline = PathOramPlus::new(config, |id| vec![id as u8; 32], &mut rng);
        let reqs = request_stream(&mut rng);
        b.iter(|| {
            baseline.begin_round(&reqs, &mut rng).expect("round");
            let mut mode = FedAvg;
            baseline.end_round(&mut mode, 1.0, &mut rng).expect("end")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
