//! Criterion bench: the ε-FDP sampler at realistic chunk sizes.
//!
//! The controller samples one `k` per 16 Ki-request chunk per round; the
//! PDF construction is O(K) in log-space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedora_fdp::{FdpMechanism, YShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("fdp_sampler");
    for k_max in [1_000u64, 16_384, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("uniform_eps1", k_max),
            &k_max,
            |b, &k_max| {
                let mech = FdpMechanism::new(1.0, YShape::Uniform).expect("valid");
                let mut rng = StdRng::seed_from_u64(3);
                let k_union = k_max / 3;
                b.iter(|| mech.sample_k(k_union, k_max, &mut rng));
            },
        );
    }
    group.bench_function("pow5_eps05_16k", |b| {
        let mech = FdpMechanism::new(0.5, YShape::pow5()).expect("valid");
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| mech.sample_k(5_000, 16_384, &mut rng));
    });
    group.bench_function("pdf_only_16k", |b| {
        let mech = FdpMechanism::new(1.0, YShape::Uniform).expect("valid");
        b.iter(|| mech.pdf(5_000, 16_384).expect("valid"));
    });
    group.finish();
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);
