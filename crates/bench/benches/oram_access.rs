//! Criterion bench: Path ORAM accesses vs RAW ORAM AO/EO operations.
//!
//! The micro-level justification for FEDORA's main-ORAM choice: an AO
//! fetch does half the device work of a Path ORAM access, and EO cost is
//! amortized over `A` insertions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fedora_crypto::aead::Key;
use fedora_oram::path_oram::PathOram;
use fedora_oram::raw::{RawOram, RawOramConfig};
use fedora_oram::ring::{RingOram, RingOramConfig};
use fedora_oram::store::DramBucketStore;
use fedora_oram::TreeGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BLOCKS: u64 = 1024;
const BLOCK_BYTES: usize = 64;

fn path_oram() -> (PathOram<DramBucketStore>, StdRng) {
    let geo = TreeGeometry::for_blocks(BLOCKS, BLOCK_BYTES, 4);
    let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([1; 32]));
    let mut rng = StdRng::seed_from_u64(1);
    let mut oram = PathOram::new(store, BLOCKS, &mut rng);
    for id in 0..BLOCKS {
        oram.write(id, vec![id as u8; BLOCK_BYTES], &mut rng)
            .expect("init");
    }
    (oram, rng)
}

fn raw_oram(a: u32) -> (RawOram<DramBucketStore>, StdRng) {
    let geo = TreeGeometry::for_blocks(BLOCKS, BLOCK_BYTES, 8);
    let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([2; 32]));
    let mut rng = StdRng::seed_from_u64(2);
    let oram = RawOram::new(
        store,
        BLOCKS,
        RawOramConfig { eviction_period: a },
        |id| vec![id as u8; BLOCK_BYTES],
        &mut rng,
    );
    (oram, rng)
}

fn bench_oram(c: &mut Criterion) {
    let mut group = c.benchmark_group("oram_access");

    group.bench_function("path_oram_read", |b| {
        let (mut oram, mut rng) = path_oram();
        b.iter(|| {
            let id = rng.gen_range(0..BLOCKS);
            oram.read(id, &mut rng).expect("read")
        });
    });

    group.bench_function("raw_oram_vanilla_access_a5", |b| {
        let (mut oram, mut rng) = raw_oram(5);
        b.iter(|| {
            let id = rng.gen_range(0..BLOCKS);
            oram.access(id, None, &mut rng).expect("access")
        });
    });

    group.bench_function("raw_oram_fetch_insert_a16", |b| {
        // The FEDORA phase pair: AO fetch out, insert back (EO every 16).
        let (mut oram, mut rng) = raw_oram(16);
        b.iter(|| {
            let id = rng.gen_range(0..BLOCKS);
            let blk = oram.fetch(id, &mut rng).expect("fetch");
            oram.insert(id, blk.payload, &mut rng).expect("insert");
        });
    });

    group.bench_function("raw_oram_dummy_fetch", |b| {
        let (mut oram, mut rng) = raw_oram(16);
        b.iter(|| oram.dummy_fetch(&mut rng).expect("dummy"));
    });

    group.bench_function("ring_oram_access", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut oram = RingOram::new(
            BLOCKS,
            BLOCK_BYTES,
            RingOramConfig::classic(),
            Key::from_bytes([3; 32]),
            |id| vec![id as u8; BLOCK_BYTES],
            &mut rng,
        );
        b.iter(|| {
            let id = rng.gen_range(0..BLOCKS);
            oram.access(id, None, &mut rng).expect("access")
        });
    });

    group.bench_function("raw_oram_eo_access", |b| {
        let (oram, rng) = raw_oram(1_000_000);
        b.iter_batched(
            || (oram.clone(), rng.clone()),
            |(mut o, mut r)| {
                for id in 0..8u64 {
                    let blk = o.fetch(id, &mut r).expect("fetch");
                    o.insert(id, blk.payload, &mut r).expect("insert");
                }
                o.eo_access().expect("eo")
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_oram);
criterion_main!(benches);
