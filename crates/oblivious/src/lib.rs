//! Constant-time, data-oblivious primitives for the FEDORA controller.
//!
//! Everything the FEDORA controller does with secret-dependent data must not
//! branch on, or index memory by, the secret. This crate provides the small
//! vocabulary of constant-time operations the rest of the system is written
//! in:
//!
//! * [`Choice`] — a branchless boolean whose value the optimizer cannot see
//!   through (the same idea as the `subtle` crate, reimplemented here so the
//!   whole stack is dependency-free and auditable).
//! * [`select`] — constant-time selection (`cond ? a : b`) for integers and
//!   byte slices.
//! * [`union`] — the paper's §4.2 oblivious union: an *O(K²)* linear scan
//!   that computes the union of the K requested embedding indices without
//!   revealing duplicate structure, plus the chunked variant used when K is
//!   large.
//! * [`sort`] — a bitonic sorting network (data-independent schedule of
//!   compare-and-swaps), used by eviction logic and by tests.
//! * [`sorted_union`] — the O(K log² K) sort-based union alternative,
//!   quantifying the paper's choice of the chunked quadratic scan.
//! * [`scan`] — oblivious full-array scans: lookup/update of one element by
//!   touching every element.
//!
//! # Threat model
//!
//! The adversary observes addresses, sizes, and timing of every memory access
//! outside the secure controller (paper §4.1). The primitives here always
//! touch the same sequence of addresses regardless of the secret values; only
//! register-level arithmetic depends on secrets.
//!
//! # Example
//!
//! ```
//! use fedora_oblivious::{union::oblivious_union, Choice};
//!
//! let requests = [42u64, 7, 42, 38, 42, 38];
//! let u = oblivious_union(&requests, requests.len());
//! assert_eq!(u.len_real(), 3); // {7, 38, 42}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choice;
pub mod scan;
pub mod select;
pub mod sort;
pub mod sorted_union;
pub mod union;

pub use choice::Choice;
pub use select::{ct_eq_u64, ct_ge_u64, ct_lt_u64, select_u64, select_usize};
pub use union::{oblivious_union, ChunkedUnion, UnionSet};
