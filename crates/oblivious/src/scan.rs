//! Oblivious whole-array scans.
//!
//! Reading or writing *one* element of an off-chip array by its secret index
//! leaks the index. These helpers instead touch **every** element and use
//! constant-time selection to extract/update only the wanted one — the
//! pattern the paper uses for its position map and eviction scans when no
//! secure scratchpad is available (§6.6).

use crate::select::{cmov_bytes, ct_eq_u64, select_u64};
use crate::Choice;

/// Obliviously reads `array[index]` by scanning the whole array.
///
/// Returns 0 if `index >= array.len()` (out-of-range reads are
/// indistinguishable from in-range ones).
///
/// # Example
///
/// ```
/// use fedora_oblivious::scan::oblivious_read_u64;
/// let a = [10u64, 20, 30];
/// assert_eq!(oblivious_read_u64(&a, 1), 20);
/// ```
pub fn oblivious_read_u64(array: &[u64], index: u64) -> u64 {
    let mut out = 0u64;
    for (i, &v) in array.iter().enumerate() {
        let hit = ct_eq_u64(i as u64, index);
        out = select_u64(hit, v, out);
    }
    out
}

/// Obliviously writes `value` into `array[index]`, scanning the whole array.
/// Out-of-range indices write nothing but still scan everything.
pub fn oblivious_write_u64(array: &mut [u64], index: u64, value: u64) {
    for (i, v) in array.iter_mut().enumerate() {
        let hit = ct_eq_u64(i as u64, index);
        *v = select_u64(hit, value, *v);
    }
}

/// Obliviously copies the `index`-th fixed-size record out of a flat byte
/// buffer of `record_len`-byte records.
///
/// # Panics
///
/// Panics if `out.len() != record_len` or if `buf.len()` is not a multiple of
/// `record_len`.
pub fn oblivious_read_record(buf: &[u8], record_len: usize, index: u64, out: &mut [u8]) {
    assert_eq!(out.len(), record_len, "output must be one record long");
    assert_eq!(
        buf.len() % record_len,
        0,
        "buffer not a whole number of records"
    );
    for (i, rec) in buf.chunks_exact(record_len).enumerate() {
        let hit = ct_eq_u64(i as u64, index);
        cmov_bytes(hit, out, rec);
    }
}

/// Obliviously writes a record into the `index`-th slot of a flat buffer.
///
/// # Panics
///
/// Panics if `src.len() != record_len` or `buf.len()` is not a multiple of
/// `record_len`.
pub fn oblivious_write_record(buf: &mut [u8], record_len: usize, index: u64, src: &[u8]) {
    assert_eq!(src.len(), record_len, "source must be one record long");
    assert_eq!(
        buf.len() % record_len,
        0,
        "buffer not a whole number of records"
    );
    for (i, rec) in buf.chunks_exact_mut(record_len).enumerate() {
        let hit = ct_eq_u64(i as u64, index);
        cmov_bytes(hit, rec, src);
    }
}

/// Obliviously counts how many elements equal `needle`.
pub fn oblivious_count_eq(array: &[u64], needle: u64) -> u64 {
    let mut count = 0u64;
    for &v in array {
        count += ct_eq_u64(v, needle).to_word();
    }
    count
}

/// Obliviously finds the index of the first element equal to `needle`.
/// Returns `array.len() as u64` when absent. The scan always visits every
/// element.
pub fn oblivious_find_first(array: &[u64], needle: u64) -> u64 {
    let mut found = Choice::FALSE;
    let mut idx = array.len() as u64;
    for (i, &v) in array.iter().enumerate() {
        let hit = ct_eq_u64(v, needle) & !found;
        idx = select_u64(hit, i as u64, idx);
        found = found | hit;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_each_index() {
        let a = [5u64, 6, 7, 8];
        for i in 0..4 {
            assert_eq!(oblivious_read_u64(&a, i as u64), a[i]);
        }
        assert_eq!(oblivious_read_u64(&a, 99), 0);
    }

    #[test]
    fn write_each_index() {
        let mut a = [0u64; 4];
        for i in 0..4u64 {
            oblivious_write_u64(&mut a, i, i + 100);
        }
        assert_eq!(a, [100, 101, 102, 103]);
        oblivious_write_u64(&mut a, 99, 7); // out of range: no-op
        assert_eq!(a, [100, 101, 102, 103]);
    }

    #[test]
    fn record_roundtrip() {
        let mut buf = vec![0u8; 4 * 8];
        for i in 0..4u64 {
            let rec = [i as u8 + 1; 8];
            oblivious_write_record(&mut buf, 8, i, &rec);
        }
        let mut out = [0u8; 8];
        oblivious_read_record(&buf, 8, 2, &mut out);
        assert_eq!(out, [3u8; 8]);
    }

    #[test]
    fn count_and_find() {
        let a = [1u64, 2, 2, 3, 2];
        assert_eq!(oblivious_count_eq(&a, 2), 3);
        assert_eq!(oblivious_find_first(&a, 2), 1);
        assert_eq!(oblivious_find_first(&a, 9), a.len() as u64);
        assert_eq!(oblivious_count_eq(&a, 9), 0);
    }

    #[test]
    #[should_panic]
    fn record_len_mismatch_panics() {
        let mut out = [0u8; 4];
        oblivious_read_record(&[0u8; 16], 8, 0, &mut out);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn read_matches_index(v in proptest::collection::vec(any::<u64>(), 1..64), idx in 0usize..64) {
            prop_assume!(idx < v.len());
            prop_assert_eq!(oblivious_read_u64(&v, idx as u64), v[idx]);
        }

        #[test]
        fn write_then_read(mut v in proptest::collection::vec(any::<u64>(), 1..64), idx in 0usize..64, val: u64) {
            prop_assume!(idx < v.len());
            oblivious_write_u64(&mut v, idx as u64, val);
            prop_assert_eq!(v[idx], val);
        }

        #[test]
        fn find_first_matches_position(v in proptest::collection::vec(0u64..8, 0..32), needle in 0u64..8) {
            let expected = v.iter().position(|&x| x == needle).map(|p| p as u64).unwrap_or(v.len() as u64);
            prop_assert_eq!(oblivious_find_first(&v, needle), expected);
        }
    }
}
