//! Oblivious union of requested embedding indices (paper §4.2, step ①).
//!
//! Each FL round the controller receives `K` embedding-row requests from the
//! selected clients and must compute the set of *unique* rows — without
//! revealing, through its memory access pattern, how many duplicates there
//! were or which requests collide. The paper's algorithm is an `O(K²)` linear
//! scan: for every incoming request, the whole result array is scanned with
//! constant-time compare/insert logic. The result array is conservatively
//! sized (`K` slots) so it can never overflow.
//!
//! When `K` is large, the requests are split into evenly-sized chunks
//! ([`ChunkedUnion`]) and steps ①–③ run chunk by chunk; by parallel
//! composition of DP this preserves ε-FDP, at an accuracy/performance cost
//! that the evaluation (§4.2, chunk size 16K) quantifies.

use crate::select::{ct_eq_u64, select_u64};
use crate::Choice;

/// Sentinel index meaning "empty slot". Real embedding indices must be
/// strictly below this value.
pub const EMPTY_SLOT: u64 = u64::MAX;

/// The result of an oblivious union: a fixed-capacity array of slots, the
/// first [`UnionSet::len_real`] of which hold the distinct requested indices
/// (in first-seen order) and the remainder of which hold [`EMPTY_SLOT`].
///
/// The array length (capacity) is public; the number of real entries is the
/// secret `k_union`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionSet {
    slots: Vec<u64>,
    counts: Vec<u64>,
    real: usize,
}

impl UnionSet {
    /// Creates an empty union set with capacity for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        UnionSet {
            slots: vec![EMPTY_SLOT; capacity],
            counts: vec![0; capacity],
            real: 0,
        }
    }

    /// The public capacity of the set (number of slots scanned per insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The number of real (non-sentinel) entries — the secret `k_union`.
    ///
    /// The controller treats this value as secret: it is only ever combined
    /// with the FDP mechanism's noise before becoming observable.
    pub fn len_real(&self) -> usize {
        self.real
    }

    /// Read-only view of all slots, including trailing [`EMPTY_SLOT`]s.
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// The real entries, in first-seen order.
    pub fn real_entries(&self) -> &[u64] {
        &self.slots[..self.real]
    }

    /// Obliviously inserts `index`: scans every slot, writing `index` into
    /// the first empty slot iff no earlier slot already holds it, and
    /// incrementing the entry's request count either way. The scan pattern
    /// (every slot, in order) is independent of the data.
    ///
    /// # Panics
    ///
    /// Panics if `index == EMPTY_SLOT` (the sentinel is reserved) — this is a
    /// public property of the input encoding, not a secret-dependent branch.
    pub fn oblivious_insert(&mut self, index: u64) {
        assert_ne!(index, EMPTY_SLOT, "EMPTY_SLOT sentinel is reserved");
        let mut seen = Choice::FALSE;
        let mut inserted = Choice::FALSE;
        for (slot, count) in self.slots.iter_mut().zip(self.counts.iter_mut()) {
            let is_empty = ct_eq_u64(*slot, EMPTY_SLOT);
            let is_match = ct_eq_u64(*slot, index);
            seen = seen | is_match;
            // Insert here iff: slot empty, not seen before, not yet inserted.
            let do_insert = is_empty & !seen & !inserted;
            *slot = select_u64(do_insert, index, *slot);
            // The request lands on exactly one slot: its match or its
            // fresh insertion point.
            *count += (is_match | do_insert).to_word();
            inserted = inserted | do_insert;
        }
        // `real` increments iff we inserted. This counter lives inside the
        // secure controller; updating it arithmetically keeps it branch-free.
        self.real += inserted.to_word() as usize;
    }

    /// Per-slot request counts (parallel to [`slots`](Self::slots)): how
    /// many of the round's K requests named each entry. Maintained
    /// obliviously during insertion; used by the popularity-aware entry-
    /// selection strategy (§4.2).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The real entries paired with their request counts, in first-seen
    /// order.
    pub fn real_entries_with_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots[..self.real]
            .iter()
            .zip(&self.counts[..self.real])
            .map(|(&s, &c)| (s, c))
    }

    /// Writes a slot directly (crate-internal: the sort-based union
    /// materializes its compacted output through this).
    pub(crate) fn write_slot(&mut self, slot: usize, value: u64) {
        self.slots[slot] = value;
    }

    /// Recomputes `len_real` by scanning for the sentinel (crate-internal;
    /// the scan is over the full public-length array).
    pub(crate) fn recount(&mut self) {
        let mut real = 0u64;
        for &s in &self.slots {
            real += (!ct_eq_u64(s, EMPTY_SLOT)).to_word();
        }
        self.real = real as usize;
    }

    /// Returns whether `index` is present (constant-time full scan).
    pub fn contains_ct(&self, index: u64) -> Choice {
        let mut found = Choice::FALSE;
        for &slot in &self.slots {
            found = found | ct_eq_u64(slot, index);
        }
        found
    }
}

/// Computes the oblivious union of `requests`, sized for `capacity` slots.
///
/// `capacity` is conservatively `requests.len()` in the protocol (a union can
/// never exceed the number of requests), making overflow impossible.
///
/// # Example
///
/// ```
/// use fedora_oblivious::union::oblivious_union;
/// let u = oblivious_union(&[3, 1, 3, 2, 1], 5);
/// assert_eq!(u.len_real(), 3);
/// assert_eq!(u.real_entries(), &[3, 1, 2]);
/// ```
///
/// # Panics
///
/// Panics if `capacity < requests.len()` (the result could overflow) or if
/// any request equals [`EMPTY_SLOT`].
pub fn oblivious_union(requests: &[u64], capacity: usize) -> UnionSet {
    assert!(
        capacity >= requests.len(),
        "union capacity {capacity} below request count {}",
        requests.len()
    );
    let mut set = UnionSet::with_capacity(capacity);
    for &r in requests {
        set.oblivious_insert(r);
    }
    set
}

/// Splits a large request list into evenly-sized chunks and performs the
/// union chunk by chunk (paper §4.2). Each chunk is independently unioned
/// and independently FDP-noised downstream; duplicates *across* chunks are
/// not removed, which is exactly the performance cost the paper describes.
#[derive(Clone, Debug)]
pub struct ChunkedUnion {
    chunk_size: usize,
}

impl ChunkedUnion {
    /// Creates a chunked-union helper. The paper's evaluation uses a chunk
    /// size of 16 Ki requests.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkedUnion { chunk_size }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks a request list of length `k` splits into.
    pub fn num_chunks(&self, k: usize) -> usize {
        k.div_ceil(self.chunk_size)
    }

    /// Runs the oblivious union over each chunk, returning one [`UnionSet`]
    /// per chunk. The cost is `O(Σ chunkᵢ²)` instead of `O(K²)`.
    pub fn union_chunks(&self, requests: &[u64]) -> Vec<UnionSet> {
        requests
            .chunks(self.chunk_size)
            .map(|c| oblivious_union(c, c.len()))
            .collect()
    }

    /// The number of constant-time slot scans the full union performs —
    /// the metric behind the paper's "linear scanning overhead" discussion.
    pub fn scan_cost(&self, k: usize) -> u64 {
        requests_scan_cost(k, self.chunk_size)
    }
}

/// Slot-visit cost of the chunked union: each request in a chunk of size `c`
/// scans `c` slots, so a chunk costs `c²` and the total is `Σ cᵢ²`.
pub fn requests_scan_cost(k: usize, chunk_size: usize) -> u64 {
    let full = (k / chunk_size) as u64;
    let rem = (k % chunk_size) as u64;
    let c = chunk_size as u64;
    full * c * c + rem * rem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_of_duplicates() {
        let u = oblivious_union(&[42, 7, 42, 38, 42, 38], 6);
        assert_eq!(u.len_real(), 3);
        assert_eq!(u.real_entries(), &[42, 7, 38]);
        assert_eq!(&u.slots()[3..], &[EMPTY_SLOT; 3]);
    }

    #[test]
    fn union_all_unique() {
        let reqs: Vec<u64> = (0..32).collect();
        let u = oblivious_union(&reqs, 32);
        assert_eq!(u.len_real(), 32);
        assert_eq!(u.real_entries(), &reqs[..]);
    }

    #[test]
    fn union_all_same() {
        let u = oblivious_union(&[5; 100], 100);
        assert_eq!(u.len_real(), 1);
        assert_eq!(u.real_entries(), &[5]);
    }

    #[test]
    fn union_empty() {
        let u = oblivious_union(&[], 0);
        assert_eq!(u.len_real(), 0);
        assert!(u.real_entries().is_empty());
    }

    #[test]
    fn counts_track_request_multiplicity() {
        let u = oblivious_union(&[42, 7, 42, 38, 42, 38], 6);
        let counted: Vec<(u64, u64)> = u.real_entries_with_counts().collect();
        assert_eq!(counted, vec![(42, 3), (7, 1), (38, 2)]);
        // Total count equals K.
        assert_eq!(u.counts().iter().sum::<u64>(), 6);
    }

    #[test]
    fn counts_all_ones_when_unique() {
        let reqs: Vec<u64> = (0..10).collect();
        let u = oblivious_union(&reqs, 10);
        assert!(u.real_entries_with_counts().all(|(_, c)| c == 1));
    }

    #[test]
    fn contains_ct_matches() {
        let u = oblivious_union(&[10, 20, 30], 3);
        assert!(u.contains_ct(20).unwrap_leaky());
        assert!(!u.contains_ct(21).unwrap_leaky());
    }

    #[test]
    #[should_panic]
    fn sentinel_rejected() {
        oblivious_union(&[EMPTY_SLOT], 1);
    }

    #[test]
    #[should_panic]
    fn capacity_too_small_rejected() {
        oblivious_union(&[1, 2, 3], 2);
    }

    #[test]
    fn chunked_union_splits() {
        let cu = ChunkedUnion::new(4);
        let reqs: Vec<u64> = vec![1, 2, 1, 2, 3, 3, 3, 3, 9];
        let chunks = cu.union_chunks(&reqs);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len_real(), 2); // {1,2}
        assert_eq!(chunks[1].len_real(), 1); // {3}
        assert_eq!(chunks[2].len_real(), 1); // {9}
        assert_eq!(cu.num_chunks(reqs.len()), 3);
    }

    #[test]
    fn scan_cost_quadratic_per_chunk() {
        // 10 requests, chunk 10 => 100 scans; chunk 5 => 2*25 = 50 scans.
        assert_eq!(requests_scan_cost(10, 10), 100);
        assert_eq!(requests_scan_cost(10, 5), 50);
        assert_eq!(requests_scan_cost(12, 5), 25 + 25 + 4);
    }

    #[test]
    fn duplicates_across_chunks_not_merged() {
        let cu = ChunkedUnion::new(2);
        let chunks = cu.union_chunks(&[7, 7, 7, 7]);
        let total: usize = chunks.iter().map(|c| c.len_real()).sum();
        assert_eq!(total, 2, "per-chunk unions keep cross-chunk duplicates");
    }
}
