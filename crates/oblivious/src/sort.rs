//! Bitonic sorting network: a sort whose compare-and-swap schedule depends
//! only on the input *length*, never on the values.
//!
//! Used by eviction logic (deterministic ordering of stash candidates) and by
//! tests that need an oblivious sort to compare traces against.

use crate::select::{cswap_u64, ct_lt_u64};

/// Sorts `(key, value)` pairs ascending by key with a bitonic network.
///
/// The schedule of compared index pairs is a function of `data.len()` only.
/// Non-power-of-two lengths are handled by virtually padding with `u64::MAX`
/// keys (the pad elements are materialized to keep the access pattern fixed).
///
/// # Example
///
/// ```
/// use fedora_oblivious::sort::bitonic_sort_pairs;
/// let mut v = vec![(3u64, 30u64), (1, 10), (2, 20)];
/// bitonic_sort_pairs(&mut v);
/// assert_eq!(v, vec![(1, 10), (2, 20), (3, 30)]);
/// ```
#[allow(clippy::ptr_arg)] // the network pads to a power of two in place
pub fn bitonic_sort_pairs(data: &mut Vec<(u64, u64)>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();
    data.resize(padded, (u64::MAX, u64::MAX));

    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    let (a_key, b_key) = (data[i].0, data[l].0);
                    let out_of_order = if ascending {
                        ct_lt_u64(b_key, a_key)
                    } else {
                        ct_lt_u64(a_key, b_key)
                    };
                    // Split borrow to swap both key and value.
                    let (lo, hi) = data.split_at_mut(l);
                    let (ka, va) = (&mut lo[i].0, &mut lo[i].1);
                    let (kb, vb) = (&mut hi[0].0, &mut hi[0].1);
                    cswap_u64(out_of_order, ka, kb);
                    cswap_u64(out_of_order, va, vb);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    data.truncate(n);
}

/// Sorts a slice of `u64` keys ascending with the bitonic network.
pub fn bitonic_sort(keys: &mut [u64]) {
    let mut pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 0)).collect();
    bitonic_sort_pairs(&mut pairs);
    for (dst, (k, _)) in keys.iter_mut().zip(pairs) {
        *dst = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_power_of_two() {
        let mut v: Vec<u64> = vec![8, 3, 5, 1, 9, 2, 7, 4];
        bitonic_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 7, 8, 9]);
    }

    #[test]
    fn sorts_non_power_of_two() {
        let mut v: Vec<u64> = vec![5, 1, 4, 2, 3];
        bitonic_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn sorts_with_duplicates() {
        let mut v: Vec<u64> = vec![2, 2, 1, 1, 3, 3, 2];
        bitonic_sort(&mut v);
        assert_eq!(v, vec![1, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u64> = vec![];
        bitonic_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        bitonic_sort(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn pairs_carry_values() {
        let mut v = vec![(10u64, 100u64), (5, 50), (7, 70), (5, 51)];
        bitonic_sort_pairs(&mut v);
        let keys: Vec<u64> = v.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![5, 5, 7, 10]);
        // Both 5-keyed values survive.
        let vals: Vec<u64> = v.iter().map(|p| p.1).collect();
        assert!(vals.contains(&50) && vals.contains(&51) && vals.contains(&70));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_std_sort(mut v in proptest::collection::vec(0u64..1000, 0..64)) {
            let mut expected = v.clone();
            expected.sort_unstable();
            bitonic_sort(&mut v);
            prop_assert_eq!(v, expected);
        }

        #[test]
        fn is_permutation(v in proptest::collection::vec(any::<u64>().prop_filter("no max", |x| *x != u64::MAX), 0..48)) {
            let mut sorted = v.clone();
            bitonic_sort(&mut sorted);
            let mut a = v;
            a.sort_unstable();
            let mut b = sorted;
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
