//! Sort-based oblivious union: the `O(K log² K)` alternative to the
//! paper's `O(K²)` linear scan (§4.2).
//!
//! The classic construction: (1) bitonic-sort the requests — the
//! compare-and-swap schedule depends only on `K`; (2) in one linear pass,
//! replace every element equal to its predecessor with the [`EMPTY_SLOT`]
//! sentinel using constant-time selection; (3) obliviously *compact* the
//! survivors to the front with a data-independent permutation network
//! (sorting by the sentinel flag), yielding exactly the [`UnionSet`]
//! layout the controller expects.
//!
//! The paper chunks the quadratic scan instead (16 Ki chunks) because the
//! scan is branch-free, cache-friendly, and simple to audit; this module
//! exists to quantify that choice — see the `oblivious_union` Criterion
//! bench for the crossover.

use crate::sort::bitonic_sort_pairs;
use crate::union::{UnionSet, EMPTY_SLOT};

/// Computes the oblivious union of `requests` via sort + dedup + oblivious
/// compaction. Produces the same set as
/// [`crate::union::oblivious_union`], but in first-*sorted* order rather
/// than first-seen order (both orders are deterministic functions of the
/// multiset, so downstream FDP accounting is unaffected).
///
/// # Example
///
/// ```
/// use fedora_oblivious::sorted_union::sorted_oblivious_union;
/// let u = sorted_oblivious_union(&[9, 3, 9, 1, 3]);
/// assert_eq!(u.len_real(), 3);
/// assert_eq!(u.real_entries(), &[1, 3, 9]);
/// ```
///
/// # Panics
///
/// Panics if any request equals [`EMPTY_SLOT`] (reserved sentinel).
pub fn sorted_oblivious_union(requests: &[u64]) -> UnionSet {
    for &r in requests {
        assert_ne!(r, EMPTY_SLOT, "EMPTY_SLOT sentinel is reserved");
    }
    if requests.is_empty() {
        return UnionSet::with_capacity(0);
    }

    // (1) Oblivious sort. Pair the value with nothing (second slot reused
    // later for the dedup flag).
    let mut pairs: Vec<(u64, u64)> = requests.iter().map(|&r| (r, 0)).collect();
    bitonic_sort_pairs(&mut pairs);

    // (2) Linear dedup: equal-to-predecessor entries become the sentinel.
    // Constant-time: every element is visited and rewritten via select.
    let mut deduped: Vec<u64> = Vec::with_capacity(pairs.len());
    let mut prev = EMPTY_SLOT;
    for (v, _) in &pairs {
        let dup = crate::select::ct_eq_u64(*v, prev);
        deduped.push(crate::select::select_u64(dup, EMPTY_SLOT, *v));
        prev = *v;
    }

    // (3) Oblivious compaction: sort by (is_sentinel, value) — the
    // sentinel is u64::MAX so a plain value sort already moves survivors
    // to the front in ascending order.
    let mut compact: Vec<(u64, u64)> = deduped.into_iter().map(|v| (v, 0)).collect();
    bitonic_sort_pairs(&mut compact);

    // Materialize the UnionSet: survivors first, sentinels after. The
    // count is accumulated arithmetically.
    let mut set = UnionSet::with_capacity(requests.len());
    for (i, (v, _)) in compact.iter().enumerate() {
        set.write_slot(i, *v);
    }
    set.recount();
    set
}

/// Slot-visit cost of the sort-based union: two bitonic sorts of `k`
/// elements (`k/2 · log²(k)`-ish compare-and-swaps each) plus one linear
/// pass — the number to compare against
/// [`crate::union::requests_scan_cost`].
pub fn sorted_scan_cost(k: usize) -> u64 {
    if k <= 1 {
        return k as u64;
    }
    let n = k.next_power_of_two() as u64;
    let log = n.trailing_zeros() as u64;
    // Bitonic network size: n/4 · log · (log + 1) comparators per sort.
    let per_sort = n / 4 * log * (log + 1);
    2 * per_sort + k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union::oblivious_union;

    #[test]
    fn matches_linear_scan_union() {
        let reqs = [42u64, 7, 42, 38, 42, 38, 7, 7];
        let sorted = sorted_oblivious_union(&reqs);
        let linear = oblivious_union(&reqs, reqs.len());
        assert_eq!(sorted.len_real(), linear.len_real());
        let mut a = sorted.real_entries().to_vec();
        let mut b = linear.real_entries().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_sorted_and_padded() {
        let u = sorted_oblivious_union(&[5, 1, 5, 3, 1]);
        assert_eq!(u.real_entries(), &[1, 3, 5]);
        assert_eq!(&u.slots()[3..], &[EMPTY_SLOT, EMPTY_SLOT]);
    }

    #[test]
    fn all_unique_and_all_same() {
        let uniq: Vec<u64> = (0..17).rev().collect();
        let u = sorted_oblivious_union(&uniq);
        assert_eq!(u.len_real(), 17);
        assert_eq!(u.real_entries(), (0..17).collect::<Vec<_>>().as_slice());

        let same = [9u64; 25];
        let u = sorted_oblivious_union(&same);
        assert_eq!(u.len_real(), 1);
        assert_eq!(u.real_entries(), &[9]);
    }

    #[test]
    fn empty_input() {
        let u = sorted_oblivious_union(&[]);
        assert_eq!(u.len_real(), 0);
        assert_eq!(u.capacity(), 0);
    }

    #[test]
    #[should_panic]
    fn sentinel_rejected() {
        sorted_oblivious_union(&[EMPTY_SLOT]);
    }

    #[test]
    fn cost_crossover_favors_sort_for_large_k() {
        use crate::union::requests_scan_cost;
        // The quadratic scan wins for small chunks; the sort wins at scale.
        assert!(sorted_scan_cost(64) > requests_scan_cost(64, 64) / 4);
        assert!(sorted_scan_cost(65536) < requests_scan_cost(65536, 65536) / 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::union::oblivious_union;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn agrees_with_linear_scan(reqs in proptest::collection::vec(0u64..100, 0..80)) {
            let sorted = sorted_oblivious_union(&reqs);
            let linear = oblivious_union(&reqs, reqs.len());
            prop_assert_eq!(sorted.len_real(), linear.len_real());
            let mut a = sorted.real_entries().to_vec();
            let mut b = linear.real_entries().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
