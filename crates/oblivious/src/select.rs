//! Constant-time comparisons and selection.
//!
//! These are the register-level building blocks: equality/ordering tests
//! that produce a [`Choice`], and `select` operations that choose between two
//! values (or copy between two buffers) without branching.

use crate::Choice;

/// Constant-time equality of two `u64`s.
///
/// # Example
///
/// ```
/// use fedora_oblivious::ct_eq_u64;
/// assert!(ct_eq_u64(7, 7).unwrap_leaky());
/// assert!(!ct_eq_u64(7, 8).unwrap_leaky());
/// ```
#[inline]
pub fn ct_eq_u64(a: u64, b: u64) -> Choice {
    let diff = a ^ b;
    // diff == 0  <=>  (diff | diff.wrapping_neg()) has MSB 0.
    let nonzero = (diff | diff.wrapping_neg()) >> 63;
    Choice::from_word(nonzero ^ 1)
}

/// Constant-time `a < b` for `u64`.
///
/// Uses the standard borrow-extraction trick on 64-bit words.
#[inline]
pub fn ct_lt_u64(a: u64, b: u64) -> Choice {
    // Compute the borrow of a - b via 128-bit subtraction.
    let wide = (a as u128).wrapping_sub(b as u128);
    Choice::from_word(((wide >> 127) & 1) as u64)
}

/// Constant-time `a >= b` for `u64`.
#[inline]
pub fn ct_ge_u64(a: u64, b: u64) -> Choice {
    !ct_lt_u64(a, b)
}

/// Constant-time select: returns `a` if `cond` is true, else `b`.
///
/// # Example
///
/// ```
/// use fedora_oblivious::{select_u64, Choice};
/// assert_eq!(select_u64(Choice::TRUE, 1, 2), 1);
/// assert_eq!(select_u64(Choice::FALSE, 1, 2), 2);
/// ```
#[inline]
pub fn select_u64(cond: Choice, a: u64, b: u64) -> u64 {
    let mask = cond.to_mask();
    (a & mask) | (b & !mask)
}

/// Constant-time select for `usize` values.
#[inline]
pub fn select_usize(cond: Choice, a: usize, b: usize) -> usize {
    select_u64(cond, a as u64, b as u64) as usize
}

/// Constant-time select for `u32` values.
#[inline]
pub fn select_u32(cond: Choice, a: u32, b: u32) -> u32 {
    select_u64(cond, a as u64, b as u64) as u32
}

/// Constant-time select for `f32` values (by bit pattern).
#[inline]
pub fn select_f32(cond: Choice, a: f32, b: f32) -> f32 {
    f32::from_bits(select_u32(cond, a.to_bits(), b.to_bits()))
}

/// Constant-time conditional overwrite: `dst = src` iff `cond`, element-wise
/// over byte slices. Always touches every byte of both slices.
///
/// # Panics
///
/// Panics if `dst.len() != src.len()`.
#[inline]
pub fn cmov_bytes(cond: Choice, dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "cmov_bytes length mismatch: {} vs {}",
        dst.len(),
        src.len()
    );
    let mask = cond.to_mask() as u8;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*s & mask) | (*d & !mask);
    }
}

/// Constant-time conditional swap of two equal-length byte slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn cswap_bytes(cond: Choice, a: &mut [u8], b: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "cswap_bytes length mismatch");
    let mask = cond.to_mask() as u8;
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let t = (*x ^ *y) & mask;
        *x ^= t;
        *y ^= t;
    }
}

/// Constant-time conditional swap of two `u64`s.
#[inline]
pub fn cswap_u64(cond: Choice, a: &mut u64, b: &mut u64) {
    let mask = cond.to_mask();
    let t = (*a ^ *b) & mask;
    *a ^= t;
    *b ^= t;
}

/// Constant-time conditional overwrite for `f32` slices.
///
/// # Panics
///
/// Panics if `dst.len() != src.len()`.
#[inline]
pub fn cmov_f32(cond: Choice, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "cmov_f32 length mismatch");
    let mask = cond.to_mask() as u32;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = f32::from_bits((s.to_bits() & mask) | (d.to_bits() & !mask));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_edges() {
        assert!(ct_eq_u64(0, 0).unwrap_leaky());
        assert!(ct_eq_u64(u64::MAX, u64::MAX).unwrap_leaky());
        assert!(!ct_eq_u64(0, u64::MAX).unwrap_leaky());
        assert!(!ct_eq_u64(1, 2).unwrap_leaky());
    }

    #[test]
    fn lt_edges() {
        assert!(ct_lt_u64(0, 1).unwrap_leaky());
        assert!(!ct_lt_u64(1, 0).unwrap_leaky());
        assert!(!ct_lt_u64(5, 5).unwrap_leaky());
        assert!(ct_lt_u64(0, u64::MAX).unwrap_leaky());
        assert!(!ct_lt_u64(u64::MAX, 0).unwrap_leaky());
    }

    #[test]
    fn ge_is_not_lt() {
        for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 1)] {
            assert_eq!(ct_ge_u64(a, b).unwrap_leaky(), a >= b);
        }
    }

    #[test]
    fn select_picks_correctly() {
        assert_eq!(select_u64(Choice::TRUE, 10, 20), 10);
        assert_eq!(select_u64(Choice::FALSE, 10, 20), 20);
        assert_eq!(select_usize(Choice::TRUE, 3, 4), 3);
        assert_eq!(select_f32(Choice::FALSE, 1.5, -2.5), -2.5);
    }

    #[test]
    fn cmov_applies_only_when_true() {
        let mut dst = [1u8, 2, 3];
        cmov_bytes(Choice::FALSE, &mut dst, &[9, 9, 9]);
        assert_eq!(dst, [1, 2, 3]);
        cmov_bytes(Choice::TRUE, &mut dst, &[9, 8, 7]);
        assert_eq!(dst, [9, 8, 7]);
    }

    #[test]
    fn cswap_swaps_only_when_true() {
        let mut a = [1u8, 2];
        let mut b = [3u8, 4];
        cswap_bytes(Choice::FALSE, &mut a, &mut b);
        assert_eq!((a, b), ([1, 2], [3, 4]));
        cswap_bytes(Choice::TRUE, &mut a, &mut b);
        assert_eq!((a, b), ([3, 4], [1, 2]));
    }

    #[test]
    fn cswap_u64_works() {
        let (mut a, mut b) = (5u64, 9u64);
        cswap_u64(Choice::TRUE, &mut a, &mut b);
        assert_eq!((a, b), (9, 5));
        cswap_u64(Choice::FALSE, &mut a, &mut b);
        assert_eq!((a, b), (9, 5));
    }

    #[test]
    fn cmov_f32_bit_exact() {
        let mut dst = [1.0f32, f32::NAN];
        let src = [2.0f32, 3.0];
        cmov_f32(Choice::TRUE, &mut dst, &src);
        assert_eq!(dst, [2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn cmov_len_mismatch_panics() {
        let mut dst = [0u8; 2];
        cmov_bytes(Choice::TRUE, &mut dst, &[0u8; 3]);
    }
}
