//! A branchless boolean.
//!
//! [`Choice`] wraps a `u64` that is always `0` or `1` and is combined with
//! other values only through arithmetic/bitwise operations, never through
//! control flow. [`core::hint::black_box`] is applied at construction so the
//! optimizer cannot constant-fold a secret-derived condition back into a
//! branch.

use core::hint::black_box;
use core::ops::{BitAnd, BitOr, BitXor, Not};

/// A constant-time boolean: internally `0u64` (false) or `1u64` (true).
///
/// `Choice` deliberately does **not** implement `PartialEq` against `bool` or
/// `Deref` to `bool`; converting to a real branchable boolean requires the
/// explicit — and greppable — [`Choice::unwrap_leaky`].
///
/// # Example
///
/// ```
/// use fedora_oblivious::Choice;
///
/// let a = Choice::from_bool(true);
/// let b = Choice::from_bool(false);
/// assert_eq!((a & b).unwrap_leaky(), false);
/// assert_eq!((a | b).unwrap_leaky(), true);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Choice(u64);

impl Choice {
    /// The constant-time `true`.
    pub const TRUE: Choice = Choice(1);
    /// The constant-time `false`.
    pub const FALSE: Choice = Choice(0);

    /// Creates a `Choice` from a `bool`.
    ///
    /// The input is laundered through [`black_box`] so later arithmetic on
    /// the wrapped value is not folded into a branch.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        Choice(black_box(b as u64))
    }

    /// Creates a `Choice` from the low bit of `w`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `w` is 0 or 1.
    #[inline]
    pub fn from_word(w: u64) -> Self {
        debug_assert!(w <= 1, "Choice word must be 0 or 1, got {w}");
        Choice(black_box(w & 1))
    }

    /// Returns the wrapped word (0 or 1). Constant-time.
    #[inline]
    pub fn to_word(self) -> u64 {
        self.0
    }

    /// Returns an all-zeros or all-ones mask. Constant-time.
    #[inline]
    pub fn to_mask(self) -> u64 {
        self.0.wrapping_neg()
    }

    /// Escapes to a branchable `bool`.
    ///
    /// Named `leaky` because any `if` taken on the result is visible to a
    /// timing adversary; call sites must only do this with values that are
    /// public (or have already been made public by the protocol, like the
    /// FDP-noised access count `k`).
    #[inline]
    pub fn unwrap_leaky(self) -> bool {
        self.0 == 1
    }
}

impl From<bool> for Choice {
    fn from(b: bool) -> Self {
        Choice::from_bool(b)
    }
}

impl BitAnd for Choice {
    type Output = Choice;
    #[inline]
    fn bitand(self, rhs: Choice) -> Choice {
        Choice(self.0 & rhs.0)
    }
}

impl BitOr for Choice {
    type Output = Choice;
    #[inline]
    fn bitor(self, rhs: Choice) -> Choice {
        Choice(self.0 | rhs.0)
    }
}

impl BitXor for Choice {
    type Output = Choice;
    #[inline]
    fn bitxor(self, rhs: Choice) -> Choice {
        Choice(self.0 ^ rhs.0)
    }
}

impl Not for Choice {
    type Output = Choice;
    #[inline]
    fn not(self) -> Choice {
        Choice(self.0 ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bool_roundtrip() {
        assert!(Choice::from_bool(true).unwrap_leaky());
        assert!(!Choice::from_bool(false).unwrap_leaky());
    }

    #[test]
    fn masks() {
        assert_eq!(Choice::TRUE.to_mask(), u64::MAX);
        assert_eq!(Choice::FALSE.to_mask(), 0);
    }

    #[test]
    fn boolean_algebra() {
        let t = Choice::TRUE;
        let f = Choice::FALSE;
        assert!((t & t).unwrap_leaky());
        assert!(!(t & f).unwrap_leaky());
        assert!((t | f).unwrap_leaky());
        assert!(!(f | f).unwrap_leaky());
        assert!((t ^ f).unwrap_leaky());
        assert!(!(t ^ t).unwrap_leaky());
        assert!((!f).unwrap_leaky());
        assert!(!(!t).unwrap_leaky());
    }

    #[test]
    fn from_word_low_bit() {
        assert!(Choice::from_word(1).unwrap_leaky());
        assert!(!Choice::from_word(0).unwrap_leaky());
    }
}
