//! ε-FDP: feature-level differential privacy for ORAM access counts
//! (paper §3).
//!
//! The only thing FEDORA's ORAM leaks is *how many* main-ORAM accesses a
//! round performs (`k`). ε-FDP bounds what that number reveals about any
//! single user feature value: the controller samples `k` from the
//! exponential-mechanism distribution
//!
//! ```text
//! p_i ∝ Y_i · exp(−ε·|k_union − i| / 2),   1 ≤ i ≤ K
//! ```
//!
//! where `k_union` is the secret number of unique requested entries, `K`
//! the public total number of requests, and the `Y_i` a public shape that
//! trades performance (dummy accesses when `k > k_union`) against accuracy
//! (lost entries when `k < k_union`).
//!
//! * [`shape`] — the `Y` shapes from Figure 3 (uniform, square, pow,
//!   delta) plus custom tables.
//! * [`mechanism`] — the log-space sampler and its distribution; the DP
//!   ratio bound `p_i(d)/p_i(d′) ≤ e^ε` is checked by property tests.
//! * [`chunking`] — splitting large request batches into chunks processed
//!   independently (parallel composition keeps the round at ε-FDP).
//! * [`accountant`] — group privacy (hiding `n` values at once costs
//!   `ε/n` per value) and round bookkeeping.
//! * [`tuning`] — automatic Y-shape selection given the deployment's
//!   relative cost of dummy accesses vs lost entries (Observation 3 as
//!   tooling).
//!
//! The two strawmen of §3.2 are special cases (checked by tests):
//! `Y = delta(K)` gives vanilla ORAM (`k = K` always, ε irrelevant — perfect
//! FDP), and `ε → ∞` gives the naive dedup optimization (`k = k_union`
//! always — no FDP).
//!
//! # Example
//!
//! ```
//! use fedora_fdp::{FdpMechanism, YShape};
//! use rand::SeedableRng;
//!
//! let mech = FdpMechanism::new(1.0, YShape::Uniform).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let k = mech.sample_k(30, 100, &mut rng);
//! assert!(k >= 1 && k <= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod chunking;
pub mod mechanism;
pub mod shape;
pub mod tuning;

pub use accountant::{FdpAccountant, ProtectionMode};
pub use chunking::ChunkPlan;
pub use mechanism::{FdpError, FdpMechanism};
pub use shape::YShape;
