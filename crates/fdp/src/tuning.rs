//! Y-shape tuning: choosing the performance/accuracy trade-off
//! (Observation 3, §3.3).
//!
//! The `Y_i` prior is a free design parameter: for a given ε it trades the
//! chance of *dummy* accesses (performance) against *lost* entries
//! (accuracy). This module turns the observation into tooling — given a
//! deployment's relative cost of a dummy access vs a lost entry, it
//! searches the standard shape families and recommends the cheapest one.
//! Because `Y` is public, tuning it leaks nothing.

use serde::{Deserialize, Serialize};

use crate::mechanism::{FdpError, FdpMechanism};
use crate::shape::YShape;

/// Relative cost of the two failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Cost of one dummy (wasted) main-ORAM access.
    pub dummy: f64,
    /// Cost of one lost (unread) entry.
    pub lost: f64,
}

impl CostWeights {
    /// Performance-dominated deployment: losses are cheap to tolerate.
    pub fn performance_first() -> Self {
        CostWeights {
            dummy: 1.0,
            lost: 0.2,
        }
    }

    /// Accuracy-dominated deployment: losses are expensive.
    pub fn accuracy_first() -> Self {
        CostWeights {
            dummy: 0.2,
            lost: 5.0,
        }
    }
}

/// Expected per-round cost of a mechanism at a working point.
///
/// # Errors
///
/// Propagates [`FdpError`] from the distribution computation.
pub fn expected_cost(
    mechanism: &FdpMechanism,
    k_union: u64,
    k_max: u64,
    weights: &CostWeights,
) -> Result<f64, FdpError> {
    Ok(weights.dummy * mechanism.expected_dummies(k_union, k_max)?
        + weights.lost * mechanism.expected_lost(k_union, k_max)?)
}

/// The result of a shape search.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeRecommendation {
    /// The winning shape.
    pub shape: YShape,
    /// Its expected cost at the working point.
    pub cost: f64,
    /// The expected dummy/lost split at the working point.
    pub expected_dummies: f64,
    /// Expected lost entries.
    pub expected_lost: f64,
}

/// Searches the standard shape families (uniform, `pow(p)` over a grid,
/// `square[lo, 1]` over a grid, delta-at-K) and returns the cheapest for
/// the given ε, working point, and cost weights.
///
/// # Errors
///
/// Propagates [`FdpError`] (invalid ε or working point).
pub fn recommend_shape(
    epsilon: f64,
    k_union: u64,
    k_max: u64,
    weights: &CostWeights,
) -> Result<ShapeRecommendation, FdpError> {
    let mut candidates: Vec<YShape> = vec![YShape::Uniform, YShape::DeltaAtK];
    for p in [0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
        candidates.push(YShape::Pow { exponent: p });
    }
    for lo in [0.1, 0.25, 0.5, 0.75] {
        // Only admissible if the window can still contain k_union-ish
        // values; the window itself is public.
        candidates.push(YShape::Square {
            lo_frac: lo,
            hi_frac: 1.0,
        });
    }

    let mut best: Option<ShapeRecommendation> = None;
    for shape in candidates {
        if !shape.is_satisfiable(k_max) {
            continue;
        }
        let mech = FdpMechanism::new(epsilon, shape.clone())?;
        // Square shapes can make the PDF unsatisfiable only if all-zero,
        // handled above; cost may still be huge, which the comparison
        // handles naturally.
        let cost = match expected_cost(&mech, k_union, k_max, weights) {
            Ok(c) => c,
            Err(FdpError::UnsatisfiableShape) => continue,
            Err(e) => return Err(e),
        };
        let rec = ShapeRecommendation {
            expected_dummies: mech.expected_dummies(k_union, k_max)?,
            expected_lost: mech.expected_lost(k_union, k_max)?,
            shape,
            cost,
        };
        match &best {
            None => best = Some(rec),
            Some(b) if rec.cost < b.cost => best = Some(rec),
            _ => {}
        }
    }
    best.ok_or(FdpError::UnsatisfiableShape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_cost_combines_both_terms() {
        let mech = FdpMechanism::new(1.0, YShape::Uniform).expect("valid");
        let d = mech.expected_dummies(30, 100).expect("valid");
        let l = mech.expected_lost(30, 100).expect("valid");
        let c = expected_cost(
            &mech,
            30,
            100,
            &CostWeights {
                dummy: 2.0,
                lost: 3.0,
            },
        )
        .expect("valid");
        assert!((c - (2.0 * d + 3.0 * l)).abs() < 1e-9);
    }

    #[test]
    fn accuracy_first_prefers_upward_bias() {
        // When losses are expensive, the recommendation must lose less
        // than the uniform shape does.
        let rec = recommend_shape(0.5, 30, 100, &CostWeights::accuracy_first()).expect("found");
        let uniform = FdpMechanism::new(0.5, YShape::Uniform).expect("valid");
        let uniform_lost = uniform.expected_lost(30, 100).expect("valid");
        assert!(
            rec.expected_lost < uniform_lost,
            "recommended {:?} loses {} vs uniform {}",
            rec.shape,
            rec.expected_lost,
            uniform_lost
        );
    }

    #[test]
    fn performance_first_avoids_delta() {
        // When dummies are expensive, always-read-K is the worst choice.
        let rec = recommend_shape(0.5, 30, 100, &CostWeights::performance_first()).expect("found");
        assert_ne!(rec.shape, YShape::DeltaAtK);
        let delta = FdpMechanism::new(0.5, YShape::DeltaAtK).expect("valid");
        let delta_cost =
            expected_cost(&delta, 30, 100, &CostWeights::performance_first()).expect("valid");
        assert!(rec.cost < delta_cost);
    }

    #[test]
    fn extreme_lost_cost_approaches_strawman1() {
        // With astronomically expensive losses, delta-at-K (never lose)
        // wins — Observation 4's degenerate corner.
        let rec = recommend_shape(
            0.5,
            30,
            100,
            &CostWeights {
                dummy: 1e-6,
                lost: 1e9,
            },
        )
        .expect("found");
        assert!(rec.expected_lost < 1e-6, "{:?}", rec);
    }

    #[test]
    fn recommendation_is_consistent() {
        let w = CostWeights {
            dummy: 1.0,
            lost: 1.0,
        };
        let rec = recommend_shape(1.0, 50, 200, &w).expect("found");
        // Recomputing the winner's cost matches.
        let mech = FdpMechanism::new(1.0, rec.shape.clone()).expect("valid");
        let cost = expected_cost(&mech, 50, 200, &w).expect("valid");
        assert!((cost - rec.cost).abs() < 1e-9);
    }
}
