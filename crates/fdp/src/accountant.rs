//! Privacy accounting: group privacy and protection modes (paper §3.1).
//!
//! ε-FDP hides one feature value. Hiding `n` values *simultaneously* —
//! which also hides the **number** of values a user has, after padding
//! everyone to exactly `n` real-or-dummy values — costs a factor of `n`
//! by DP group privacy: the round must run with per-value budget `ε/n`.

use serde::{Deserialize, Serialize};

/// What the round protects (the two modes evaluated in Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProtectionMode {
    /// Hide each individual feature value ("hide priv val").
    HideValue,
    /// Hide the number of feature values by padding every user to
    /// `padded_count` values and protecting all of them as a group
    /// ("hide # of priv vals").
    HideValueCount {
        /// Every user is padded/subsampled to exactly this many values
        /// (the paper uses 100).
        padded_count: u32,
    },
}

impl ProtectionMode {
    /// The paper's "hide # of priv vals" configuration (n = 100).
    pub fn hide_count_paper() -> Self {
        ProtectionMode::HideValueCount { padded_count: 100 }
    }

    /// The group size this mode must protect simultaneously.
    pub fn group_size(&self) -> u32 {
        match self {
            ProtectionMode::HideValue => 1,
            ProtectionMode::HideValueCount { padded_count } => *padded_count,
        }
    }

    /// The mechanism ε to run with so the *user-facing* guarantee is
    /// `target_epsilon`: group privacy divides the budget by the group
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if the padded count is zero.
    pub fn mechanism_epsilon(&self, target_epsilon: f64) -> f64 {
        let n = self.group_size();
        assert!(n > 0, "group size must be positive");
        target_epsilon / n as f64
    }
}

/// Tracks the ε-FDP guarantee across a training run.
///
/// Within a round, chunks compose in parallel (free); across rounds, the
/// same feature value can participate repeatedly, and the accountant
/// reports both the per-round guarantee and the naive sequential
/// composition over rounds (the conservative bound the paper's framework
/// inherits from DP).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FdpAccountant {
    per_round: Vec<f64>,
    /// Cached Σ εᵢ, maintained on every accepted record so
    /// [`total_epsilon`](Self::total_epsilon) is O(1) instead of re-summing
    /// the whole history on every ledger publish.
    #[serde(default)]
    total: f64,
    /// Rounds whose ε was rejected as ill-formed (NaN or negative).
    #[serde(default)]
    poisoned: u64,
}

impl FdpAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed round run at `epsilon` (user-facing value,
    /// i.e. after any group-privacy scaling). Returns `true` if the value
    /// was accepted into the ledger.
    ///
    /// An ill-formed ε (NaN or negative) is **rejected** and counted in
    /// [`poisoned_rounds`](Self::poisoned_rounds) instead: admitting one
    /// NaN would silently corrupt the cumulative total forever, and a
    /// negative ε has no privacy meaning. `+∞` is legal — it is exactly
    /// the honest ledger entry for a no-privacy round — and saturates the
    /// total at `+∞` from then on.
    pub fn record_round(&mut self, epsilon: f64) -> bool {
        if epsilon.is_nan() || epsilon < 0.0 {
            self.poisoned += 1;
            return false;
        }
        self.per_round.push(epsilon);
        // Both operands are non-negative, so the sum cannot produce NaN;
        // overflow saturates to +∞, which is the correct reading.
        self.total += epsilon;
        true
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.per_round.len()
    }

    /// Number of rejected (NaN/negative ε) record attempts.
    pub fn poisoned_rounds(&self) -> u64 {
        self.poisoned
    }

    /// The strongest (smallest) per-round guarantee seen.
    pub fn best_round_epsilon(&self) -> Option<f64> {
        self.per_round.iter().copied().fold(None, |acc, e| {
            Some(match acc {
                None => e,
                Some(a) => a.min(e),
            })
        })
    }

    /// The weakest (largest) per-round guarantee seen.
    pub fn worst_round_epsilon(&self) -> Option<f64> {
        self.per_round.iter().copied().fold(None, |acc, e| {
            Some(match acc {
                None => e,
                Some(a) => a.max(e),
            })
        })
    }

    /// The per-round ε history, oldest first (the checkpoint path persists
    /// this verbatim so a restored accountant reports identical bounds).
    pub fn per_round(&self) -> &[f64] {
        &self.per_round
    }

    /// Reconstructs an accountant from persisted state: the full per-round
    /// history plus the poisoned-round count. The cached total is re-derived
    /// from the history, so a checkpoint cannot smuggle in an inconsistent
    /// total. Ill-formed entries (NaN/negative) are rejected exactly as
    /// [`record_round`](Self::record_round) would reject them, which keeps
    /// restoration conservative: it can only add to `poisoned`.
    pub fn from_state(per_round: &[f64], poisoned: u64) -> Self {
        let mut a = FdpAccountant {
            per_round: Vec::with_capacity(per_round.len()),
            total: 0.0,
            poisoned,
        };
        for &e in per_round {
            a.record_round(e);
        }
        a
    }

    /// Sequential composition over all recorded rounds: Σ εᵢ. A feature
    /// value that participates in every round is protected at this level
    /// overall (basic composition; tighter accountants are orthogonal).
    ///
    /// O(1): returns the running total maintained by
    /// [`record_round`](Self::record_round).
    pub fn total_epsilon(&self) -> f64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hide_value_group_is_one() {
        assert_eq!(ProtectionMode::HideValue.group_size(), 1);
        assert_eq!(ProtectionMode::HideValue.mechanism_epsilon(1.0), 1.0);
    }

    #[test]
    fn hide_count_scales_epsilon() {
        let m = ProtectionMode::hide_count_paper();
        assert_eq!(m.group_size(), 100);
        assert!((m.mechanism_epsilon(1.0) - 0.01).abs() < 1e-12);
        assert!((m.mechanism_epsilon(0.1) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn accountant_tracks_rounds() {
        let mut a = FdpAccountant::new();
        assert_eq!(a.rounds(), 0);
        assert!(a.best_round_epsilon().is_none());
        a.record_round(1.0);
        a.record_round(0.1);
        a.record_round(0.5);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.best_round_epsilon(), Some(0.1));
        assert_eq!(a.worst_round_epsilon(), Some(1.0));
        assert!((a.total_epsilon() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn cached_total_matches_resum() {
        let mut a = FdpAccountant::new();
        for i in 0..1000 {
            assert!(a.record_round(0.001 * i as f64));
        }
        let resum: f64 = (0..1000).map(|i| 0.001 * i as f64).sum();
        assert_eq!(a.total_epsilon(), resum);
    }

    #[test]
    fn poisoned_epsilon_rejected_not_absorbed() {
        let mut a = FdpAccountant::new();
        assert!(a.record_round(0.5));
        assert!(!a.record_round(f64::NAN));
        assert!(!a.record_round(-1.0));
        assert_eq!(a.rounds(), 1);
        assert_eq!(a.poisoned_rounds(), 2);
        assert_eq!(a.total_epsilon(), 0.5);
        assert!(!a.total_epsilon().is_nan());
    }

    #[test]
    fn infinite_epsilon_is_legal_and_saturates() {
        let mut a = FdpAccountant::new();
        assert!(a.record_round(f64::INFINITY));
        assert!(a.record_round(1.0));
        assert_eq!(a.rounds(), 2);
        assert_eq!(a.total_epsilon(), f64::INFINITY);
        assert_eq!(a.poisoned_rounds(), 0);
    }

    #[test]
    fn from_state_rebuilds_total_and_history() {
        let mut a = FdpAccountant::new();
        a.record_round(0.5);
        a.record_round(0.25);
        assert!(!a.record_round(f64::NAN));
        let b = FdpAccountant::from_state(a.per_round(), a.poisoned_rounds());
        assert_eq!(b, a);
        assert_eq!(b.total_epsilon(), a.total_epsilon());
        // A tampered history cannot smuggle NaN into the total.
        let c = FdpAccountant::from_state(&[0.5, f64::NAN], 0);
        assert_eq!(c.rounds(), 1);
        assert_eq!(c.poisoned_rounds(), 1);
        assert_eq!(c.total_epsilon(), 0.5);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let mut a = FdpAccountant::new();
        assert!(a.record_round(f64::MAX));
        assert!(a.record_round(f64::MAX));
        assert_eq!(a.total_epsilon(), f64::INFINITY);
        assert!(!a.total_epsilon().is_nan());
    }
}
