//! The `Y` shape: the public prior over access counts (Figure 3).
//!
//! `Y_i` weights the exponential mechanism's preference for reading `i`
//! entries. A shape biased toward large `i` ("pow", "delta at K") trades
//! performance for accuracy (more dummies, fewer losses — Observation 3);
//! `Y = delta(K)` recovers the vanilla ORAM (Strawman 1, Observation 4).

use serde::{Deserialize, Serialize};

/// The `Y_i` weight shape over `1 ≤ i ≤ K`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum YShape {
    /// `Y_i = 1` for all `i` (Figure 3 a, c, e).
    Uniform,
    /// `Y_i = 1` for `lo ≤ i ≤ hi` (fractions of `K`), else 0
    /// (Figure 3 b uses `[0.25, 1.0]`).
    Square {
        /// Lower bound as a fraction of `K` (inclusive).
        lo_frac: f64,
        /// Upper bound as a fraction of `K` (inclusive).
        hi_frac: f64,
    },
    /// `Y_i = i^p` (Figure 3 d uses `p = 5`).
    Pow {
        /// The exponent `p`.
        exponent: f64,
    },
    /// `Y_i = 1` only at `i = K` (Figure 3 f — Strawman 1 / vanilla ORAM).
    DeltaAtK,
    /// Explicit per-`i` weights; index 0 corresponds to `i = 1`. Entries
    /// beyond the table are treated as 0.
    Custom(Vec<f64>),
}

impl YShape {
    /// The natural log of `Y_i` for a batch of `k_max = K` requests.
    /// Returns `f64::NEG_INFINITY` where `Y_i = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `1..=k_max`.
    pub fn ln_weight(&self, i: u64, k_max: u64) -> f64 {
        assert!(i >= 1 && i <= k_max, "i={i} outside 1..={k_max}");
        match self {
            YShape::Uniform => 0.0,
            YShape::Square { lo_frac, hi_frac } => {
                let lo = (lo_frac * k_max as f64).floor() as u64;
                let hi = (hi_frac * k_max as f64).ceil() as u64;
                if i >= lo.max(1) && i <= hi.min(k_max) {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            }
            YShape::Pow { exponent } => exponent * (i as f64).ln(),
            YShape::DeltaAtK => {
                if i == k_max {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            }
            YShape::Custom(table) => {
                let w = table.get((i - 1) as usize).copied().unwrap_or(0.0);
                if w > 0.0 {
                    w.ln()
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
    }

    /// Whether the shape admits at least one `i` with positive weight.
    pub fn is_satisfiable(&self, k_max: u64) -> bool {
        (1..=k_max).any(|i| self.ln_weight(i, k_max).is_finite())
    }

    /// The Figure 3(d) shape: `Y_i = i⁵`.
    pub fn pow5() -> Self {
        YShape::Pow { exponent: 5.0 }
    }

    /// The Figure 3(b) shape: `Y_i = 1` for `K/4 ≤ i ≤ K`.
    pub fn square_upper_three_quarters() -> Self {
        YShape::Square {
            lo_frac: 0.25,
            hi_frac: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_flat() {
        for i in 1..=10 {
            assert_eq!(YShape::Uniform.ln_weight(i, 10), 0.0);
        }
    }

    #[test]
    fn square_masks_outside() {
        let s = YShape::Square {
            lo_frac: 0.25,
            hi_frac: 1.0,
        };
        assert!(s.ln_weight(24, 100).is_infinite());
        assert_eq!(s.ln_weight(25, 100), 0.0);
        assert_eq!(s.ln_weight(100, 100), 0.0);
    }

    #[test]
    fn pow_increases() {
        let s = YShape::pow5();
        assert!(s.ln_weight(2, 100) < s.ln_weight(50, 100));
        assert!((s.ln_weight(10, 100) - 5.0 * 10f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn delta_only_at_k() {
        let s = YShape::DeltaAtK;
        assert!(s.ln_weight(99, 100).is_infinite());
        assert_eq!(s.ln_weight(100, 100), 0.0);
    }

    #[test]
    fn custom_table() {
        let s = YShape::Custom(vec![0.0, 2.0, 0.5]);
        assert!(s.ln_weight(1, 5).is_infinite());
        assert!((s.ln_weight(2, 5) - 2f64.ln()).abs() < 1e-12);
        assert!((s.ln_weight(3, 5) - 0.5f64.ln()).abs() < 1e-12);
        assert!(s.ln_weight(4, 5).is_infinite(), "beyond table is zero");
    }

    #[test]
    fn satisfiability() {
        assert!(YShape::Uniform.is_satisfiable(1));
        assert!(YShape::DeltaAtK.is_satisfiable(5));
        assert!(!YShape::Custom(vec![0.0, 0.0]).is_satisfiable(2));
    }

    #[test]
    #[should_panic]
    fn out_of_range_i_panics() {
        YShape::Uniform.ln_weight(0, 10);
    }
}
