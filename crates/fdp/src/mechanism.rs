//! The ε-FDP exponential mechanism over access counts (paper §3.3, Eq. 3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::shape::YShape;

/// Errors from mechanism construction or use.
#[derive(Clone, Debug, PartialEq)]
pub enum FdpError {
    /// ε must be non-negative (∞ is allowed and means "no privacy").
    NegativeEpsilon(f64),
    /// The shape assigns zero weight everywhere — no `k` can be sampled.
    UnsatisfiableShape,
    /// `k_union` must lie in `1..=K`.
    BadKUnion {
        /// The offending `k_union`.
        k_union: u64,
        /// The batch size `K`.
        k_max: u64,
    },
}

impl core::fmt::Display for FdpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FdpError::NegativeEpsilon(e) => write!(f, "epsilon {e} is negative"),
            FdpError::UnsatisfiableShape => f.write_str("Y shape has zero weight everywhere"),
            FdpError::BadKUnion { k_union, k_max } => {
                write!(f, "k_union {k_union} outside 1..={k_max}")
            }
        }
    }
}

impl std::error::Error for FdpError {}

/// The ε-FDP sampler for the number of main-ORAM accesses `k`.
///
/// `epsilon = f64::INFINITY` degenerates to always choosing `k = k_union`
/// (Strawman 2); `YShape::DeltaAtK` degenerates to always choosing `k = K`
/// (Strawman 1, where ε may be 0 for perfect FDP).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FdpMechanism {
    epsilon: f64,
    shape: YShape,
}

impl FdpMechanism {
    /// Creates a mechanism.
    ///
    /// # Errors
    ///
    /// [`FdpError::NegativeEpsilon`] for `epsilon < 0`.
    pub fn new(epsilon: f64, shape: YShape) -> Result<Self, FdpError> {
        if epsilon < 0.0 || epsilon.is_nan() {
            return Err(FdpError::NegativeEpsilon(epsilon));
        }
        Ok(FdpMechanism { epsilon, shape })
    }

    /// The vanilla-ORAM configuration (Strawman 1): always `k = K`,
    /// perfect FDP (ε = 0).
    pub fn vanilla() -> Self {
        FdpMechanism {
            epsilon: 0.0,
            shape: YShape::DeltaAtK,
        }
    }

    /// The no-privacy configuration (Strawman 2): always `k = k_union`.
    pub fn no_privacy() -> Self {
        FdpMechanism {
            epsilon: f64::INFINITY,
            shape: YShape::Uniform,
        }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured shape.
    pub fn shape(&self) -> &YShape {
        &self.shape
    }

    /// The PDF of `k` over `1..=K` given the secret `k_union` (Eq. 3),
    /// computed in log-space for numerical stability at large `K`.
    ///
    /// # Errors
    ///
    /// [`FdpError::BadKUnion`] / [`FdpError::UnsatisfiableShape`].
    pub fn pdf(&self, k_union: u64, k_max: u64) -> Result<Vec<f64>, FdpError> {
        if k_union < 1 || k_union > k_max {
            return Err(FdpError::BadKUnion { k_union, k_max });
        }
        if self.epsilon.is_infinite() {
            // Degenerate point mass at k_union.
            let mut p = vec![0.0; k_max as usize];
            p[(k_union - 1) as usize] = 1.0;
            return Ok(p);
        }
        let mut ln_p = Vec::with_capacity(k_max as usize);
        let mut max_ln = f64::NEG_INFINITY;
        for i in 1..=k_max {
            let lw = self.shape.ln_weight(i, k_max);
            let v = lw - self.epsilon * (k_union as f64 - i as f64).abs() / 2.0;
            if v > max_ln {
                max_ln = v;
            }
            ln_p.push(v);
        }
        if max_ln.is_infinite() {
            return Err(FdpError::UnsatisfiableShape);
        }
        let mut p: Vec<f64> = ln_p.into_iter().map(|v| (v - max_ln).exp()).collect();
        let total: f64 = p.iter().sum();
        for v in &mut p {
            *v /= total;
        }
        Ok(p)
    }

    /// Samples `k` from the PDF.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are invalid (see [`pdf`](Self::pdf)) — the
    /// controller validates `k_union` structurally before sampling.
    pub fn sample_k<R: Rng>(&self, k_union: u64, k_max: u64, rng: &mut R) -> u64 {
        let p = self.pdf(k_union, k_max).expect("valid mechanism inputs");
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (idx, &prob) in p.iter().enumerate() {
            acc += prob;
            if u < acc {
                return idx as u64 + 1;
            }
        }
        k_max // floating-point residue: the tail belongs to the last bucket
    }

    /// Expected number of dummy accesses `E[max(0, k − k_union)]`.
    ///
    /// # Errors
    ///
    /// As for [`pdf`](Self::pdf).
    pub fn expected_dummies(&self, k_union: u64, k_max: u64) -> Result<f64, FdpError> {
        let p = self.pdf(k_union, k_max)?;
        Ok(p.iter()
            .enumerate()
            .map(|(idx, &prob)| prob * ((idx as f64 + 1.0) - k_union as f64).max(0.0))
            .sum())
    }

    /// Expected number of lost entries `E[max(0, k_union − k)]`.
    ///
    /// # Errors
    ///
    /// As for [`pdf`](Self::pdf).
    pub fn expected_lost(&self, k_union: u64, k_max: u64) -> Result<f64, FdpError> {
        let p = self.pdf(k_union, k_max)?;
        Ok(p.iter()
            .enumerate()
            .map(|(idx, &prob)| prob * (k_union as f64 - (idx as f64 + 1.0)).max(0.0))
            .sum())
    }

    /// The worst-case log-ratio `max_i |ln p_i(k_union) − ln p_i(k_union′)|`
    /// between neighboring inputs — the quantity the ε-FDP proof bounds by
    /// ε. Exposed for tests and the privacy-audit example.
    ///
    /// # Errors
    ///
    /// As for [`pdf`](Self::pdf).
    pub fn worst_case_log_ratio(
        &self,
        k_union: u64,
        k_union_neighbor: u64,
        k_max: u64,
    ) -> Result<f64, FdpError> {
        let p = self.pdf(k_union, k_max)?;
        let q = self.pdf(k_union_neighbor, k_max)?;
        let mut worst = 0.0f64;
        for (a, b) in p.iter().zip(q.iter()) {
            if *a > 0.0 && *b > 0.0 {
                worst = worst.max((a.ln() - b.ln()).abs());
            } else if (*a > 0.0) != (*b > 0.0) {
                return Ok(f64::INFINITY);
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn pdf_normalizes() {
        let m = FdpMechanism::new(1.0, YShape::Uniform).unwrap();
        let p = m.pdf(30, 100).unwrap();
        assert_eq!(p.len(), 100);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_peaks_at_k_union() {
        let m = FdpMechanism::new(2.0, YShape::Uniform).unwrap();
        let p = m.pdf(30, 100).unwrap();
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as u64
            + 1;
        assert_eq!(argmax, 30);
    }

    #[test]
    fn strawman1_always_reads_k() {
        let m = FdpMechanism::vanilla();
        let mut r = rng();
        for ku in [1u64, 30, 100] {
            assert_eq!(m.sample_k(ku, 100, &mut r), 100);
        }
        // And its distribution is input-independent: perfect FDP.
        assert_eq!(m.worst_case_log_ratio(30, 31, 100).unwrap(), 0.0);
    }

    #[test]
    fn strawman2_always_reads_k_union() {
        let m = FdpMechanism::no_privacy();
        let mut r = rng();
        assert_eq!(m.sample_k(30, 100, &mut r), 30);
        assert_eq!(m.sample_k(99, 100, &mut r), 99);
        // And it leaks unboundedly.
        assert_eq!(m.worst_case_log_ratio(30, 31, 100).unwrap(), f64::INFINITY);
    }

    #[test]
    fn ratio_bound_holds_uniform() {
        for eps in [0.1, 0.5, 1.0, 3.0] {
            let m = FdpMechanism::new(eps, YShape::Uniform).unwrap();
            for ku in [2u64, 30, 99] {
                let r = m.worst_case_log_ratio(ku, ku + 1, 100).unwrap();
                assert!(r <= eps + 1e-9, "eps={eps} ku={ku} ratio={r}");
            }
        }
    }

    #[test]
    fn ratio_bound_holds_pow_and_square() {
        for shape in [YShape::pow5(), YShape::square_upper_three_quarters()] {
            let m = FdpMechanism::new(0.5, shape).unwrap();
            for ku in [26u64, 50, 99] {
                let r = m.worst_case_log_ratio(ku, ku + 1, 100).unwrap();
                assert!(r <= 0.5 + 1e-9, "ku={ku} ratio={r}");
            }
        }
    }

    #[test]
    fn smaller_epsilon_spreads_distribution() {
        let tight = FdpMechanism::new(3.0, YShape::Uniform).unwrap();
        let loose = FdpMechanism::new(0.3, YShape::Uniform).unwrap();
        let pt = tight.pdf(30, 100).unwrap();
        let pl = loose.pdf(30, 100).unwrap();
        assert!(pt[29] > pl[29], "tight puts more mass on k_union");
        assert!(
            tight.expected_dummies(30, 100).unwrap() < loose.expected_dummies(30, 100).unwrap()
        );
    }

    #[test]
    fn pow_shape_biases_toward_dummies() {
        // Observation 3: pow trades accuracy losses for dummy accesses.
        let uni = FdpMechanism::new(0.5, YShape::Uniform).unwrap();
        let pow = FdpMechanism::new(0.5, YShape::pow5()).unwrap();
        let lost_uni = uni.expected_lost(30, 100).unwrap();
        let lost_pow = pow.expected_lost(30, 100).unwrap();
        let dum_uni = uni.expected_dummies(30, 100).unwrap();
        let dum_pow = pow.expected_dummies(30, 100).unwrap();
        assert!(
            lost_pow < lost_uni,
            "pow loses less: {lost_pow} vs {lost_uni}"
        );
        assert!(dum_pow > dum_uni, "pow pads more: {dum_pow} vs {dum_uni}");
    }

    #[test]
    fn sampling_matches_pdf() {
        let m = FdpMechanism::new(1.0, YShape::Uniform).unwrap();
        let mut r = rng();
        let n = 20_000;
        let mut histo = vec![0u64; 100];
        for _ in 0..n {
            histo[(m.sample_k(30, 100, &mut r) - 1) as usize] += 1;
        }
        let p = m.pdf(30, 100).unwrap();
        for i in 0..100 {
            let expected = p[i] * n as f64;
            if expected > 50.0 {
                let got = histo[i] as f64;
                assert!(
                    (got - expected).abs() < 6.0 * expected.sqrt(),
                    "bin {i}: got {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(matches!(
            FdpMechanism::new(-1.0, YShape::Uniform),
            Err(FdpError::NegativeEpsilon(_))
        ));
        let m = FdpMechanism::new(1.0, YShape::Uniform).unwrap();
        assert!(matches!(m.pdf(0, 10), Err(FdpError::BadKUnion { .. })));
        assert!(matches!(m.pdf(11, 10), Err(FdpError::BadKUnion { .. })));
        let dead = FdpMechanism::new(1.0, YShape::Custom(vec![0.0; 5])).unwrap();
        assert_eq!(dead.pdf(3, 5), Err(FdpError::UnsatisfiableShape));
    }

    #[test]
    fn large_k_numerically_stable() {
        let m = FdpMechanism::new(1.0, YShape::Uniform).unwrap();
        let p = m.pdf(500_000, 1_000_000).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// The core ε-FDP guarantee, as a property over random configs.
        #[test]
        fn dp_ratio_bound(eps in 0.05f64..4.0, ku in 2u64..99, pow in 0.0f64..4.0) {
            let m = FdpMechanism::new(eps, YShape::Pow { exponent: pow }).unwrap();
            let r = m.worst_case_log_ratio(ku, ku + 1, 100).unwrap();
            prop_assert!(r <= eps + 1e-9, "ratio {r} exceeds eps {eps}");
            let r2 = m.worst_case_log_ratio(ku, ku - 1, 100).unwrap();
            prop_assert!(r2 <= eps + 1e-9);
        }

        #[test]
        fn sampled_k_in_range(eps in 0.05f64..4.0, ku in 1u64..100, seed: u64) {
            let m = FdpMechanism::new(eps, YShape::Uniform).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let k = m.sample_k(ku, 100, &mut rng);
            prop_assert!((1..=100).contains(&k));
        }
    }
}
