//! Chunked processing of large request batches (paper §4.2).
//!
//! The oblivious union is `O(K²)`; for large `K` the controller splits the
//! requests into evenly-sized chunks and runs steps ①–③ per chunk. The
//! chunks partition the input, so by **parallel composition** of DP the
//! round still satisfies ε-FDP with the same ε (a feature value influences
//! exactly one chunk's `k_union`). The costs: per-chunk noise accumulates
//! (accuracy), and duplicates across chunks are re-read (performance).

use serde::{Deserialize, Serialize};

/// A plan for splitting `K` requests into chunks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPlan {
    chunk_size: usize,
}

impl ChunkPlan {
    /// The chunk size used by the paper's evaluation: 16 Ki requests.
    pub const PAPER_DEFAULT: usize = 16 * 1024;

    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkPlan { chunk_size }
    }

    /// The paper's default plan (16 Ki-request chunks).
    pub fn paper_default() -> Self {
        Self::new(Self::PAPER_DEFAULT)
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks for a batch of `k` requests.
    pub fn num_chunks(&self, k: usize) -> usize {
        k.div_ceil(self.chunk_size)
    }

    /// Splits a request slice into chunks.
    pub fn split<'a, T>(&self, requests: &'a [T]) -> impl Iterator<Item = &'a [T]> {
        requests.chunks(self.chunk_size)
    }

    /// The per-round ε when each chunk is noised with `per_chunk_epsilon`:
    /// identical, by parallel composition (chunks partition the input and
    /// any single feature value lands in exactly one chunk).
    pub fn round_epsilon(&self, per_chunk_epsilon: f64) -> f64 {
        per_chunk_epsilon
    }
}

impl Default for ChunkPlan {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_16k() {
        assert_eq!(ChunkPlan::paper_default().chunk_size(), 16384);
    }

    #[test]
    fn num_chunks_rounds_up() {
        let p = ChunkPlan::new(10);
        assert_eq!(p.num_chunks(0), 0);
        assert_eq!(p.num_chunks(1), 1);
        assert_eq!(p.num_chunks(10), 1);
        assert_eq!(p.num_chunks(11), 2);
        assert_eq!(p.num_chunks(100), 10);
    }

    #[test]
    fn split_partitions() {
        let p = ChunkPlan::new(4);
        let data: Vec<u64> = (0..10).collect();
        let chunks: Vec<&[u64]> = p.split(&data).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2, 3]);
        assert_eq!(chunks[2], &[8, 9]);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn parallel_composition_is_free() {
        assert_eq!(ChunkPlan::new(100).round_epsilon(1.0), 1.0);
    }
}
