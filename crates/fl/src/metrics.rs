//! Model-quality metrics: ROC-AUC (the paper's Table 1 metric).

/// Computes the area under the ROC curve from `(score, label)` pairs.
///
/// Uses the rank-statistic (Mann–Whitney U) formulation with midrank tie
/// handling, which is exact and `O(n log n)`.
///
/// Returns 0.5 when either class is absent (no ranking information).
///
/// # Example
///
/// ```
/// use fedora_fl::metrics::roc_auc;
/// let auc = roc_auc(&[(0.9, true), (0.8, false), (0.7, true), (0.1, false)]);
/// assert!((auc - 0.75).abs() < 1e-9);
/// ```
pub fn roc_auc(scored: &[(f32, bool)]) -> f64 {
    let pos = scored.iter().filter(|(_, l)| *l).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores must not be NaN"));

    // Midranks over ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            j += 1;
        }
        // Ranks i+1 ..= j (1-based); midrank:
        let midrank = (i + 1 + j) as f64 / 2.0;
        for item in &sorted[i..j] {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j;
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    (rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f)
}

/// Accuracy at a fixed 0.5 threshold (a secondary sanity metric).
pub fn accuracy(scored: &[(f32, bool)]) -> f64 {
    if scored.is_empty() {
        return 0.0;
    }
    let correct = scored.iter().filter(|(s, l)| (*s >= 0.5) == *l).count();
    correct as f64 / scored.len() as f64
}

/// Normalized entropy (NE): mean BCE divided by the entropy of the base
/// rate — the standard industrial CTR metric (< 1.0 beats predicting the
/// prior; lower is better). Returns `f64::NAN` when a class is absent.
pub fn normalized_entropy(scored: &[(f32, bool)]) -> f64 {
    let n = scored.len();
    if n == 0 {
        return f64::NAN;
    }
    let p = scored.iter().filter(|(_, l)| *l).count() as f64 / n as f64;
    if p == 0.0 || p == 1.0 {
        return f64::NAN;
    }
    let base = -(p * p.ln() + (1.0 - p) * (1.0 - p).ln());
    mean_bce(scored) / base
}

/// Expected calibration error over `bins` equal-width probability bins:
/// the mean |predicted − observed| positive rate, weighted by bin mass.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn calibration_error(scored: &[(f32, bool)], bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    if scored.is_empty() {
        return 0.0;
    }
    let mut sum_pred = vec![0.0f64; bins];
    let mut sum_label = vec![0.0f64; bins];
    let mut count = vec![0u32; bins];
    for (s, l) in scored {
        let b = ((*s as f64 * bins as f64) as usize).min(bins - 1);
        sum_pred[b] += *s as f64;
        sum_label[b] += *l as u8 as f64;
        count[b] += 1;
    }
    let n = scored.len() as f64;
    (0..bins)
        .filter(|&b| count[b] > 0)
        .map(|b| {
            let c = count[b] as f64;
            (c / n) * ((sum_pred[b] / c) - (sum_label[b] / c)).abs()
        })
        .sum()
}

/// Mean binary cross-entropy of probability scores.
pub fn mean_bce(scored: &[(f32, bool)]) -> f64 {
    if scored.is_empty() {
        return 0.0;
    }
    let total: f64 = scored
        .iter()
        .map(|(s, l)| {
            let p = (*s as f64).clamp(1e-7, 1.0 - 1e-7);
            if *l {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / scored.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let auc = roc_auc(&[(0.9, true), (0.8, true), (0.2, false), (0.1, false)]);
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking() {
        let auc = roc_auc(&[(0.1, true), (0.2, true), (0.8, false), (0.9, false)]);
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn random_ranking_is_half() {
        // All scores identical: AUC must be exactly 0.5 via midranks.
        let auc = roc_auc(&[(0.5, true), (0.5, false), (0.5, true), (0.5, false)]);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[(0.9, true), (0.3, true)]), 0.5);
        assert_eq!(roc_auc(&[(0.9, false)]), 0.5);
        assert_eq!(roc_auc(&[]), 0.5);
    }

    #[test]
    fn matches_bruteforce_pair_counting() {
        let data = [
            (0.1, false),
            (0.35, true),
            (0.2, false),
            (0.8, true),
            (0.35, false),
            (0.6, false),
            (0.7, true),
        ];
        // Brute force: P(score_pos > score_neg) + 0.5 P(tie).
        let mut wins = 0.0;
        let mut total = 0.0;
        for (sp, lp) in &data {
            if !lp {
                continue;
            }
            for (sn, ln) in &data {
                if *ln {
                    continue;
                }
                total += 1.0;
                if sp > sn {
                    wins += 1.0;
                } else if sp == sn {
                    wins += 0.5;
                }
            }
        }
        assert!((roc_auc(&data) - wins / total).abs() < 1e-12);
    }

    #[test]
    fn accuracy_threshold() {
        let acc = accuracy(&[(0.9, true), (0.4, false), (0.6, false), (0.2, true)]);
        assert!((acc - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[]), 0.0);
    }

    #[test]
    fn bce_prefers_confident_correct() {
        let good = mean_bce(&[(0.99, true), (0.01, false)]);
        let bad = mean_bce(&[(0.01, true), (0.99, false)]);
        assert!(good < bad);
    }

    #[test]
    fn ne_below_one_beats_the_prior() {
        // A well-calibrated informative model.
        let good = [(0.9f32, true), (0.9, true), (0.1, false), (0.1, false)];
        assert!(normalized_entropy(&good) < 1.0);
        // Predicting the prior exactly gives NE = 1.
        let prior = [(0.5f32, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((normalized_entropy(&prior) - 1.0).abs() < 1e-9);
        assert!(normalized_entropy(&[(0.5, true)]).is_nan());
    }

    #[test]
    fn calibration_error_detects_overconfidence() {
        // Perfectly calibrated 0.5 predictions.
        let calibrated = [(0.5f32, true), (0.5, false)];
        assert!(calibration_error(&calibrated, 10) < 1e-9);
        // Overconfident wrong predictions.
        let overconfident = [(0.95f32, false), (0.95, false)];
        assert!(calibration_error(&overconfident, 10) > 0.9);
        assert_eq!(calibration_error(&[], 10), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn auc_in_unit_interval(data in proptest::collection::vec((0.0f32..1.0, any::<bool>()), 0..100)) {
            let auc = roc_auc(&data);
            prop_assert!((0.0..=1.0).contains(&auc));
        }

        #[test]
        fn auc_invariant_to_monotone_transform(data in proptest::collection::vec((0.01f32..0.99, any::<bool>()), 2..60)) {
            let a = roc_auc(&data);
            let transformed: Vec<(f32, bool)> = data.iter().map(|(s, l)| (s * s, *l)).collect();
            let b = roc_auc(&transformed);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
