//! The reference (non-ORAM) federated-learning loop.
//!
//! This is conventional FedAvg over the full model — what an FL system
//! would do if privacy of the embedding accesses were not a concern. It
//! serves as (a) the `pub` baseline of Table 1 (run with
//! `use_private_history = false`), and (b) the correctness reference the
//! FEDORA pipeline (in the `fedora` crate) is validated against: with
//! ε = ∞ the two must produce near-identical training trajectories.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::client::LocalTrainer;
use crate::datasets::Dataset;
use crate::metrics::roc_auc;
use crate::model::DlrmModel;
use crate::modes::{AggregationMode, FedAvg};

/// Configuration of the reference FL loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlSimConfig {
    /// Users selected per round.
    pub users_per_round: usize,
    /// Total training rounds.
    pub rounds: usize,
    /// Server learning rate η applied to `Post(Σ Pre(Δθ))`.
    pub server_lr: f32,
    /// Local trainer settings.
    pub trainer: LocalTrainer,
    /// Worker threads for the per-client training fan-out. Results are
    /// merged in client-index order, so any value is bit-identical to the
    /// serial run; 1 (the default) spawns no threads.
    pub threads: usize,
}

impl Default for FlSimConfig {
    fn default() -> Self {
        FlSimConfig {
            users_per_round: 32,
            rounds: 40,
            server_lr: 2.0,
            trainer: LocalTrainer {
                lr: 0.2,
                epochs: 2,
                ..Default::default()
            },
            threads: 1,
        }
    }
}

/// Runs conventional FedAvg and returns the test AUC after each round.
pub fn run_reference_fl<R: Rng>(
    model: &mut DlrmModel,
    dataset: &Dataset,
    config: &FlSimConfig,
    rng: &mut R,
) -> Vec<f64> {
    let mut mode = FedAvg;
    let mut aucs = Vec::with_capacity(config.rounds);
    let all_users: Vec<u32> = (0..dataset.users().len() as u32).collect();
    let pool = fedora_par::WorkerPool::new(config.threads);

    for _ in 0..config.rounds {
        let selected: Vec<u32> = all_users
            .choose_multiple(rng, config.users_per_round)
            .copied()
            .collect();

        // Local training is pure per-client compute: fan it out over the
        // pool (static partitioning) and merge in client-index order, so
        // every thread count aggregates in exactly the serial order.
        let global: &DlrmModel = model;
        let updates = pool.map(&selected, |_, &user| {
            let ud = dataset.user(user);
            config.trainer.train(global, &ud.train, &ud.history, None)
        });

        // Collect client updates.
        let mut dense_acc: Option<crate::model::DenseParams> = None;
        let mut attention_acc: Option<crate::linalg::Matrix> = None;
        let mut dense_weight = 0.0f64;
        // (id -> (sum, weight)) accumulators for both tables.
        let mut item_acc: std::collections::HashMap<u64, (Vec<f32>, f64)> = Default::default();
        let mut hist_acc: std::collections::HashMap<u64, (Vec<f32>, f64)> = Default::default();

        for update in updates {
            let Some(update) = update else {
                continue;
            };
            let n = update.n_samples;
            // Dense params: weighted FedAvg.
            let mut dd = update.dense_delta;
            // Scale by n (Pre), accumulate.
            let scale = n as f32;
            dd.w1.data_mut().iter_mut().for_each(|x| *x *= scale);
            dd.b1.iter_mut().for_each(|x| *x *= scale);
            dd.w2.iter_mut().for_each(|x| *x *= scale);
            dd.b2 *= scale;
            match &mut dense_acc {
                None => dense_acc = Some(dd),
                Some(acc) => acc.add_scaled(1.0, &dd),
            }
            if let Some(mut ad) = update.attention_delta {
                ad.data_mut().iter_mut().for_each(|x| *x *= scale);
                match &mut attention_acc {
                    None => attention_acc = Some(ad),
                    Some(acc) => acc.add_scaled(1.0, &ad),
                }
            }
            dense_weight += n as f64;

            for (id, mut g) in update.item_deltas {
                let w = mode.pre(&mut g, n);
                let entry = item_acc
                    .entry(id)
                    .or_insert_with(|| (vec![0.0; g.len()], 0.0));
                crate::linalg::axpy(1.0, &g, &mut entry.0);
                entry.1 += w;
            }
            for (id, mut g) in update.history_deltas {
                let w = mode.pre(&mut g, n);
                let entry = hist_acc
                    .entry(id)
                    .or_insert_with(|| (vec![0.0; g.len()], 0.0));
                crate::linalg::axpy(1.0, &g, &mut entry.0);
                entry.1 += w;
            }
        }

        // Server update.
        if let Some(mut acc) = dense_acc {
            let inv = (1.0 / dense_weight.max(1.0)) as f32;
            acc.w1.data_mut().iter_mut().for_each(|x| *x *= inv);
            acc.b1.iter_mut().for_each(|x| *x *= inv);
            acc.w2.iter_mut().for_each(|x| *x *= inv);
            acc.b2 *= inv;
            model.dense_mut().add_scaled(config.server_lr, &acc);
        }
        if let Some(mut acc) = attention_acc {
            let inv = (1.0 / dense_weight.max(1.0)) as f32;
            acc.data_mut().iter_mut().for_each(|x| *x *= inv);
            model.update_attention(config.server_lr, &acc);
        }
        for (id, (mut g, w)) in item_acc {
            mode.post(id, &mut g, w, rng);
            model.update_item_row(id, config.server_lr, &g);
        }
        for (id, (mut g, w)) in hist_acc {
            mode.post(id, &mut g, w, rng);
            model.update_history_row(id, config.server_lr, &g);
        }
        mode.on_round_end();

        aucs.push(evaluate_auc(model, dataset));
    }
    aucs
}

/// Evaluates the model's ROC-AUC on the dataset's test split.
pub fn evaluate_auc(model: &DlrmModel, dataset: &Dataset) -> f64 {
    let scored: Vec<(f32, bool)> = dataset
        .test()
        .iter()
        .map(|s| {
            let hist = &dataset.user(s.user).history;
            (
                model.forward_local(s.target_item, hist, s.dense).prob(),
                s.label,
            )
        })
        .collect();
    roc_auc(&scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::SyntheticConfig;
    use crate::model::{DlrmConfig, Pooling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dataset() -> Dataset {
        let mut cfg = SyntheticConfig::movielens_like();
        cfg.num_users = 96;
        cfg.num_items = 256;
        cfg.samples_per_user = 12;
        cfg.test_samples = 1200;
        Dataset::generate(cfg)
    }

    #[test]
    fn training_improves_auc_with_private_features() {
        let dataset = small_dataset();
        let mut rng = StdRng::seed_from_u64(21);
        let mut model = DlrmModel::new(
            DlrmConfig {
                num_items: 256,
                embedding_dim: 8,
                hidden_dim: 16,
                use_private_history: true,
                pooling: Pooling::Mean,
            },
            &mut rng,
        );
        let cfg = FlSimConfig {
            users_per_round: 24,
            ..Default::default()
        };
        let aucs = run_reference_fl(&mut model, &dataset, &cfg, &mut rng);
        let last = *aucs.last().unwrap();
        assert!(last > 0.62, "private-feature AUC too low: {last}");
        assert!(
            last > aucs[0] - 0.02,
            "training should not regress: {aucs:?}"
        );
    }

    #[test]
    fn private_features_beat_pub_baseline() {
        let dataset = small_dataset();
        let cfg = FlSimConfig {
            users_per_round: 24,
            ..Default::default()
        };

        let mut rng = StdRng::seed_from_u64(22);
        let mut private_model = DlrmModel::new(
            DlrmConfig {
                num_items: 256,
                embedding_dim: 8,
                hidden_dim: 16,
                use_private_history: true,
                pooling: Pooling::Mean,
            },
            &mut rng,
        );
        let auc_private = *run_reference_fl(&mut private_model, &dataset, &cfg, &mut rng)
            .last()
            .unwrap();

        let mut rng = StdRng::seed_from_u64(22);
        let mut pub_model = DlrmModel::new(
            DlrmConfig {
                num_items: 256,
                embedding_dim: 8,
                hidden_dim: 16,
                use_private_history: false,
                pooling: Pooling::Mean,
            },
            &mut rng,
        );
        let auc_pub = *run_reference_fl(&mut pub_model, &dataset, &cfg, &mut rng)
            .last()
            .unwrap();

        assert!(
            auc_private > auc_pub + 0.03,
            "private {auc_private} must beat pub {auc_pub} (Table 1's headline)"
        );
    }

    #[test]
    fn attention_pooling_trains_end_to_end() {
        let dataset = small_dataset();
        let mut rng = StdRng::seed_from_u64(24);
        let mut model = DlrmModel::new(
            DlrmConfig {
                num_items: 256,
                embedding_dim: 8,
                hidden_dim: 16,
                use_private_history: true,
                pooling: Pooling::Attention,
            },
            &mut rng,
        );
        let cfg = FlSimConfig {
            users_per_round: 24,
            rounds: 20,
            ..Default::default()
        };
        let aucs = run_reference_fl(&mut model, &dataset, &cfg, &mut rng);
        let last = *aucs.last().unwrap();
        assert!(last > 0.58, "attention model AUC too low: {last}");
    }

    #[test]
    fn evaluate_auc_runs_on_untrained_model() {
        let dataset = small_dataset();
        let mut rng = StdRng::seed_from_u64(23);
        let model = DlrmModel::new(DlrmConfig::tiny(256), &mut rng);
        let auc = evaluate_auc(&model, &dataset);
        assert!(
            (0.3..=0.7).contains(&auc),
            "untrained AUC should hover near 0.5: {auc}"
        );
    }
}
