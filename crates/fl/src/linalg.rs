//! Minimal dense linear algebra for the recommendation model.
//!
//! Row-major matrices over `f32`, plus the vector kernels the MLP's manual
//! backward pass needs. Deliberately tiny: the models here are small enough
//! that clarity beats BLAS.

/// A row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = W·x` (matrix–vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// `y = Wᵀ·x` (transposed matrix–vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &s) in x.iter().enumerate() {
            let row = self.row(r);
            for (yc, w) in y.iter_mut().zip(row) {
                *yc += w * s;
            }
        }
        y
    }

    /// Rank-1 update `W += α·u·vᵀ` (the gradient accumulation of a linear
    /// layer).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn add_outer(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "outer u dimension mismatch");
        assert_eq!(v.len(), self.cols, "outer v dimension mismatch");
        for (r, &ur) in u.iter().enumerate() {
            let base = r * self.cols;
            for (c, &vc) in v.iter().enumerate() {
                self.data[base + c] += alpha * ur * vc;
            }
        }
    }

    /// `W += α·G` element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f32, g: &Matrix) {
        assert_eq!((self.rows, self.cols), (g.rows, g.cols), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&g.data) {
            *a += alpha * b;
        }
    }
}

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `a += α·b` element-wise.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f32, b: &[f32], a: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "axpy dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Scales a vector in place.
pub fn scale(a: &mut [f32], alpha: f32) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// The ℓ₂ norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// The logistic sigmoid, numerically stable on both tails.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// ReLU.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU (subgradient 0 at 0).
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known() {
        let w = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32); // [[0,1,2],[3,4,5]]
        assert_eq!(w.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(w.matvec(&[1.0, 0.0, 0.0]), vec![0.0, 3.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let w = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(w.matvec_t(&[1.0, 0.0]), vec![0.0, 1.0, 2.0]);
        assert_eq!(w.matvec_t(&[0.0, 1.0]), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn outer_update() {
        let mut w = Matrix::zeros(2, 2);
        w.add_outer(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(w.get(0, 0), 6.0);
        assert_eq!(w.get(0, 1), 8.0);
        assert_eq!(w.get(1, 0), 3.0);
        assert_eq!(w.get(1, 1), 4.0);
    }

    #[test]
    fn add_scaled_matches_axpy() {
        let mut w = Matrix::zeros(1, 3);
        let g = Matrix::from_fn(1, 3, |_, c| c as f32);
        w.add_scaled(-0.5, &g);
        assert_eq!(w.data(), &[0.0, -0.5, -1.0]);
    }

    #[test]
    fn sigmoid_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn vector_ops() {
        let mut a = vec![1.0, 2.0];
        axpy(0.5, &[2.0, 4.0], &mut a);
        assert_eq!(a, vec![2.0, 4.0]);
        scale(&mut a, 0.25);
        assert_eq!(a, vec![0.5, 1.0]);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-7);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
