//! A DLRM-lite recommendation model with manual backprop.
//!
//! Architecture (a scaled-down [DLRM]): two embedding tables — the *public*
//! target-item table and the *private* behavioral-history table (the one
//! whose accesses FEDORA protects) — feed an MLP head:
//!
//! ```text
//! e_t = emb_item(target),  e_h = mean_j emb_hist(history_j)
//! x = [ e_t ‖ e_h ‖ ⟨e_t, e_h⟩ ‖ dense ]
//! logit = w2 · relu(W1·x + b1) + b2,   p = sigmoid(logit)
//! ```
//!
//! The explicit dot-product feature is DLRM's pairwise interaction term;
//! it is what lets the two tables learn a matrix-factorization-style
//! affinity instead of relying on the MLP to discover multiplication.
//!
//! trained with binary cross-entropy. The `pub` baseline of Table 1 is the
//! same model with the history branch zeroed (no private features).
//!
//! [DLRM]: https://arxiv.org/abs/1906.00091

use rand::Rng;

use crate::attention::{AttentionCache, AttentionPooling};
use crate::linalg::{dot, relu, relu_grad, sigmoid, Matrix};

/// How the history embeddings are pooled (§2.1's model family: mean
/// pooling for the classic DLRM shape, target-aware attention for the
/// DIN/Transformer-like end).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pooling {
    /// Unweighted mean of the history rows.
    #[default]
    Mean,
    /// DIN-style target-aware softmax attention
    /// ([`crate::attention::AttentionPooling`]).
    Attention,
}

/// Model hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DlrmConfig {
    /// Item-domain cardinality (height of both embedding tables).
    pub num_items: u64,
    /// Embedding dimension `d`.
    pub embedding_dim: usize,
    /// MLP hidden width.
    pub hidden_dim: usize,
    /// Whether the private history branch is used (`false` = the `pub`
    /// baseline that trains on non-private features only).
    pub use_private_history: bool,
    /// How history embeddings are pooled.
    pub pooling: Pooling,
}

impl DlrmConfig {
    /// A small config suitable for tests.
    pub fn tiny(num_items: u64) -> Self {
        DlrmConfig {
            num_items,
            embedding_dim: 8,
            hidden_dim: 16,
            use_private_history: true,
            pooling: Pooling::Mean,
        }
    }

    /// MLP input dimension: target emb + history emb + interaction dot +
    /// 1 dense feature.
    pub fn input_dim(&self) -> usize {
        2 * self.embedding_dim + 2
    }
}

/// The dense (non-embedding) parameters — trained with conventional FL.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseParams {
    /// First layer weights, `hidden × input`.
    pub w1: Matrix,
    /// First layer bias.
    pub b1: Vec<f32>,
    /// Output layer weights, length `hidden`.
    pub w2: Vec<f32>,
    /// Output bias.
    pub b2: f32,
}

impl DenseParams {
    fn zeros_like(&self) -> DenseParams {
        DenseParams {
            w1: Matrix::zeros(self.w1.rows(), self.w1.cols()),
            b1: vec![0.0; self.b1.len()],
            w2: vec![0.0; self.w2.len()],
            b2: 0.0,
        }
    }

    /// `self += α · other`, the FedAvg server update for dense params.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f32, other: &DenseParams) {
        self.w1.add_scaled(alpha, &other.w1);
        crate::linalg::axpy(alpha, &other.b1, &mut self.b1);
        crate::linalg::axpy(alpha, &other.w2, &mut self.w2);
        self.b2 += alpha * other.b2;
    }
}

/// Gradients of one forward/backward pass.
#[derive(Clone, Debug)]
pub struct Gradients {
    /// Dense-parameter gradients.
    pub dense: DenseParams,
    /// Gradient w.r.t. the target item's embedding row.
    pub item_row: (u64, Vec<f32>),
    /// Gradients w.r.t. each history row (one per distinct history item).
    pub history_rows: Vec<(u64, Vec<f32>)>,
    /// Gradient w.r.t. the attention query projection (attention pooling
    /// only).
    pub attention_q: Option<Matrix>,
}

/// The model.
#[derive(Clone, Debug)]
pub struct DlrmModel {
    config: DlrmConfig,
    item_table: Matrix,
    history_table: Matrix,
    dense: DenseParams,
    attention: Option<AttentionPooling>,
}

/// Cached activations needed by the backward pass.
#[derive(Clone, Debug)]
pub struct ForwardCache {
    x: Vec<f32>,
    pre1: Vec<f32>,
    h1: Vec<f32>,
    prob: f32,
    target_item: u64,
    history: Vec<u64>,
    attention: Option<AttentionCache>,
}

impl ForwardCache {
    /// The predicted probability.
    pub fn prob(&self) -> f32 {
        self.prob
    }
}

impl DlrmModel {
    /// Creates a model with small random initial weights.
    pub fn new<R: Rng>(config: DlrmConfig, rng: &mut R) -> Self {
        let d = config.embedding_dim;
        let scale_emb = 0.1 / (d as f32).sqrt();
        let item_table = Matrix::from_fn(config.num_items as usize, d, |_, _| {
            rng.gen_range(-scale_emb..scale_emb)
        });
        let history_table = Matrix::from_fn(config.num_items as usize, d, |_, _| {
            rng.gen_range(-scale_emb..scale_emb)
        });
        let fan_in = config.input_dim() as f32;
        let s1 = (2.0 / fan_in).sqrt();
        let w1 = Matrix::from_fn(config.hidden_dim, config.input_dim(), |_, _| {
            rng.gen_range(-s1..s1)
        });
        let s2 = (2.0 / config.hidden_dim as f32).sqrt();
        let w2 = (0..config.hidden_dim)
            .map(|_| rng.gen_range(-s2..s2))
            .collect();
        let attention = match config.pooling {
            Pooling::Mean => None,
            Pooling::Attention => Some(AttentionPooling::new(d, rng)),
        };
        DlrmModel {
            config,
            item_table,
            history_table,
            dense: DenseParams {
                w1,
                b1: vec![0.0; config.hidden_dim],
                w2,
                b2: 0.0,
            },
            attention,
        }
    }

    /// The attention head (attention pooling only).
    pub fn attention(&self) -> Option<&AttentionPooling> {
        self.attention.as_ref()
    }

    /// Applies a gradient step to the attention query projection.
    ///
    /// # Panics
    ///
    /// Panics if the model does not use attention pooling.
    pub fn update_attention(&mut self, alpha: f32, d_q: &Matrix) {
        self.attention
            .as_mut()
            .expect("model has no attention head")
            .apply(alpha, d_q);
    }

    /// The configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// The dense parameters.
    pub fn dense(&self) -> &DenseParams {
        &self.dense
    }

    /// Mutable dense parameters (server aggregation target).
    pub fn dense_mut(&mut self) -> &mut DenseParams {
        &mut self.dense
    }

    /// One history-table row.
    pub fn history_row(&self, id: u64) -> &[f32] {
        self.history_table.row(id as usize)
    }

    /// Overwrites one history-table row (used to sync the model with the
    /// main-ORAM contents for evaluation).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_history_row(&mut self, id: u64, row: &[f32]) {
        assert_eq!(row.len(), self.config.embedding_dim, "row dimension");
        let d = self.config.embedding_dim;
        let base = id as usize * d;
        self.history_table.data_mut()[base..base + d].copy_from_slice(row);
    }

    /// One item-table row.
    pub fn item_row(&self, id: u64) -> &[f32] {
        self.item_table.row(id as usize)
    }

    /// Applies a delta to one item-table row.
    pub fn update_item_row(&mut self, id: u64, alpha: f32, delta: &[f32]) {
        let d = self.config.embedding_dim;
        let base = id as usize * d;
        for (w, g) in self.item_table.data_mut()[base..base + d]
            .iter_mut()
            .zip(delta)
        {
            *w += alpha * g;
        }
    }

    /// Applies a delta to one history-table row.
    pub fn update_history_row(&mut self, id: u64, alpha: f32, delta: &[f32]) {
        let d = self.config.embedding_dim;
        let base = id as usize * d;
        for (w, g) in self.history_table.data_mut()[base..base + d]
            .iter_mut()
            .zip(delta)
        {
            *w += alpha * g;
        }
    }

    /// Pools the given history rows per the configured strategy. Entries
    /// may be fewer than the full history when the FDP mechanism lost
    /// some. Returns the pooled vector and (for attention) the cache its
    /// backward pass needs.
    fn pool(&self, target_item: u64, rows: &[&[f32]]) -> (Vec<f32>, Option<AttentionCache>) {
        let d = self.config.embedding_dim;
        if rows.is_empty() {
            return (vec![0.0; d], None);
        }
        match (&self.config.pooling, &self.attention) {
            (Pooling::Mean, _) => {
                let mut out = vec![0.0; d];
                for row in rows {
                    crate::linalg::axpy(1.0, row, &mut out);
                }
                crate::linalg::scale(&mut out, 1.0 / rows.len() as f32);
                (out, None)
            }
            (Pooling::Attention, Some(att)) => {
                let owned: Vec<Vec<f32>> = rows.iter().map(|r| r.to_vec()).collect();
                let target = self.item_table.row(target_item as usize);
                let (pooled, cache) = att.forward(target, &owned);
                (pooled, Some(cache))
            }
            (Pooling::Attention, None) => unreachable!("attention model always has a head"),
        }
    }

    /// Forward pass with explicitly supplied history rows — what a FEDORA
    /// client runs on entries downloaded through the buffer ORAM. Rows must
    /// be in the same order as `history`; a `None` row means the entry was
    /// lost (the default-value strategy substitutes zeros).
    ///
    /// # Panics
    ///
    /// Panics if `history.len() != history_rows.len()`.
    pub fn forward_with_history(
        &self,
        target_item: u64,
        history: &[u64],
        history_rows: &[Option<Vec<f32>>],
        dense_feature: f32,
    ) -> ForwardCache {
        assert_eq!(
            history.len(),
            history_rows.len(),
            "one row per history item"
        );
        let d = self.config.embedding_dim;
        let zero = vec![0.0; d];
        let resolved: Vec<&[f32]> = history_rows
            .iter()
            .map(|r| r.as_deref().unwrap_or(&zero))
            .collect();
        let (pooled, att_cache) = if self.config.use_private_history && !resolved.is_empty() {
            self.pool(target_item, &resolved)
        } else {
            (vec![0.0; d], None)
        };
        self.forward_inner(
            target_item,
            history.to_vec(),
            pooled,
            att_cache,
            dense_feature,
        )
    }

    /// Forward pass using the model's own history table (reference FL path
    /// and evaluation).
    pub fn forward_local(
        &self,
        target_item: u64,
        history: &[u64],
        dense_feature: f32,
    ) -> ForwardCache {
        let d = self.config.embedding_dim;
        let (pooled, att_cache) = if self.config.use_private_history && !history.is_empty() {
            let rows: Vec<&[f32]> = history
                .iter()
                .map(|&h| self.history_table.row(h as usize))
                .collect();
            self.pool(target_item, &rows)
        } else {
            (vec![0.0; d], None)
        };
        self.forward_inner(
            target_item,
            history.to_vec(),
            pooled,
            att_cache,
            dense_feature,
        )
    }

    fn forward_inner(
        &self,
        target_item: u64,
        history: Vec<u64>,
        pooled: Vec<f32>,
        attention: Option<AttentionCache>,
        dense_feature: f32,
    ) -> ForwardCache {
        let item_emb = self.item_table.row(target_item as usize);
        let mut x = Vec::with_capacity(self.config.input_dim());
        x.extend_from_slice(item_emb);
        x.extend_from_slice(&pooled);
        x.push(dot(item_emb, &pooled)); // DLRM pairwise interaction
        x.push(dense_feature);
        let mut pre1 = self.dense.w1.matvec(&x);
        for (p, b) in pre1.iter_mut().zip(&self.dense.b1) {
            *p += b;
        }
        let h1: Vec<f32> = pre1.iter().map(|&v| relu(v)).collect();
        let logit = dot(&self.dense.w2, &h1) + self.dense.b2;
        ForwardCache {
            x,
            pre1,
            h1,
            prob: sigmoid(logit),
            target_item,
            history,
            attention,
        }
    }

    /// Backward pass for binary cross-entropy: returns all gradients.
    /// Gradients of the history branch are split equally across the
    /// history rows (mean-pooling's Jacobian).
    pub fn backward(&self, cache: &ForwardCache, label: f32) -> Gradients {
        let d = self.config.embedding_dim;
        // dL/dlogit for BCE with sigmoid.
        let dlogit = cache.prob - label;

        let mut dense = self.dense.zeros_like();
        // Output layer.
        for (g, h) in dense.w2.iter_mut().zip(&cache.h1) {
            *g = dlogit * h;
        }
        dense.b2 = dlogit;
        // Hidden layer.
        let dh1: Vec<f32> = self.dense.w2.iter().map(|&w| dlogit * w).collect();
        let dpre1: Vec<f32> = dh1
            .iter()
            .zip(&cache.pre1)
            .map(|(&g, &p)| g * relu_grad(p))
            .collect();
        dense.w1.add_outer(1.0, &dpre1, &cache.x);
        dense.b1.copy_from_slice(&dpre1);
        // Input gradient. Layout of x: [item | pooled | dot | dense], so
        // the interaction feature routes gradient into both embeddings.
        let dx = self.dense.w1.matvec_t(&dpre1);
        let item_emb = &cache.x[..d];
        let pooled = &cache.x[d..2 * d];
        let ddot = dx[2 * d];

        let mut item_grad = dx[..d].to_vec();
        for (g, p) in item_grad.iter_mut().zip(pooled) {
            *g += ddot * p;
        }
        let mut history_rows = Vec::new();
        let mut attention_q = None;
        if self.config.use_private_history && !cache.history.is_empty() {
            let dpool: Vec<f32> = dx[d..2 * d]
                .iter()
                .zip(item_emb)
                .map(|(&v, &e)| v + ddot * e)
                .collect();
            match &cache.attention {
                None => {
                    // Mean pooling: the Jacobian splits equally.
                    let inv = 1.0 / cache.history.len() as f32;
                    for &h in &cache.history {
                        let g: Vec<f32> = dpool.iter().map(|&v| v * inv).collect();
                        history_rows.push((h, g));
                    }
                }
                Some(att_cache) => {
                    let att = self.attention.as_ref().expect("attention model has a head");
                    let grads = att.backward(att_cache, &dpool);
                    for (&h, g) in cache.history.iter().zip(grads.d_history) {
                        history_rows.push((h, g));
                    }
                    // The target embedding also feeds the attention query.
                    for (g, a) in item_grad.iter_mut().zip(&grads.d_target) {
                        *g += a;
                    }
                    attention_q = Some(grads.d_q);
                }
            }
        }
        Gradients {
            dense,
            item_row: (cache.target_item, item_grad),
            history_rows,
            attention_q,
        }
    }

    /// Binary cross-entropy loss of a cached forward pass.
    pub fn bce_loss(cache: &ForwardCache, label: f32) -> f32 {
        let p = cache.prob.clamp(1e-7, 1.0 - 1e-7);
        -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
    }

    /// Serializes one history row into the byte format stored in the main
    /// ORAM (little-endian f32s).
    pub fn history_row_bytes(&self, id: u64) -> Vec<u8> {
        self.history_row(id)
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect()
    }

    /// Parses a main-ORAM payload back into an f32 row.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not `4·embedding_dim`.
    pub fn row_from_bytes(&self, bytes: &[u8]) -> Vec<f32> {
        assert_eq!(bytes.len(), 4 * self.config.embedding_dim, "payload size");
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> DlrmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        DlrmModel::new(DlrmConfig::tiny(32), &mut rng)
    }

    #[test]
    fn forward_produces_probability() {
        let m = model(1);
        let c = m.forward_local(3, &[1, 2, 5], 0.5);
        assert!(c.prob() > 0.0 && c.prob() < 1.0);
    }

    #[test]
    fn pub_mode_ignores_history() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DlrmConfig {
            use_private_history: false,
            ..DlrmConfig::tiny(32)
        };
        let m = DlrmModel::new(cfg, &mut rng);
        let a = m.forward_local(3, &[1, 2], 0.5).prob();
        let b = m.forward_local(3, &[7, 9, 11], 0.5).prob();
        assert_eq!(a, b, "history must not influence the pub model");
    }

    #[test]
    fn forward_with_history_matches_local() {
        let m = model(3);
        let hist = [1u64, 4, 9];
        let rows: Vec<Option<Vec<f32>>> = hist
            .iter()
            .map(|&h| Some(m.history_row(h).to_vec()))
            .collect();
        let a = m.forward_local(2, &hist, 0.3).prob();
        let b = m.forward_with_history(2, &hist, &rows, 0.3).prob();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn lost_rows_default_to_zero() {
        let m = model(4);
        let hist = [1u64, 4];
        let rows = vec![Some(m.history_row(1).to_vec()), None];
        let c = m.forward_with_history(2, &hist, &rows, 0.3);
        assert!(c.prob().is_finite());
    }

    /// Finite-difference check of every gradient component.
    #[test]
    fn gradients_match_finite_differences() {
        let mut m = model(5);
        let (target, hist, dense_feat, label) = (3u64, vec![1u64, 7], 0.25f32, 1.0f32);
        let cache = m.forward_local(target, &hist, dense_feat);
        let grads = m.backward(&cache, label);
        let eps = 1e-3f32;

        // w1[0][0]
        let orig = m.dense.w1.get(0, 0);
        m.dense_mut().w1.set(0, 0, orig + eps);
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.dense_mut().w1.set(0, 0, orig - eps);
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.dense_mut().w1.set(0, 0, orig);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - grads.dense.w1.get(0, 0)).abs() < 1e-2,
            "w1 grad: fd={fd} analytic={}",
            grads.dense.w1.get(0, 0)
        );

        // b2
        let orig_b2 = m.dense.b2;
        m.dense_mut().b2 = orig_b2 + eps;
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.dense_mut().b2 = orig_b2 - eps;
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.dense_mut().b2 = orig_b2;
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - grads.dense.b2).abs() < 1e-2, "b2 grad: fd={fd}");

        // history row 1, component 0.
        let row = m.history_row(1).to_vec();
        let mut bumped = row.clone();
        bumped[0] += eps;
        m.set_history_row(1, &bumped);
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        bumped[0] = row[0] - eps;
        m.set_history_row(1, &bumped);
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.set_history_row(1, &row);
        let fd = (lp - lm) / (2.0 * eps);
        let analytic = grads
            .history_rows
            .iter()
            .find(|(id, _)| *id == 1)
            .unwrap()
            .1[0];
        assert!(
            (fd - analytic).abs() < 1e-2,
            "hist grad: fd={fd} analytic={analytic}"
        );

        // item row, component 0.
        let irow = m.item_row(target).to_vec();
        let mut ibumped = irow.clone();
        ibumped[0] += eps;
        let d = m.config().embedding_dim;
        let base = target as usize * d;
        m.item_table.data_mut()[base] = ibumped[0];
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.item_table.data_mut()[base] = irow[0] - eps;
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, dense_feat), label);
        m.item_table.data_mut()[base] = irow[0];
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - grads.item_row.1[0]).abs() < 1e-2,
            "item grad: fd={fd}"
        );
    }

    #[test]
    fn attention_model_gradcheck() {
        // Finite-difference check through the *full* model with attention
        // pooling: the history-row gradient now routes through softmax
        // attention and the interaction feature.
        let mut rng = StdRng::seed_from_u64(15);
        let cfg = DlrmConfig {
            pooling: Pooling::Attention,
            ..DlrmConfig::tiny(32)
        };
        let mut m = DlrmModel::new(cfg, &mut rng);
        let (target, hist, feat, label) = (3u64, vec![1u64, 7, 12], 0.25f32, 1.0f32);
        let cache = m.forward_local(target, &hist, feat);
        assert!(
            cache.attention.is_some(),
            "attention cache must be recorded"
        );
        let grads = m.backward(&cache, label);
        assert!(grads.attention_q.is_some());
        let eps = 1e-3f32;

        // History row 7, component 2.
        let row = m.history_row(7).to_vec();
        let mut bumped = row.clone();
        bumped[2] += eps;
        m.set_history_row(7, &bumped);
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        bumped[2] = row[2] - eps;
        m.set_history_row(7, &bumped);
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        m.set_history_row(7, &row);
        let fd = (lp - lm) / (2.0 * eps);
        let analytic = grads
            .history_rows
            .iter()
            .find(|(id, _)| *id == 7)
            .unwrap()
            .1[2];
        assert!(
            (fd - analytic).abs() < 1e-2,
            "hist grad via attention: fd={fd} vs {analytic}"
        );

        // Attention Q[0][1].
        let q00 = m.attention().unwrap().q().get(0, 1);
        let mut dq = Matrix::zeros(8, 8);
        dq.set(0, 1, 1.0);
        m.update_attention(eps, &dq);
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        m.update_attention(-2.0 * eps, &dq);
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        m.update_attention(eps, &dq); // restore
        assert!((m.attention().unwrap().q().get(0, 1) - q00).abs() < 1e-6);
        let fd = (lp - lm) / (2.0 * eps);
        let analytic = grads.attention_q.as_ref().unwrap().get(0, 1);
        assert!((fd - analytic).abs() < 1e-2, "dQ: fd={fd} vs {analytic}");

        // Item row (target) picks up the attention-query term too.
        let irow = m.item_row(target).to_vec();
        let d = m.config().embedding_dim;
        let base = target as usize * d;
        m.item_table.data_mut()[base] = irow[0] + eps;
        let lp = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        m.item_table.data_mut()[base] = irow[0] - eps;
        let lm = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        m.item_table.data_mut()[base] = irow[0];
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - grads.item_row.1[0]).abs() < 1e-2,
            "item grad with attention: fd={fd} vs {}",
            grads.item_row.1[0]
        );
    }

    #[test]
    fn mean_model_has_no_attention_gradient() {
        let m = model(16);
        let cache = m.forward_local(2, &[1, 3], 0.1);
        let grads = m.backward(&cache, 0.0);
        assert!(grads.attention_q.is_none());
        assert!(m.attention().is_none());
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut m = model(6);
        let (target, hist, feat, label) = (3u64, vec![1u64, 7], 0.25f32, 1.0f32);
        let l0 = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        let lr = 0.5f32;
        for _ in 0..20 {
            let cache = m.forward_local(target, &hist, feat);
            let g = m.backward(&cache, label);
            m.dense.add_scaled(-lr, &g.dense);
            m.update_item_row(g.item_row.0, -lr, &g.item_row.1);
            for (id, gh) in &g.history_rows {
                m.update_history_row(*id, -lr, gh);
            }
        }
        let l1 = DlrmModel::bce_loss(&m.forward_local(target, &hist, feat), label);
        assert!(l1 < l0, "loss must decrease: {l0} -> {l1}");
    }

    #[test]
    fn row_bytes_roundtrip() {
        let m = model(7);
        let bytes = m.history_row_bytes(5);
        assert_eq!(bytes.len(), 4 * m.config().embedding_dim);
        let row = m.row_from_bytes(&bytes);
        assert_eq!(row, m.history_row(5));
    }
}
