//! Federated-learning substrate for FEDORA.
//!
//! The paper trains DLRM-style recommendation models with federated
//! learning (FL): each round a subset of users downloads the current model,
//! trains locally, and uploads gradients that the server aggregates
//! (FedAvg, Eq. 1 — generalized to programmable `Pre`/`Post` functions,
//! Eq. 4). This crate is that substrate, built from scratch:
//!
//! * [`linalg`] — the small dense-vector/matrix kernel the model needs.
//! * [`model`] — a DLRM-lite recommendation model: a *private* behavioral
//!   history embedding table (the one FEDORA protects), a public target-item
//!   table, and an MLP head, with manual forward/backward.
//! * [`modes`] — the FL operation modes of §4.3 as `Pre`/`Post` pairs:
//!   [`modes::FedAvg`], [`modes::FedAdam`], [`modes::Eana`] (DP noise at
//!   update), [`modes::LazyDp`] (staleness-scaled DP noise).
//! * [`client`] — local training: per-user SGD producing embedding-row and
//!   dense-parameter deltas plus the sample count `n_t^c`.
//! * [`datasets`] — synthetic dataset generators with MovieLens/Taobao/
//!   Kaggle-like statistics (Zipf item popularity, heavy-tailed history
//!   lengths, planted-model labels). See DESIGN.md §2 for why these
//!   substitute for the real datasets.
//! * [`attention`] — DIN-style target-aware attention pooling over
//!   history embeddings (the "Transformer-like" end of §2.1's model
//!   family), with manually derived gradients.
//! * [`secagg`] — pairwise-mask secure aggregation (Bonawitz et al.),
//!   demonstrating the paper's §2.2 compatibility claim: the server only
//!   ever sees summed gradients.
//! * [`metrics`] — ROC-AUC, the paper's model-quality metric.
//! * [`sim`] — a reference (non-ORAM) FL loop used for the `pub` baseline
//!   and for validating the FEDORA pipeline end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod client;
pub mod datasets;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod modes;
pub mod secagg;
pub mod sim;
pub mod wire;

pub use client::{ClientUpdate, LocalTrainer};
pub use datasets::{Dataset, DatasetKind, Sample, SyntheticConfig};
pub use metrics::roc_auc;
pub use model::{DlrmConfig, DlrmModel};
pub use modes::{AggregationMode, FedAdam, FedAvg};
