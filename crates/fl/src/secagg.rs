//! Secure aggregation (SecAgg) for client gradients (paper §2.2).
//!
//! FL is commonly deployed with SecAgg so the server only ever sees the
//! *sum* of client updates, never an individual gradient. FEDORA is
//! compatible with SecAgg; this module provides the classic pairwise-mask
//! construction (Bonawitz et al.) the compatibility claim refers to:
//!
//! * every ordered client pair `(i, j)` derives a shared mask vector from
//!   a shared seed (here: a ChaCha20 PRG keyed by a pairwise key);
//! * client `i` **adds** the mask for each `j > i` and **subtracts** it
//!   for each `j < i`; summed over all clients the masks cancel exactly;
//! * gradients are carried in fixed-point (`u64` wrapping arithmetic), so
//!   cancellation is bit-exact, not approximate;
//! * if a client drops out after masking, the survivors' masks toward it
//!   no longer cancel; the recovery step reconstructs the dropped client's
//!   pairwise masks and removes them (the seed-reveal phase of the real
//!   protocol, simplified to a trusted dealer here).

use fedora_crypto::chacha20;
use fedora_telemetry::{Counter, Registry};

/// Fixed-point scale: values are rounded to multiples of `1 / SCALE`.
pub const SCALE: f64 = 1u64.wrapping_shl(24) as f64; // 2^24

/// Errors from secure aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecAggError {
    /// A masked update had the wrong vector length.
    LengthMismatch {
        /// Supplied length.
        got: usize,
        /// Expected length.
        want: usize,
    },
    /// A client id outside the group was referenced.
    UnknownClient {
        /// The offending client id.
        id: u32,
    },
    /// A client was reported dropped but also submitted an update; its
    /// masks cancelled normally, so "recovering" them would corrupt the
    /// sum. The round must be re-reported consistently.
    ConflictingDropout {
        /// The client both submitted and reported dropped.
        id: u32,
    },
}

impl core::fmt::Display for SecAggError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SecAggError::LengthMismatch { got, want } => {
                write!(f, "masked update length {got}, expected {want}")
            }
            SecAggError::UnknownClient { id } => write!(f, "client {id} not in the group"),
            SecAggError::ConflictingDropout { id } => {
                write!(
                    f,
                    "client {id} both submitted an update and was reported dropped"
                )
            }
        }
    }
}

impl std::error::Error for SecAggError {}

/// One client's masked, fixed-point update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedUpdate {
    /// The submitting client.
    pub client: u32,
    /// Masked fixed-point words.
    pub words: Vec<u64>,
}

/// A SecAgg group: the set of clients selected for one round and the
/// round-scoped pairwise key material.
///
/// # Example
///
/// ```
/// use fedora_fl::secagg::SecAggGroup;
///
/// let group = SecAggGroup::new(&[1, 2, 3], 0, [7u8; 32]);
/// let a = group.mask(1, &[1.0, -2.0]).unwrap();
/// let b = group.mask(2, &[0.5, 0.25]).unwrap();
/// let c = group.mask(3, &[-0.5, 1.75]).unwrap();
/// let sum = group.aggregate(&[a, b, c], &[]).unwrap();
/// assert!((sum[0] - 1.0).abs() < 1e-5);
/// assert!((sum[1] - 0.0).abs() < 1e-5);
/// ```
#[derive(Clone, Debug)]
pub struct SecAggGroup {
    clients: Vec<u32>,
    round: u64,
    /// Round key material (in the real protocol, agreed via key exchange;
    /// modeled as a dealer-provided group secret).
    group_secret: [u8; 32],
    telemetry: SecAggTelemetry,
}

/// Telemetry handles for dropout recovery events.
#[derive(Clone, Debug, Default)]
struct SecAggTelemetry {
    registry: Registry,
    dropouts: Counter,
}

impl SecAggGroup {
    /// Creates a group for one round.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty or contains duplicates.
    pub fn new(clients: &[u32], round: u64, group_secret: [u8; 32]) -> Self {
        assert!(!clients.is_empty(), "a SecAgg group needs clients");
        let mut sorted = clients.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), clients.len(), "duplicate client ids");
        SecAggGroup {
            clients: sorted,
            round,
            group_secret,
            telemetry: SecAggTelemetry::default(),
        }
    }

    /// Attaches telemetry: every recovered dropout bumps
    /// `fl.secagg.dropouts` and journals one `secagg.dropout_recovery`
    /// event per affected aggregation.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = SecAggTelemetry {
            registry: registry.clone(),
            dropouts: registry.counter("fl.secagg.dropouts"),
        };
    }

    /// The group's clients (sorted).
    pub fn clients(&self) -> &[u32] {
        &self.clients
    }

    fn contains(&self, id: u32) -> bool {
        self.clients.binary_search(&id).is_ok()
    }

    /// The pairwise mask between clients `a < b` for a vector of `len`
    /// words: a ChaCha20 keystream keyed by (group secret, a, b, round).
    fn pairwise_mask(&self, a: u32, b: u32, len: usize) -> Vec<u64> {
        debug_assert!(a < b);
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&a.to_le_bytes());
        nonce[4..8].copy_from_slice(&b.to_le_bytes());
        nonce[8..].copy_from_slice(&(self.round as u32).to_le_bytes());
        let mut bytes = vec![0u8; len * 8];
        chacha20::xor_stream(
            &self.group_secret,
            (self.round >> 32) as u32,
            &nonce,
            &mut bytes,
        );
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// Quantizes to fixed point.
    fn quantize(values: &[f32]) -> Vec<u64> {
        values
            .iter()
            .map(|&v| ((v as f64 * SCALE).round() as i64) as u64)
            .collect()
    }

    /// Dequantizes a (wrapped) fixed-point sum.
    fn dequantize(words: &[u64]) -> Vec<f64> {
        words.iter().map(|&w| (w as i64) as f64 / SCALE).collect()
    }

    /// Masks one client's gradient vector.
    ///
    /// # Errors
    ///
    /// [`SecAggError::UnknownClient`] when `client` is not in the group.
    pub fn mask(&self, client: u32, gradient: &[f32]) -> Result<MaskedUpdate, SecAggError> {
        if !self.contains(client) {
            return Err(SecAggError::UnknownClient { id: client });
        }
        let mut words = Self::quantize(gradient);
        for &other in &self.clients {
            if other == client {
                continue;
            }
            let (lo, hi) = (client.min(other), client.max(other));
            let mask = self.pairwise_mask(lo, hi, words.len());
            for (w, m) in words.iter_mut().zip(&mask) {
                if client == lo {
                    *w = w.wrapping_add(*m);
                } else {
                    *w = w.wrapping_sub(*m);
                }
            }
        }
        Ok(MaskedUpdate { client, words })
    }

    /// Aggregates masked updates. `dropped` lists clients that masked
    /// their update but failed to submit it: their orphaned pairwise masks
    /// are reconstructed and removed (the protocol's unmask/recovery
    /// round).
    ///
    /// Returns the exact sum of the submitted clients' gradients.
    /// Duplicate ids in `dropped` are collapsed (recovery is idempotent).
    ///
    /// # Errors
    ///
    /// [`SecAggError::LengthMismatch`] on ragged vectors;
    /// [`SecAggError::UnknownClient`] for ids outside the group;
    /// [`SecAggError::ConflictingDropout`] when a dropped id also appears
    /// among the submitted updates.
    pub fn aggregate(
        &self,
        updates: &[MaskedUpdate],
        dropped: &[u32],
    ) -> Result<Vec<f64>, SecAggError> {
        let len = updates.first().map(|u| u.words.len()).unwrap_or(0);
        let mut acc = vec![0u64; len];
        let mut submitted = Vec::with_capacity(updates.len());
        for u in updates {
            if u.words.len() != len {
                return Err(SecAggError::LengthMismatch {
                    got: u.words.len(),
                    want: len,
                });
            }
            if !self.contains(u.client) {
                return Err(SecAggError::UnknownClient { id: u.client });
            }
            submitted.push(u.client);
            for (a, w) in acc.iter_mut().zip(&u.words) {
                *a = a.wrapping_add(*w);
            }
        }
        // A client can only drop once: duplicate reports must not trigger
        // a second (sum-corrupting) unmask, and a dropout report for a
        // client whose update *was* aggregated is a protocol violation.
        let mut dropped = dropped.to_vec();
        dropped.sort_unstable();
        dropped.dedup();
        for &d in &dropped {
            if !self.contains(d) {
                return Err(SecAggError::UnknownClient { id: d });
            }
            if submitted.contains(&d) {
                return Err(SecAggError::ConflictingDropout { id: d });
            }
        }
        if !dropped.is_empty() {
            self.telemetry.dropouts.add(dropped.len() as u64);
            self.telemetry.registry.event(
                "secagg.dropout_recovery",
                &[
                    ("round", self.round.into()),
                    ("dropped", (dropped.len() as u64).into()),
                    ("survivors", (submitted.len() as u64).into()),
                ],
            );
        }
        // Remove masks between each submitted client and each dropped
        // client (those are the ones that no longer cancel).
        for &alive in &submitted {
            for &dead in &dropped {
                let (lo, hi) = (alive.min(dead), alive.max(dead));
                let mask = self.pairwise_mask(lo, hi, len);
                for (a, m) in acc.iter_mut().zip(&mask) {
                    // `alive` applied +mask if it was `lo`, −mask if `hi`;
                    // undo that contribution.
                    if alive == lo {
                        *a = a.wrapping_sub(*m);
                    } else {
                        *a = a.wrapping_add(*m);
                    }
                }
            }
        }
        Ok(Self::dequantize(&acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u32, round: u64) -> SecAggGroup {
        let clients: Vec<u32> = (0..n).collect();
        SecAggGroup::new(&clients, round, [0x11; 32])
    }

    #[test]
    fn masks_cancel_exactly() {
        let g = group(5, 0);
        let grads: Vec<Vec<f32>> = (0..5)
            .map(|i| vec![i as f32 * 0.5, -(i as f32), 1.0 / (i + 1) as f32])
            .collect();
        let updates: Vec<MaskedUpdate> = (0..5)
            .map(|i| g.mask(i, &grads[i as usize]).unwrap())
            .collect();
        let sum = g.aggregate(&updates, &[]).unwrap();
        for d in 0..3 {
            let expected: f64 = grads.iter().map(|v| v[d] as f64).sum();
            assert!(
                (sum[d] - expected).abs() < 1e-5,
                "dim {d}: {} vs {expected}",
                sum[d]
            );
        }
    }

    #[test]
    fn single_update_is_hidden() {
        // A masked update alone looks nothing like the gradient.
        let g = group(3, 1);
        let masked = g.mask(0, &[1.0, 2.0, 3.0]).unwrap();
        let raw = SecAggGroup::quantize(&[1.0, 2.0, 3.0]);
        assert_ne!(masked.words, raw, "mask must hide the raw values");
    }

    #[test]
    fn dropout_recovery() {
        let g = group(4, 2);
        let grads: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 + 0.25; 2]).collect();
        let updates: Vec<MaskedUpdate> = (0..4)
            .map(|i| g.mask(i, &grads[i as usize]).unwrap())
            .collect();
        // Client 2 masked but never submitted.
        let submitted = [updates[0].clone(), updates[1].clone(), updates[3].clone()];
        let sum = g.aggregate(&submitted, &[2]).unwrap();
        let expected: f64 = [0usize, 1, 3].iter().map(|&i| grads[i][0] as f64).sum();
        assert!((sum[0] - expected).abs() < 1e-5, "{} vs {expected}", sum[0]);
    }

    #[test]
    fn telemetry_counts_dropout_recoveries() {
        let registry = Registry::new();
        let mut g = group(4, 2);
        g.set_telemetry(&registry);
        let updates: Vec<MaskedUpdate> = (0..4).map(|i| g.mask(i, &[1.0, 2.0]).unwrap()).collect();
        let submitted = [updates[0].clone(), updates[1].clone()];
        g.aggregate(&submitted, &[2, 3]).unwrap();
        g.aggregate(&updates, &[]).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("fl.secagg.dropouts"), Some(2));
        let event = snap
            .events
            .iter()
            .find(|e| e.name == "secagg.dropout_recovery")
            .expect("recovery journaled");
        assert_eq!(
            event.field("dropped"),
            Some(&fedora_telemetry::Value::U64(2))
        );
        assert_eq!(
            event.field("survivors"),
            Some(&fedora_telemetry::Value::U64(2))
        );
    }

    #[test]
    fn forgetting_dropout_corrupts_sum() {
        // Without the recovery step, the orphaned masks poison the sum —
        // the failure the unmask round exists to fix.
        let g = group(3, 3);
        let updates: Vec<MaskedUpdate> = (0..3).map(|i| g.mask(i, &[1.0]).unwrap()).collect();
        let bad = g.aggregate(&updates[..2], &[]).unwrap();
        assert!(
            (bad[0] - 2.0).abs() > 1.0,
            "orphaned masks should corrupt: {}",
            bad[0]
        );
        let good = g.aggregate(&updates[..2], &[2]).unwrap();
        assert!((good[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn rounds_produce_independent_masks() {
        let g0 = group(2, 0);
        let g1 = group(2, 1);
        let m0 = g0.mask(0, &[0.0]).unwrap();
        let m1 = g1.mask(0, &[0.0]).unwrap();
        assert_ne!(m0.words, m1.words, "masks must be fresh per round");
    }

    #[test]
    fn unknown_client_rejected() {
        let g = group(3, 0);
        assert_eq!(g.mask(9, &[0.0]), Err(SecAggError::UnknownClient { id: 9 }));
        let u = g.mask(0, &[0.0]).unwrap();
        assert!(matches!(
            g.aggregate(&[u], &[9]),
            Err(SecAggError::UnknownClient { id: 9 })
        ));
    }

    #[test]
    fn ragged_updates_rejected() {
        let g = group(2, 0);
        let a = g.mask(0, &[1.0, 2.0]).unwrap();
        let b = g.mask(1, &[1.0]).unwrap();
        assert!(matches!(
            g.aggregate(&[a, b], &[]),
            Err(SecAggError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn all_clients_drop() {
        // Nobody submitted: there is nothing to unmask and the sum of
        // zero gradients is empty. Must not panic or corrupt.
        let g = group(4, 5);
        for i in 0..4 {
            let _ = g.mask(i, &[1.0, 2.0]).unwrap();
        }
        let sum = g.aggregate(&[], &[0, 1, 2, 3]).unwrap();
        assert!(sum.is_empty());
    }

    #[test]
    fn duplicate_dropout_report_is_idempotent() {
        // Two survivors each report client 2's dropout; the recovery must
        // run once, not twice (a double unmask corrupts the sum).
        let g = group(3, 6);
        let grads: Vec<Vec<f32>> = (0..3).map(|i| vec![i as f32 + 0.5; 2]).collect();
        let updates: Vec<MaskedUpdate> = (0..3)
            .map(|i| g.mask(i, &grads[i as usize]).unwrap())
            .collect();
        let submitted = [updates[0].clone(), updates[1].clone()];
        let once = g.aggregate(&submitted, &[2]).unwrap();
        let twice = g.aggregate(&submitted, &[2, 2]).unwrap();
        assert_eq!(once, twice);
        let expected = grads[0][0] as f64 + grads[1][0] as f64;
        assert!(
            (twice[0] - expected).abs() < 1e-5,
            "{} vs {expected}",
            twice[0]
        );
    }

    #[test]
    fn dropout_after_submission_rejected() {
        // A "dropped" client whose update is in the aggregate had its
        // masks cancel normally; unmasking it anyway would poison the sum,
        // so the conflicting report is an error, not a silent corruption.
        let g = group(3, 7);
        let updates: Vec<MaskedUpdate> = (0..3).map(|i| g.mask(i, &[1.0]).unwrap()).collect();
        assert_eq!(
            g.aggregate(&updates, &[1]),
            Err(SecAggError::ConflictingDropout { id: 1 })
        );
    }

    #[test]
    fn quantization_precision() {
        let g = group(2, 0);
        let vals = [0.123456f32, -9.875, 1e-6];
        let a = g.mask(0, &vals).unwrap();
        let b = g.mask(1, &[0.0, 0.0, 0.0]).unwrap();
        let sum = g.aggregate(&[a, b], &[]).unwrap();
        for (s, v) in sum.iter().zip(&vals) {
            assert!((s - *v as f64).abs() < 1.0 / SCALE * 2.0, "{s} vs {v}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sum_always_recovered(
            grads in proptest::collection::vec(
                proptest::collection::vec(-100.0f32..100.0, 4), 2..8),
            round in 0u64..1000,
        ) {
            let n = grads.len() as u32;
            let clients: Vec<u32> = (0..n).collect();
            let g = SecAggGroup::new(&clients, round, [0x42; 32]);
            let updates: Vec<MaskedUpdate> = grads
                .iter()
                .enumerate()
                .map(|(i, v)| g.mask(i as u32, v).unwrap())
                .collect();
            let sum = g.aggregate(&updates, &[]).unwrap();
            for d in 0..4 {
                let expected: f64 = grads.iter().map(|v| v[d] as f64).sum();
                prop_assert!((sum[d] - expected).abs() < 1e-3);
            }
        }
    }
}
