//! Wire codec for FL payloads crossing the network boundary.
//!
//! `fedora-net` carries client updates as JSON. The updates themselves are
//! SecAgg-compatible: the same fixed-point `u64` word representation that
//! [`SecAggGroup::mask`](crate::secagg::SecAggGroup::mask) produces, so a
//! masked update and a plaintext update are indistinguishable at the codec
//! layer and the server-side aggregation path is identical either way.
//!
//! JSON numbers are IEEE doubles — exact only up to 2^53 — while masked
//! words use all 64 bits, so words travel as decimal strings. Everything
//! here decodes *untrusted* input: every function returns a typed
//! [`WireError`], never panics, and bounds vector lengths by
//! [`MAX_WIRE_WORDS`].

use fedora_telemetry::json::Json;

use crate::secagg::{MaskedUpdate, SCALE};

/// Longest word vector a single update may carry (64 KiB of payload); an
/// adversarial frame cannot make the server allocate beyond this.
pub const MAX_WIRE_WORDS: usize = 8192;

/// Decode failures on wire payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A structural violation (wrong JSON shape or missing member).
    Schema(&'static str),
    /// A word that is not a decimal `u64` string.
    BadWord(String),
    /// More words than [`MAX_WIRE_WORDS`].
    TooManyWords {
        /// Words in the offending vector.
        got: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Schema(what) => write!(f, "malformed wire payload: {what}"),
            WireError::BadWord(word) => write!(f, "bad fixed-point word '{word}'"),
            WireError::TooManyWords { got } => {
                write!(f, "{got} words exceed the wire maximum {MAX_WIRE_WORDS}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Quantizes a gradient to SecAgg fixed-point words (multiples of
/// `1/SCALE`, two's-complement in `u64`) — bit-identical to what
/// [`SecAggGroup::mask`](crate::secagg::SecAggGroup::mask) computes before
/// masking, so wire payloads stay aggregation-compatible with masked ones.
pub fn quantize(values: &[f32]) -> Vec<u64> {
    values
        .iter()
        .map(|&v| ((v as f64 * SCALE).round() as i64) as u64)
        .collect()
}

/// Inverse of [`quantize`] for a single (unmasked, unsummed) update.
pub fn dequantize(words: &[u64]) -> Vec<f32> {
    words
        .iter()
        .map(|&w| ((w as i64) as f64 / SCALE) as f32)
        .collect()
}

/// Encodes fixed-point words as a JSON array of decimal strings.
pub fn encode_words(words: &[u64]) -> Json {
    Json::Arr(words.iter().map(|w| Json::Str(w.to_string())).collect())
}

/// Decodes a word vector produced by [`encode_words`].
///
/// # Errors
///
/// [`WireError`] on non-array input, non-string elements, non-`u64`
/// strings, or vectors longer than [`MAX_WIRE_WORDS`].
pub fn decode_words(json: &Json) -> Result<Vec<u64>, WireError> {
    let items = json
        .as_array()
        .ok_or(WireError::Schema("words must be an array"))?;
    if items.len() > MAX_WIRE_WORDS {
        return Err(WireError::TooManyWords { got: items.len() });
    }
    items
        .iter()
        .map(|item| {
            let text = item
                .as_str()
                .ok_or(WireError::Schema("word must be a decimal string"))?;
            text.parse::<u64>()
                .map_err(|_| WireError::BadWord(text.to_owned()))
        })
        .collect()
}

/// Encodes a [`MaskedUpdate`] as `{"client": N, "words": [...]}`.
pub fn encode_update(update: &MaskedUpdate) -> Json {
    Json::Obj(vec![
        ("client".to_owned(), Json::Num(update.client as f64)),
        ("words".to_owned(), encode_words(&update.words)),
    ])
}

/// Decodes an update produced by [`encode_update`].
///
/// # Errors
///
/// [`WireError`] on any structural or word-level violation.
pub fn decode_update(json: &Json) -> Result<MaskedUpdate, WireError> {
    let client = json
        .get("client")
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(WireError::Schema("client must be a u32"))?;
    let words = decode_words(
        json.get("words")
            .ok_or(WireError::Schema("missing words"))?,
    )?;
    Ok(MaskedUpdate { client, words })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secagg::SecAggGroup;

    #[test]
    fn quantize_matches_secagg_single_client() {
        // A one-client group has no pairwise masks: mask() IS quantize().
        let group = SecAggGroup::new(&[7], 3, [9u8; 32]);
        let grad = [0.5f32, -1.25, 0.0, 3.75e-3];
        let masked = group.mask(7, &grad).unwrap();
        assert_eq!(masked.words, quantize(&grad));
        let back = dequantize(&masked.words);
        for (b, g) in back.iter().zip(&grad) {
            assert!((b - g).abs() < 2.0 / SCALE as f32, "{b} vs {g}");
        }
    }

    #[test]
    fn words_round_trip_through_json_text() {
        // Full-width words (beyond 2^53) survive the string detour.
        let words = vec![0, 1, u64::MAX, 1 << 60, (1 << 53) + 1];
        let json = encode_words(&words);
        assert_eq!(decode_words(&json).unwrap(), words);
        // And through an actual serialize/parse cycle.
        let text = format!(
            "[{}]",
            words
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(",")
        );
        let parsed = fedora_telemetry::json::parse(&text).unwrap();
        assert_eq!(decode_words(&parsed).unwrap(), words);
    }

    #[test]
    fn update_round_trips() {
        let update = MaskedUpdate {
            client: 42,
            words: quantize(&[1.0, -2.0, 0.125]),
        };
        let decoded = decode_update(&encode_update(&update)).unwrap();
        assert_eq!(decoded, update);
    }

    #[test]
    fn rejects_adversarial_payloads() {
        use fedora_telemetry::json::parse;
        // Numeric words (precision-lossy) are rejected outright.
        let numeric = parse("[1, 2]").unwrap();
        assert!(matches!(decode_words(&numeric), Err(WireError::Schema(_))));
        // Overflowing and garbage strings.
        for bad in ["18446744073709551616", "-1", "0x10", "", "1.5"] {
            let doc = parse(&format!("[\"{bad}\"]")).unwrap();
            assert!(
                matches!(decode_words(&doc), Err(WireError::BadWord(_))),
                "accepted '{bad}'"
            );
        }
        // Oversized vectors are bounded before allocation of the output.
        let long = Json::Arr(vec![Json::Str("0".into()); MAX_WIRE_WORDS + 1]);
        assert_eq!(
            decode_words(&long),
            Err(WireError::TooManyWords {
                got: MAX_WIRE_WORDS + 1
            })
        );
        // Structurally wrong updates.
        for bad in [
            "{\"words\": []}",
            "{\"client\": -1, \"words\": []}",
            "{\"client\": 4294967296, \"words\": []}",
            "{\"client\": 1}",
            "{\"client\": 1, \"words\": 3}",
        ] {
            let doc = parse(bad).unwrap();
            assert!(decode_update(&doc).is_err(), "accepted {bad}");
        }
    }
}
