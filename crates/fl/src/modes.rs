//! FL operation modes as programmable `Pre`/`Post` functions (paper §4.3).
//!
//! The buffer ORAM accumulates `Σ_c Pre(Δθ_t^c)` per entry and applies
//! `Post` to the aggregate right before the main-ORAM update (Eq. 4):
//!
//! ```text
//! θ_{t+1} = θ_t − η · Post( Σ_c Pre(Δθ_t^c) )
//! ```
//!
//! Implementations provided, following the paper's catalogue:
//!
//! * [`FedAvg`] — `Pre(x) = n_c·x`, `Post(x) = x / n_t` (Eq. 1); the weight
//!   accumulator in the buffer block carries `n_t`, so users dropping out
//!   mid-round are handled for free.
//! * [`FedAdam`] — `Post` applies a server-side Adam step using per-entry
//!   first/second moments (extra per-block slots in a real deployment,
//!   server-side state here).
//! * [`Eana`] — DP-SGD-style mode: `Pre` clips each user's gradient to ℓ₂
//!   norm `C`, `Post` adds `N(0, σ²C²)` noise.
//! * [`LazyDp`] — like EANA but noise scaled by `r`, the number of rounds
//!   since the entry was last updated (tracked per entry).
//!
//! Gaussian noise uses a Box–Muller transform (no extra dependencies).

use std::collections::HashMap;

use rand::Rng;

use crate::linalg::l2_norm;

/// Samples one standard normal via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A programmable aggregation mode: the `Pre`/`Post` pair of Eq. 4.
///
/// `pre` runs on each client's per-entry gradient before it enters the
/// buffer-ORAM accumulator and returns the weight to add to the entry's
/// accumulator slot; `post` runs on the summed gradient at round end and
/// must return the delta to apply to the entry (the caller multiplies by
/// the learning rate).
pub trait AggregationMode {
    /// Transforms one client's gradient in place; returns the weight
    /// contribution for the entry's accumulator.
    fn pre(&self, grad: &mut [f32], n_samples: u32) -> f64;

    /// Transforms the aggregated gradient in place, given the accumulated
    /// weight. `entry_id` lets stateful modes (Adam moments, LazyDP
    /// staleness) track per-entry state.
    fn post<R: Rng>(&mut self, entry_id: u64, agg: &mut [f32], weight: f64, rng: &mut R);

    /// Hook called once per round for modes that track staleness.
    fn on_round_end(&mut self) {}

    /// Serializes the mode's persistent optimizer state (Adam moments,
    /// LazyDP staleness) for checkpointing. Stateless modes return an empty
    /// vector. Little-endian, hand-rolled — the fl crate stays
    /// dependency-free.
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`state_bytes`](Self::state_bytes) onto a
    /// freshly constructed mode of the same kind.
    ///
    /// # Errors
    ///
    /// A static description when the bytes do not decode as this mode's
    /// state.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("mode carries no persistent state")
        }
    }
}

/// Little-endian codec helpers for the mode state blobs.
mod state_codec {
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        put_u64(buf, v.to_bits());
    }

    pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
        let end = pos.checked_add(8).ok_or("mode state truncated")?;
        let b = bytes.get(*pos..end).ok_or("mode state truncated")?;
        *pos = end;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    pub fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, &'static str> {
        Ok(f64::from_bits(get_u64(bytes, pos)?))
    }
}

/// FedAvg (Eq. 1): weighted averaging by sample count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FedAvg;

impl AggregationMode for FedAvg {
    fn pre(&self, grad: &mut [f32], n_samples: u32) -> f64 {
        for g in grad.iter_mut() {
            *g *= n_samples as f32;
        }
        n_samples as f64
    }

    fn post<R: Rng>(&mut self, _entry_id: u64, agg: &mut [f32], weight: f64, _rng: &mut R) {
        if weight > 0.0 {
            let inv = (1.0 / weight) as f32;
            for g in agg.iter_mut() {
                *g *= inv;
            }
        }
    }
}

/// Server-side Adam (FedAdam) over FedAvg-style aggregates.
#[derive(Clone, Debug)]
pub struct FedAdam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    moments: HashMap<u64, (Vec<f64>, Vec<f64>, u64)>,
}

impl FedAdam {
    /// Creates FedAdam with the standard (β₁, β₂, ε) = (0.9, 0.999, 1e-8).
    pub fn new() -> Self {
        FedAdam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            moments: HashMap::new(),
        }
    }

    /// Number of entries with tracked moments.
    pub fn tracked_entries(&self) -> usize {
        self.moments.len()
    }
}

impl Default for FedAdam {
    fn default() -> Self {
        Self::new()
    }
}

impl AggregationMode for FedAdam {
    fn pre(&self, grad: &mut [f32], n_samples: u32) -> f64 {
        for g in grad.iter_mut() {
            *g *= n_samples as f32;
        }
        n_samples as f64
    }

    fn post<R: Rng>(&mut self, entry_id: u64, agg: &mut [f32], weight: f64, _rng: &mut R) {
        if weight > 0.0 {
            let inv = (1.0 / weight) as f32;
            for g in agg.iter_mut() {
                *g *= inv;
            }
        }
        let dim = agg.len();
        let (m, v, t) = self
            .moments
            .entry(entry_id)
            .or_insert_with(|| (vec![0.0; dim], vec![0.0; dim], 0));
        *t += 1;
        let bc1 = 1.0 - self.beta1.powi(*t as i32);
        let bc2 = 1.0 - self.beta2.powi(*t as i32);
        for i in 0..dim {
            let g = agg[i] as f64;
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            agg[i] = (m_hat / (v_hat.sqrt() + self.eps)) as f32;
        }
    }

    fn state_bytes(&self) -> Vec<u8> {
        use state_codec::{put_f64, put_u64};
        let mut buf = Vec::new();
        put_u64(&mut buf, self.moments.len() as u64);
        let mut ids: Vec<u64> = self.moments.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let (m, v, t) = &self.moments[&id];
            put_u64(&mut buf, id);
            put_u64(&mut buf, *t);
            put_u64(&mut buf, m.len() as u64);
            for &x in m {
                put_f64(&mut buf, x);
            }
            for &x in v {
                put_f64(&mut buf, x);
            }
        }
        buf
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        use state_codec::{get_f64, get_u64};
        let mut pos = 0usize;
        let count = get_u64(bytes, &mut pos)?;
        let mut moments = HashMap::new();
        for _ in 0..count {
            let id = get_u64(bytes, &mut pos)?;
            let t = get_u64(bytes, &mut pos)?;
            let dim = get_u64(bytes, &mut pos)? as usize;
            if dim > bytes.len() {
                return Err("mode state dimension implausible");
            }
            let mut m = Vec::with_capacity(dim);
            for _ in 0..dim {
                m.push(get_f64(bytes, &mut pos)?);
            }
            let mut v = Vec::with_capacity(dim);
            for _ in 0..dim {
                v.push(get_f64(bytes, &mut pos)?);
            }
            moments.insert(id, (m, v, t));
        }
        if pos != bytes.len() {
            return Err("mode state has trailing bytes");
        }
        self.moments = moments;
        Ok(())
    }
}

/// EANA: clip each client's gradient to ℓ₂ norm `C`, add `N(0, σ²C²)` to
/// the aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Eana {
    /// Clipping norm `C`.
    pub clip_norm: f32,
    /// Noise multiplier `σ`.
    pub sigma: f64,
}

impl Eana {
    /// Creates the mode.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `clip_norm` or negative `sigma`.
    pub fn new(clip_norm: f32, sigma: f64) -> Self {
        assert!(clip_norm > 0.0, "clip norm must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Eana { clip_norm, sigma }
    }
}

impl AggregationMode for Eana {
    fn pre(&self, grad: &mut [f32], _n_samples: u32) -> f64 {
        // Pre(x) = x / max(1, ‖x‖₂ / C)
        let norm = l2_norm(grad);
        let divisor = (norm / self.clip_norm).max(1.0);
        for g in grad.iter_mut() {
            *g /= divisor;
        }
        1.0
    }

    fn post<R: Rng>(&mut self, _entry_id: u64, agg: &mut [f32], weight: f64, rng: &mut R) {
        if weight > 0.0 {
            let inv = (1.0 / weight) as f32;
            for g in agg.iter_mut() {
                *g *= inv;
            }
        }
        let std = self.sigma * self.clip_norm as f64;
        for g in agg.iter_mut() {
            *g += (std * standard_normal(rng)) as f32;
        }
    }
}

/// LazyDP: EANA-style noise scaled by √r where `r` is the number of rounds
/// since the entry was last updated (so infrequently-touched entries get
/// the noise they "missed").
#[derive(Clone, Debug)]
pub struct LazyDp {
    inner: Eana,
    round: u64,
    last_updated: HashMap<u64, u64>,
}

impl LazyDp {
    /// Creates the mode.
    pub fn new(clip_norm: f32, sigma: f64) -> Self {
        LazyDp {
            inner: Eana::new(clip_norm, sigma),
            round: 0,
            last_updated: HashMap::new(),
        }
    }

    /// The staleness `r` an update to `entry_id` would see this round.
    pub fn staleness(&self, entry_id: u64) -> u64 {
        self.round - self.last_updated.get(&entry_id).copied().unwrap_or(0) + 1
    }
}

impl AggregationMode for LazyDp {
    fn pre(&self, grad: &mut [f32], n_samples: u32) -> f64 {
        self.inner.pre(grad, n_samples)
    }

    fn post<R: Rng>(&mut self, entry_id: u64, agg: &mut [f32], weight: f64, rng: &mut R) {
        if weight > 0.0 {
            let inv = (1.0 / weight) as f32;
            for g in agg.iter_mut() {
                *g *= inv;
            }
        }
        let r = self.staleness(entry_id);
        // Post(x) = x + N(0, r·σ²C²·I)
        let std = (r as f64).sqrt() * self.inner.sigma * self.inner.clip_norm as f64;
        for g in agg.iter_mut() {
            *g += (std * standard_normal(rng)) as f32;
        }
        self.last_updated.insert(entry_id, self.round + 1);
    }

    fn on_round_end(&mut self) {
        self.round += 1;
    }

    fn state_bytes(&self) -> Vec<u8> {
        use state_codec::put_u64;
        let mut buf = Vec::new();
        put_u64(&mut buf, self.round);
        put_u64(&mut buf, self.last_updated.len() as u64);
        let mut ids: Vec<u64> = self.last_updated.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            put_u64(&mut buf, id);
            put_u64(&mut buf, self.last_updated[&id]);
        }
        buf
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        use state_codec::get_u64;
        let mut pos = 0usize;
        let round = get_u64(bytes, &mut pos)?;
        let count = get_u64(bytes, &mut pos)?;
        let mut last_updated = HashMap::new();
        for _ in 0..count {
            let id = get_u64(bytes, &mut pos)?;
            last_updated.insert(id, get_u64(bytes, &mut pos)?);
        }
        if pos != bytes.len() {
            return Err("mode state has trailing bytes");
        }
        self.round = round;
        self.last_updated = last_updated;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn fedavg_weighted_average() {
        let mut mode = FedAvg;
        let mut r = rng();
        // Client A: grad [1,1], n=2. Client B: grad [4,0], n=1.
        let mut ga = vec![1.0, 1.0];
        let wa = mode.pre(&mut ga, 2);
        let mut gb = vec![4.0, 0.0];
        let wb = mode.pre(&mut gb, 1);
        let mut agg = vec![ga[0] + gb[0], ga[1] + gb[1]];
        mode.post(0, &mut agg, wa + wb, &mut r);
        assert!((agg[0] - 2.0).abs() < 1e-6); // (2*1 + 1*4)/3
        assert!((agg[1] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn fedavg_zero_weight_safe() {
        let mut mode = FedAvg;
        let mut r = rng();
        let mut agg = vec![0.0, 0.0];
        mode.post(0, &mut agg, 0.0, &mut r);
        assert_eq!(agg, vec![0.0, 0.0]);
    }

    #[test]
    fn eana_clips_large_gradients() {
        let mode = Eana::new(1.0, 0.0);
        let mut g = vec![3.0, 4.0]; // norm 5 -> clipped to norm 1
        mode.pre(&mut g, 10);
        assert!((l2_norm(&g) - 1.0).abs() < 1e-6);
        // Small gradients pass through.
        let mut g2 = vec![0.3, 0.4];
        mode.pre(&mut g2, 10);
        assert!((l2_norm(&g2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn eana_noise_statistics() {
        let mut mode = Eana::new(2.0, 1.5);
        let mut r = rng();
        let n = 5000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for i in 0..n {
            let mut agg = vec![0.0f32];
            mode.post(i, &mut agg, 1.0, &mut r);
            sum += agg[0] as f64;
            sumsq += (agg[0] as f64).powi(2);
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        let expected_var = (1.5f64 * 2.0).powi(2); // (σC)² = 9
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!(
            (var - expected_var).abs() < 1.0,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn lazydp_staleness_grows() {
        let mut mode = LazyDp::new(1.0, 1.0);
        let mut r = rng();
        assert_eq!(mode.staleness(5), 1);
        // Entry 5 updated in round 0.
        let mut agg = vec![0.0f32];
        mode.post(5, &mut agg, 1.0, &mut r);
        mode.on_round_end();
        mode.on_round_end();
        mode.on_round_end();
        // 3 rounds later, staleness is 3 + ... entry updated at round 1.
        assert_eq!(mode.staleness(5), 3);
        // Never-updated entry has staleness round+1.
        assert_eq!(mode.staleness(9), 4);
    }

    #[test]
    fn lazydp_noise_scales_with_staleness() {
        // With sigma=1, C=1: fresh entry gets var 1; stale-by-9 gets var 9.
        let mut r = rng();
        let n = 4000;
        let measure = |stale_rounds: u64, r: &mut StdRng| -> f64 {
            let mut sumsq = 0.0;
            for i in 0..n {
                let mut mode = LazyDp::new(1.0, 1.0);
                for _ in 0..stale_rounds {
                    mode.on_round_end();
                }
                let mut agg = vec![0.0f32];
                mode.post(i, &mut agg, 1.0, r);
                sumsq += (agg[0] as f64).powi(2);
            }
            sumsq / n as f64
        };
        let fresh = measure(0, &mut r);
        let stale = measure(8, &mut r);
        assert!((fresh - 1.0).abs() < 0.2, "fresh var {fresh}");
        assert!((stale - 9.0).abs() < 1.5, "stale var {stale}");
    }

    #[test]
    fn fedadam_normalizes_step_size() {
        let mut mode = FedAdam::new();
        let mut r = rng();
        // Repeated identical gradients: Adam step approaches ±1.
        let mut last = 0.0;
        for _ in 0..50 {
            let mut agg = vec![5.0f32];
            mode.post(3, &mut agg, 1.0, &mut r);
            last = agg[0];
        }
        assert!((last - 1.0).abs() < 0.1, "adam step {last}");
        assert_eq!(mode.tracked_entries(), 1);
    }

    #[test]
    fn fedadam_state_roundtrips_and_continues_identically() {
        let mut a = FedAdam::new();
        let mut r = rng();
        for _ in 0..5 {
            let mut agg = vec![2.0f32, -1.0];
            a.post(3, &mut agg, 1.0, &mut r);
        }
        let mut b = FedAdam::new();
        b.restore_state(&a.state_bytes()).unwrap();
        assert_eq!(b.tracked_entries(), 1);
        // Same next step from both copies.
        let mut r1 = rng();
        let mut r2 = rng();
        let mut x = vec![2.0f32, -1.0];
        let mut y = x.clone();
        a.post(3, &mut x, 1.0, &mut r1);
        b.post(3, &mut y, 1.0, &mut r2);
        assert_eq!(x, y);
    }

    #[test]
    fn lazydp_state_roundtrips_staleness() {
        let mut a = LazyDp::new(1.0, 1.0);
        let mut r = rng();
        let mut agg = vec![0.0f32];
        a.post(5, &mut agg, 1.0, &mut r);
        a.on_round_end();
        a.on_round_end();
        let mut b = LazyDp::new(1.0, 1.0);
        b.restore_state(&a.state_bytes()).unwrap();
        assert_eq!(b.staleness(5), a.staleness(5));
        assert_eq!(b.staleness(9), a.staleness(9));
    }

    #[test]
    fn stateless_modes_have_empty_state() {
        let mut avg = FedAvg;
        assert!(avg.state_bytes().is_empty());
        avg.restore_state(&[]).unwrap();
        assert!(avg.restore_state(&[1, 2, 3]).is_err());
        let mut truncated = FedAdam::new();
        assert!(truncated.restore_state(&[0u8; 4]).is_err());
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut r);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
