//! Target-aware attention pooling over history embeddings — the Deep
//! Interest Network (DIN) style head the paper's §2.1 model family
//! includes ("an MLP or a Transformer-like network").
//!
//! Mean pooling ([`crate::model::DlrmModel`]'s default) weighs every
//! history item equally; DIN-style attention scores each history item
//! against the *target* item and pools with softmax weights:
//!
//! ```text
//! q   = Q · e_target                      (learned query projection)
//! s_j = ⟨e_hist_j, q⟩ / √d                (relevance scores)
//! w   = softmax(s)
//! pooled = Σ_j w_j · e_hist_j
//! ```
//!
//! Everything is manual forward/backward with finite-difference-checked
//! gradients, like the rest of the substrate. From FEDORA's perspective
//! the pooling choice is client-side and invisible to the server: the
//! same embedding rows are downloaded/uploaded either way, so the ORAM
//! pipeline and the ε-FDP accounting are unchanged.

use crate::linalg::{dot, Matrix};

/// The attention head: one learned `d × d` query projection.
#[derive(Clone, Debug, PartialEq)]
pub struct AttentionPooling {
    q: Matrix,
}

/// Cached activations for the backward pass.
#[derive(Clone, Debug)]
pub struct AttentionCache {
    target: Vec<f32>,
    history: Vec<Vec<f32>>,
    query: Vec<f32>,
    weights: Vec<f32>,
}

impl AttentionCache {
    /// The softmax attention weights (one per history item).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

/// Gradients of one attention forward/backward.
#[derive(Clone, Debug)]
pub struct AttentionGrads {
    /// Gradient w.r.t. the query projection `Q`.
    pub d_q: Matrix,
    /// Gradient w.r.t. the target embedding.
    pub d_target: Vec<f32>,
    /// Gradient w.r.t. each history embedding.
    pub d_history: Vec<Vec<f32>>,
}

impl AttentionPooling {
    /// Creates the head with a near-identity initialization (attention
    /// starts close to dot-product relevance).
    pub fn new<R: rand::Rng>(dim: usize, rng: &mut R) -> Self {
        let scale = 0.05 / (dim as f32).sqrt();
        let q = Matrix::from_fn(dim, dim, |r, c| {
            let noise: f32 = rng.gen_range(-scale..scale);
            if r == c {
                1.0 + noise
            } else {
                noise
            }
        });
        AttentionPooling { q }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.q.rows()
    }

    /// The query projection (for optimizer updates).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Applies a gradient step to `Q`.
    pub fn apply(&mut self, alpha: f32, d_q: &Matrix) {
        self.q.add_scaled(alpha, d_q);
    }

    /// Forward pass: pools `history` embeddings with target-aware softmax
    /// attention. Empty histories pool to the zero vector.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward(&self, target: &[f32], history: &[Vec<f32>]) -> (Vec<f32>, AttentionCache) {
        let d = self.dim();
        assert_eq!(target.len(), d, "target dimension");
        for h in history {
            assert_eq!(h.len(), d, "history dimension");
        }
        if history.is_empty() {
            return (
                vec![0.0; d],
                AttentionCache {
                    target: target.to_vec(),
                    history: Vec::new(),
                    query: vec![0.0; d],
                    weights: Vec::new(),
                },
            );
        }
        let query = self.q.matvec(target);
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        let scores: Vec<f32> = history
            .iter()
            .map(|h| dot(h, &query) * inv_sqrt_d)
            .collect();
        // Stable softmax.
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let total: f32 = exps.iter().sum();
        let weights: Vec<f32> = exps.iter().map(|e| e / total).collect();
        let mut pooled = vec![0.0; d];
        for (w, h) in weights.iter().zip(history) {
            for (p, x) in pooled.iter_mut().zip(h) {
                *p += w * x;
            }
        }
        (
            pooled,
            AttentionCache {
                target: target.to_vec(),
                history: history.to_vec(),
                query,
                weights,
            },
        )
    }

    /// Backward pass: given `d_pooled = ∂L/∂pooled`, returns gradients for
    /// `Q`, the target embedding, and every history embedding.
    pub fn backward(&self, cache: &AttentionCache, d_pooled: &[f32]) -> AttentionGrads {
        let d = self.dim();
        assert_eq!(d_pooled.len(), d, "gradient dimension");
        let n = cache.history.len();
        if n == 0 {
            return AttentionGrads {
                d_q: Matrix::zeros(d, d),
                d_target: vec![0.0; d],
                d_history: Vec::new(),
            };
        }
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();

        // dL/dw_j = ⟨d_pooled, h_j⟩
        let dw: Vec<f32> = cache.history.iter().map(|h| dot(d_pooled, h)).collect();
        // Softmax Jacobian: dL/ds_j = w_j (dw_j − Σ_i w_i dw_i)
        let mix: f32 = cache.weights.iter().zip(&dw).map(|(w, g)| w * g).sum();
        let ds: Vec<f32> = cache
            .weights
            .iter()
            .zip(&dw)
            .map(|(w, g)| w * (g - mix))
            .collect();

        // dL/dh_j = w_j · d_pooled + ds_j · q / √d
        let d_history: Vec<Vec<f32>> = cache
            .history
            .iter()
            .enumerate()
            .map(|(j, _)| {
                let mut g = vec![0.0; d];
                for (gi, (dp, qi)) in g.iter_mut().zip(d_pooled.iter().zip(&cache.query)) {
                    *gi = cache.weights[j] * dp + ds[j] * qi * inv_sqrt_d;
                }
                g
            })
            .collect();

        // dL/dq = Σ_j ds_j · h_j / √d
        let mut d_query = vec![0.0; d];
        for (j, h) in cache.history.iter().enumerate() {
            for (dq, x) in d_query.iter_mut().zip(h) {
                *dq += ds[j] * x * inv_sqrt_d;
            }
        }
        // q = Q · target  ⇒  dL/dQ = d_query ⊗ targetᵀ, dL/dtarget = Qᵀ d_query
        let mut d_q = Matrix::zeros(d, d);
        d_q.add_outer(1.0, &d_query, &cache.target);
        let d_target = self.q.matvec_t(&d_query);

        AttentionGrads {
            d_q,
            d_target,
            d_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const D: usize = 6;

    fn setup(seed: u64) -> (AttentionPooling, Vec<f32>, Vec<Vec<f32>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let att = AttentionPooling::new(D, &mut rng);
        let target: Vec<f32> = (0..D).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let history: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..D).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
            .collect();
        (att, target, history, rng)
    }

    /// Scalar loss for gradient checking: L = Σ c_i · pooled_i.
    fn loss(att: &AttentionPooling, target: &[f32], history: &[Vec<f32>], c: &[f32]) -> f32 {
        let (pooled, _) = att.forward(target, history);
        dot(&pooled, c)
    }

    #[test]
    fn weights_are_a_distribution() {
        let (att, target, history, _) = setup(1);
        let (_, cache) = att.forward(&target, &history);
        let sum: f32 = cache.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(cache.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn pooled_is_convex_combination() {
        let (att, target, history, _) = setup(2);
        let (pooled, cache) = att.forward(&target, &history);
        // pooled must lie within the per-coordinate min/max of history.
        for i in 0..D {
            let lo = history.iter().map(|h| h[i]).fold(f32::INFINITY, f32::min);
            let hi = history
                .iter()
                .map(|h| h[i])
                .fold(f32::NEG_INFINITY, f32::max);
            assert!(
                pooled[i] >= lo - 1e-5 && pooled[i] <= hi + 1e-5,
                "coord {i}"
            );
        }
        assert_eq!(cache.weights().len(), history.len());
    }

    #[test]
    fn relevant_items_get_more_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        let att = AttentionPooling::new(D, &mut rng); // near-identity Q
        let target = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let aligned = target.clone();
        let orthogonal = vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let (_, cache) = att.forward(&target, &[aligned, orthogonal]);
        assert!(
            cache.weights()[0] > cache.weights()[1],
            "aligned item must dominate: {:?}",
            cache.weights()
        );
    }

    #[test]
    fn empty_history_pools_to_zero() {
        let (att, target, _, _) = setup(4);
        let (pooled, cache) = att.forward(&target, &[]);
        assert_eq!(pooled, vec![0.0; D]);
        let grads = att.backward(&cache, &[1.0; D]);
        assert!(grads.d_history.is_empty());
        assert_eq!(grads.d_target, vec![0.0; D]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (mut att, target, history, mut rng) = setup(5);
        let c: Vec<f32> = (0..D).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (pooled, cache) = att.forward(&target, &history);
        let _ = pooled;
        let grads = att.backward(&cache, &c);
        let eps = 1e-3f32;

        // Q[1][2]
        let orig = att.q.get(1, 2);
        att.q.set(1, 2, orig + eps);
        let lp = loss(&att, &target, &history, &c);
        att.q.set(1, 2, orig - eps);
        let lm = loss(&att, &target, &history, &c);
        att.q.set(1, 2, orig);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - grads.d_q.get(1, 2)).abs() < 5e-3,
            "dQ: fd={fd} analytic={}",
            grads.d_q.get(1, 2)
        );

        // target[3]
        let mut t2 = target.clone();
        t2[3] += eps;
        let lp = loss(&att, &t2, &history, &c);
        t2[3] = target[3] - eps;
        let lm = loss(&att, &t2, &history, &c);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - grads.d_target[3]).abs() < 5e-3,
            "dtarget: fd={fd} analytic={}",
            grads.d_target[3]
        );

        // history[2][1]
        let mut h2 = history.clone();
        h2[2][1] += eps;
        let lp = loss(&att, &target, &h2, &c);
        h2[2][1] = history[2][1] - eps;
        let lm = loss(&att, &target, &h2, &c);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - grads.d_history[2][1]).abs() < 5e-3,
            "dhist: fd={fd} analytic={}",
            grads.d_history[2][1]
        );
    }

    #[test]
    fn attention_is_trainable() {
        // Train Q so the pooled vector matches a fixed target vector from
        // a fixed input: loss must fall.
        let (mut att, target, history, mut rng) = setup(6);
        let goal: Vec<f32> = (0..D).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let mse = |att: &AttentionPooling| -> f32 {
            let (pooled, _) = att.forward(&target, &history);
            pooled
                .iter()
                .zip(&goal)
                .map(|(p, g)| (p - g) * (p - g))
                .sum()
        };
        let before = mse(&att);
        for _ in 0..200 {
            let (pooled, cache) = att.forward(&target, &history);
            let d_pooled: Vec<f32> = pooled
                .iter()
                .zip(&goal)
                .map(|(p, g)| 2.0 * (p - g))
                .collect();
            let grads = att.backward(&cache, &d_pooled);
            att.apply(-0.1, &grads.d_q);
        }
        let after = mse(&att);
        assert!(
            after < before,
            "training must reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn single_item_history_passthrough() {
        let (att, target, history, _) = setup(7);
        let solo = vec![history[0].clone()];
        let (pooled, cache) = att.forward(&target, &solo);
        assert_eq!(cache.weights(), &[1.0]);
        assert_eq!(pooled, history[0]);
    }
}
