//! Client-side local training (paper §2.2, step ⑤ of Figure 4).
//!
//! Each selected user downloads the dense model and the embedding rows
//! matching their private data, runs a few epochs of local SGD, and uploads
//! the *delta* between their trained weights and the downloaded ones (the
//! paper's "gradient", footnote 1).

use std::collections::HashMap;

use crate::datasets::Sample;
use crate::linalg::Matrix;
use crate::model::{DenseParams, DlrmModel};

/// One client's upload after local training.
#[derive(Clone, Debug)]
pub struct ClientUpdate {
    /// Delta of the dense parameters.
    pub dense_delta: DenseParams,
    /// Deltas of the public item-table rows this client touched.
    pub item_deltas: Vec<(u64, Vec<f32>)>,
    /// Deltas of the private history-table rows this client touched —
    /// these flow back through the buffer ORAM.
    pub history_deltas: Vec<(u64, Vec<f32>)>,
    /// Delta of the attention query projection (attention pooling only;
    /// a public dense parameter, aggregated conventionally).
    pub attention_delta: Option<Matrix>,
    /// Number of local samples (`n_t^c`, the FedAvg weight).
    pub n_samples: u32,
}

/// What a client does with a history entry the FDP mechanism lost
/// (§4.2's mitigation strategies: "using a random/default value or simply
/// dropping the corresponding training sample").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LostRowStrategy {
    /// Substitute the default (zero) vector — the paper prototype's
    /// choice.
    #[default]
    DefaultValue,
    /// Drop the lost feature value from the history entirely (the history
    /// shrinks; with a fully-lost history the sample effectively trains
    /// without the private branch).
    Drop,
}

/// Local-training hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalTrainer {
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local epochs over the user's samples.
    pub epochs: u32,
    /// Lost-entry mitigation.
    pub lost_rows: LostRowStrategy,
}

impl Default for LocalTrainer {
    fn default() -> Self {
        LocalTrainer {
            lr: 0.1,
            epochs: 1,
            lost_rows: LostRowStrategy::DefaultValue,
        }
    }
}

impl LocalTrainer {
    /// Runs local training for one client.
    ///
    /// `global` is the downloaded model snapshot. `history_rows` maps each
    /// history item id to the row downloaded through the buffer ORAM —
    /// `None` marks an entry lost to the FDP mechanism, for which the
    /// default-value strategy (zeros) applies. When `history_rows` is
    /// `None` entirely, the client uses the model's own table (the
    /// reference/non-ORAM path).
    ///
    /// Returns `None` if the client has no training samples (it then
    /// contributes nothing this round — a dropout).
    pub fn train(
        &self,
        global: &DlrmModel,
        samples: &[Sample],
        history: &[u64],
        history_rows: Option<&HashMap<u64, Option<Vec<f32>>>>,
    ) -> Option<ClientUpdate> {
        if samples.is_empty() {
            return None;
        }
        // Local copy of everything the client trains. Under the Drop
        // strategy, lost entries leave the effective history; under
        // DefaultValue they stay with a zero row.
        let mut effective_history: Vec<u64> = history.to_vec();
        let mut local = global.clone();
        if let Some(rows) = history_rows {
            let d = global.config().embedding_dim;
            if self.lost_rows == LostRowStrategy::Drop {
                effective_history.retain(|h| matches!(rows.get(h), Some(Some(_))));
            }
            for &h in &effective_history {
                match rows.get(&h) {
                    Some(Some(row)) => local.set_history_row(h, row),
                    // Lost entry: the default-value strategy (zeros).
                    Some(None) => local.set_history_row(h, &vec![0.0; d]),
                    // Not downloaded at all (shouldn't happen; be safe).
                    None => local.set_history_row(h, &vec![0.0; d]),
                }
            }
        }
        let history = &effective_history[..];

        let mut touched_items: Vec<u64> = Vec::new();
        for _ in 0..self.epochs {
            for s in samples {
                let cache = local.forward_local(s.target_item, history, s.dense);
                let grads = local.backward(&cache, s.label as u8 as f32);
                local.dense_mut().add_scaled(-self.lr, &grads.dense);
                local.update_item_row(grads.item_row.0, -self.lr, &grads.item_row.1);
                if !touched_items.contains(&grads.item_row.0) {
                    touched_items.push(grads.item_row.0);
                }
                for (id, g) in &grads.history_rows {
                    local.update_history_row(*id, -self.lr, g);
                }
                if let Some(d_q) = &grads.attention_q {
                    local.update_attention(-self.lr, d_q);
                }
            }
        }

        // Deltas vs. the downloaded snapshot.
        let mut dense_delta = local.dense().clone();
        dense_delta.add_scaled(-1.0, global.dense());

        let d = global.config().embedding_dim;
        let item_deltas: Vec<(u64, Vec<f32>)> = touched_items
            .into_iter()
            .map(|id| {
                let mut delta = local.item_row(id).to_vec();
                for (x, y) in delta.iter_mut().zip(global.item_row(id)) {
                    *x -= y;
                }
                (id, delta)
            })
            .collect();
        let history_deltas: Vec<(u64, Vec<f32>)> = history
            .iter()
            .map(|&id| {
                let mut delta = local.history_row(id).to_vec();
                // Delta vs what the client downloaded (which may be zeros
                // for lost entries) — the server applies it to the real row.
                let baseline: Vec<f32> = match history_rows {
                    Some(rows) => match rows.get(&id) {
                        Some(Some(row)) => row.clone(),
                        _ => vec![0.0; d],
                    },
                    None => global.history_row(id).to_vec(),
                };
                for (x, y) in delta.iter_mut().zip(&baseline) {
                    *x -= y;
                }
                (id, delta)
            })
            .collect();

        let attention_delta = match (local.attention(), global.attention()) {
            (Some(local_att), Some(global_att)) => {
                let mut delta = local_att.q().clone();
                delta.add_scaled(-1.0, global_att.q());
                Some(delta)
            }
            _ => None,
        };

        Some(ClientUpdate {
            dense_delta,
            item_deltas,
            history_deltas,
            attention_delta,
            n_samples: samples.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DlrmConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DlrmModel, Vec<Sample>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(11);
        let model = DlrmModel::new(DlrmConfig::tiny(64), &mut rng);
        let history = vec![3u64, 9, 17];
        let samples = vec![
            Sample {
                user: 0,
                target_item: 5,
                dense: 0.2,
                label: true,
            },
            Sample {
                user: 0,
                target_item: 8,
                dense: 0.2,
                label: false,
            },
            Sample {
                user: 0,
                target_item: 5,
                dense: 0.2,
                label: true,
            },
        ];
        (model, samples, history)
    }

    #[test]
    fn empty_samples_is_dropout() {
        let (model, _, history) = setup();
        let t = LocalTrainer::default();
        assert!(t.train(&model, &[], &history, None).is_none());
    }

    #[test]
    fn update_has_expected_shape() {
        let (model, samples, history) = setup();
        let t = LocalTrainer::default();
        let u = t.train(&model, &samples, &history, None).unwrap();
        assert_eq!(u.n_samples, 3);
        assert_eq!(u.history_deltas.len(), 3);
        let touched: Vec<u64> = u.item_deltas.iter().map(|(id, _)| *id).collect();
        assert!(touched.contains(&5) && touched.contains(&8));
        assert_eq!(u.item_deltas.len(), 2, "each item delta reported once");
    }

    #[test]
    fn deltas_are_nonzero_after_training() {
        let (model, samples, history) = setup();
        let t = LocalTrainer {
            lr: 0.2,
            epochs: 2,
            ..Default::default()
        };
        let u = t.train(&model, &samples, &history, None).unwrap();
        let dense_norm: f32 = u.dense_delta.w2.iter().map(|x| x * x).sum();
        assert!(dense_norm > 0.0, "dense delta must move");
        assert!(u
            .history_deltas
            .iter()
            .any(|(_, d)| d.iter().any(|&x| x != 0.0)));
    }

    #[test]
    fn applying_deltas_reduces_local_loss() {
        let (mut model, samples, history) = setup();
        let loss_before: f32 = samples
            .iter()
            .map(|s| {
                DlrmModel::bce_loss(
                    &model.forward_local(s.target_item, &history, s.dense),
                    s.label as u8 as f32,
                )
            })
            .sum();
        let t = LocalTrainer {
            lr: 0.2,
            epochs: 4,
            ..Default::default()
        };
        let u = t.train(&model, &samples, &history, None).unwrap();
        model.dense_mut().add_scaled(1.0, &u.dense_delta);
        for (id, delta) in &u.item_deltas {
            model.update_item_row(*id, 1.0, delta);
        }
        for (id, delta) in &u.history_deltas {
            model.update_history_row(*id, 1.0, delta);
        }
        let loss_after: f32 = samples
            .iter()
            .map(|s| {
                DlrmModel::bce_loss(
                    &model.forward_local(s.target_item, &history, s.dense),
                    s.label as u8 as f32,
                )
            })
            .sum();
        assert!(loss_after < loss_before, "{loss_before} -> {loss_after}");
    }

    #[test]
    fn downloaded_rows_override_table() {
        let (model, samples, history) = setup();
        let t = LocalTrainer::default();
        // Provide zero rows for everything: deltas are computed vs zeros.
        let rows: HashMap<u64, Option<Vec<f32>>> =
            history.iter().map(|&h| (h, Some(vec![0.0; 8]))).collect();
        let u_zero = t.train(&model, &samples, &history, Some(&rows)).unwrap();
        let u_table = t.train(&model, &samples, &history, None).unwrap();
        // Different baselines → different history deltas.
        assert_ne!(u_zero.history_deltas, u_table.history_deltas);
    }

    #[test]
    fn lost_rows_use_default_value() {
        let (model, samples, history) = setup();
        let t = LocalTrainer::default();
        let mut rows: HashMap<u64, Option<Vec<f32>>> = history
            .iter()
            .map(|&h| (h, Some(model.history_row(h).to_vec())))
            .collect();
        rows.insert(3, None); // entry 3 lost to FDP
        let u = t.train(&model, &samples, &history, Some(&rows)).unwrap();
        assert!(u.history_deltas.iter().any(|(id, _)| *id == 3));
    }

    #[test]
    fn drop_strategy_shrinks_history() {
        let (model, samples, history) = setup();
        let t = LocalTrainer {
            lost_rows: LostRowStrategy::Drop,
            ..Default::default()
        };
        let mut rows: HashMap<u64, Option<Vec<f32>>> = history
            .iter()
            .map(|&h| (h, Some(model.history_row(h).to_vec())))
            .collect();
        rows.insert(3, None); // entry 3 lost to FDP
        let u = t.train(&model, &samples, &history, Some(&rows)).unwrap();
        // The dropped entry produces no upload.
        assert!(!u.history_deltas.iter().any(|(id, _)| *id == 3));
        assert_eq!(u.history_deltas.len(), history.len() - 1);
    }

    #[test]
    fn drop_strategy_with_everything_lost_still_trains() {
        let (model, samples, history) = setup();
        let t = LocalTrainer {
            lost_rows: LostRowStrategy::Drop,
            ..Default::default()
        };
        let rows: HashMap<u64, Option<Vec<f32>>> = history.iter().map(|&h| (h, None)).collect();
        let u = t.train(&model, &samples, &history, Some(&rows)).unwrap();
        assert!(u.history_deltas.is_empty());
        // Dense model still moves (the sample trains without the branch).
        assert!(u.dense_delta.w2.iter().any(|&x| x != 0.0));
    }
}
