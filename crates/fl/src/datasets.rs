//! Synthetic dataset generators with MovieLens/Taobao/Kaggle-like
//! statistics.
//!
//! The real datasets are unavailable offline, and the FEDORA experiments
//! depend on two things the generators reproduce (DESIGN.md §2):
//!
//! 1. **Request statistics** — Zipf-skewed item popularity (duplicate rate
//!    across users drives the ε-FDP access reduction) and heavy-tailed
//!    per-user history lengths (what "hide # of priv vals" protects;
//!    Taobao's tail is extreme: many empty histories, a few huge ones).
//! 2. **Learnable signal in the private feature** — labels come from a
//!    *planted model*: each item has a latent vector `v_i`, each user an
//!    idiosyncratic taste vector `p_u ~ N(0, I)`. The user's history is
//!    drawn with probability ∝ popularity × exp(γ·⟨p_u, v_i⟩) — tastes
//!    shape behaviour — and the label of (user, target) mixes
//!    `⟨p_u, v_target⟩` with an item-popularity bias. The history is thus
//!    an *encoding* of the taste that a model with access to it can decode,
//!    while a model without it (the `pub` baseline) can only learn the
//!    popularity term — the Table 1 AUC gap appears by construction.

use rand::Rng;
use rand::SeedableRng;

use crate::modes::standard_normal;

/// One training/test sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The user this sample belongs to.
    pub user: u32,
    /// The (public) target item being scored.
    pub target_item: u64,
    /// The dense feature (e.g. normalized activity level).
    pub dense: f32,
    /// The click/like label.
    pub label: bool,
}

/// Per-user private data.
#[derive(Clone, Debug, PartialEq)]
pub struct UserData {
    /// The private behavioral history (item ids) — the feature FEDORA
    /// protects.
    pub history: Vec<u64>,
    /// Local training samples.
    pub train: Vec<Sample>,
}

/// Distribution of per-user history lengths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HistoryLen {
    /// Every user has exactly this many history items.
    Fixed(usize),
    /// Log-normal-ish heavy tail with an atom at zero: with probability
    /// `empty_prob` the history is empty; otherwise
    /// `len = clamp(round(exp(N(ln median, sigma))), 1, max)`.
    HeavyTail {
        /// Median length of the non-empty part.
        median: f64,
        /// Log-scale spread.
        sigma: f64,
        /// Hard cap.
        max: usize,
        /// Probability of an empty history.
        empty_prob: f64,
    },
}

/// Which public dataset a generator imitates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// MovieLens-20M-like: moderate skew, almost everyone has a history.
    MovieLens,
    /// Taobao-ads-like: extreme skew, many empty histories, huge tail.
    Taobao,
    /// Criteo-Kaggle-like: performance evaluation only (no user ids in the
    /// real dataset); mild skew.
    Kaggle,
}

impl DatasetKind {
    /// Human-readable name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::MovieLens => "MovieLens",
            DatasetKind::Taobao => "Taobao",
            DatasetKind::Kaggle => "Kaggle",
        }
    }
}

/// Generator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticConfig {
    /// Which dataset's statistics to imitate.
    pub kind: DatasetKind,
    /// Number of users.
    pub num_users: u32,
    /// Item-domain cardinality (embedding-table height).
    pub num_items: u64,
    /// Zipf exponent of item popularity.
    pub zipf_exponent: f64,
    /// History-length distribution.
    pub history_len: HistoryLen,
    /// Training samples per user.
    pub samples_per_user: usize,
    /// Held-out test samples (drawn across users).
    pub test_samples: usize,
    /// Strength of the private-preference term in the label model.
    pub preference_weight: f64,
    /// Strength of the public popularity term in the label model.
    pub popularity_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// MovieLens-like defaults at simulation scale.
    pub fn movielens_like() -> Self {
        SyntheticConfig {
            kind: DatasetKind::MovieLens,
            num_users: 512,
            num_items: 2048,
            zipf_exponent: 1.1,
            history_len: HistoryLen::HeavyTail {
                median: 30.0,
                sigma: 0.8,
                max: 200,
                empty_prob: 0.02,
            },
            samples_per_user: 16,
            test_samples: 4096,
            preference_weight: 4.0,
            popularity_weight: 1.0,
            seed: 0x4d4c_3230,
        }
    }

    /// Taobao-like defaults: extreme history skew.
    pub fn taobao_like() -> Self {
        SyntheticConfig {
            kind: DatasetKind::Taobao,
            num_users: 512,
            num_items: 2048,
            zipf_exponent: 1.3,
            history_len: HistoryLen::HeavyTail {
                median: 6.0,
                sigma: 1.6,
                max: 400,
                empty_prob: 0.35,
            },
            samples_per_user: 16,
            test_samples: 4096,
            preference_weight: 1.5,
            popularity_weight: 1.0,
            seed: 0x54414f,
        }
    }

    /// Kaggle-like defaults (performance evaluation only).
    pub fn kaggle_like() -> Self {
        SyntheticConfig {
            kind: DatasetKind::Kaggle,
            num_users: 512,
            num_items: 4096,
            zipf_exponent: 1.05,
            history_len: HistoryLen::Fixed(24),
            samples_per_user: 16,
            test_samples: 2048,
            preference_weight: 2.0,
            popularity_weight: 1.0,
            seed: 0x4b4147,
        }
    }
}

/// A sampler for Zipf-distributed item ids via inverse-CDF table.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF for `n` items with exponent `s` (`P(i) ∝ (i+1)^−s`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Samples one item id.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// The generated dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    config: SyntheticConfig,
    users: Vec<UserData>,
    test: Vec<Sample>,
}

impl Dataset {
    /// Generates the dataset deterministically from its config seed.
    pub fn generate(config: SyntheticConfig) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let latent_dim = 8usize;
        // Planted item latents (unit-ish scale) and popularity biases.
        let latents: Vec<Vec<f64>> = (0..config.num_items)
            .map(|_| {
                (0..latent_dim)
                    .map(|_| standard_normal(&mut rng) / (latent_dim as f64).sqrt())
                    .collect()
            })
            .collect();
        let popularity: Vec<f64> = (0..config.num_items)
            .map(|_| standard_normal(&mut rng))
            .collect();
        let zipf = ZipfSampler::new(config.num_items, config.zipf_exponent);
        // Base Zipf weights for taste-biased history sampling.
        let zipf_weight: Vec<f64> = (0..config.num_items)
            .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf_exponent))
            .collect();
        const TASTE_BIAS: f64 = 3.0; // γ: how strongly taste shapes history

        let mut users = Vec::with_capacity(config.num_users as usize);
        let mut tastes = Vec::with_capacity(config.num_users as usize);
        for user in 0..config.num_users {
            // Idiosyncratic user taste.
            let taste: Vec<f64> = (0..latent_dim).map(|_| standard_normal(&mut rng)).collect();

            let len = match config.history_len {
                HistoryLen::Fixed(n) => n,
                HistoryLen::HeavyTail {
                    median,
                    sigma,
                    max,
                    empty_prob,
                } => {
                    if rng.gen::<f64>() < empty_prob {
                        0
                    } else {
                        let ln_len = median.ln() + sigma * standard_normal(&mut rng);
                        (ln_len.exp().round() as usize).clamp(1, max)
                    }
                }
            };
            // History ∝ popularity × exp(γ·⟨taste, latent⟩): behaviour
            // encodes taste.
            let mut history: Vec<u64> = if len > 0 {
                let weights: Vec<f64> = (0..config.num_items as usize)
                    .map(|i| {
                        let aff: f64 = taste.iter().zip(&latents[i]).map(|(a, b)| a * b).sum();
                        zipf_weight[i] * (TASTE_BIAS * aff).exp()
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut cdf = Vec::with_capacity(weights.len());
                let mut acc = 0.0;
                for w in &weights {
                    acc += w / total;
                    cdf.push(acc);
                }
                (0..len)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        cdf.partition_point(|&c| c < u) as u64
                    })
                    .collect()
            } else {
                Vec::new()
            };
            history.sort_unstable();
            history.dedup();

            let dense: f32 = (history.len() as f32 / 50.0).min(2.0);
            let make_sample = |rng: &mut rand::rngs::StdRng| {
                let target = zipf.sample(rng);
                let affinity: f64 = taste
                    .iter()
                    .zip(&latents[target as usize])
                    .map(|(p, v)| p * v)
                    .sum();
                let score = config.preference_weight * affinity
                    + config.popularity_weight * popularity[target as usize]
                    + 0.5 * standard_normal(rng);
                let p = 1.0 / (1.0 + (-score).exp());
                Sample {
                    user,
                    target_item: target,
                    dense,
                    label: rng.gen::<f64>() < p,
                }
            };
            let train: Vec<Sample> = (0..config.samples_per_user)
                .map(|_| make_sample(&mut rng))
                .collect();
            users.push(UserData { history, train });
            tastes.push(taste);
        }

        // Test set: fresh samples from random users (their histories known).
        let mut test = Vec::with_capacity(config.test_samples);
        for _ in 0..config.test_samples {
            let user = rng.gen_range(0..config.num_users);
            let ud = &users[user as usize];
            let taste = &tastes[user as usize];
            let target = zipf.sample(&mut rng);
            let affinity: f64 = taste
                .iter()
                .zip(&latents[target as usize])
                .map(|(p, v)| p * v)
                .sum();
            let score = config.preference_weight * affinity
                + config.popularity_weight * popularity[target as usize]
                + 0.5 * standard_normal(&mut rng);
            let p = 1.0 / (1.0 + (-score).exp());
            test.push(Sample {
                user,
                target_item: target,
                dense: (ud.history.len() as f32 / 50.0).min(2.0),
                label: rng.gen::<f64>() < p,
            });
        }

        Dataset {
            config,
            users,
            test,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// All users.
    pub fn users(&self) -> &[UserData] {
        &self.users
    }

    /// One user's data.
    pub fn user(&self, id: u32) -> &UserData {
        &self.users[id as usize]
    }

    /// The held-out test set.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// The reserved dummy feature value used to pad histories in the
    /// "hide # of priv vals" mode (§3.1). All users share it, so padding
    /// requests collapse to one union entry.
    pub fn dummy_value(&self) -> u64 {
        self.config.num_items - 1
    }

    /// Pads or subsamples a user's history to exactly `n` request ids, for
    /// the "hide # of priv vals" mode: real ids first, then the shared
    /// reserved dummy value. Returns `(request_ids, real_count)` — the
    /// first `real_count` ids are genuine.
    pub fn padded_history<R: Rng>(&self, user: u32, n: usize, _rng: &mut R) -> (Vec<u64>, usize) {
        let hist = &self.users[user as usize].history;
        if hist.len() >= n {
            (hist[..n].to_vec(), n)
        } else {
            let mut out = hist.clone();
            out.resize(n, self.dummy_value());
            (out, hist.len())
        }
    }

    /// Mean and maximum history length — the skew statistics that drive
    /// the "hide #" results.
    pub fn history_stats(&self) -> (f64, usize) {
        let max = self
            .users
            .iter()
            .map(|u| u.history.len())
            .max()
            .unwrap_or(0);
        let mean = self.users.iter().map(|u| u.history.len()).sum::<usize>() as f64
            / self.users.len().max(1) as f64;
        (mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(
            counts[0] > counts[99] * 5,
            "head {} tail {}",
            counts[0],
            counts[99]
        );
        // All ids reachable in principle; none out of range.
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(SyntheticConfig::movielens_like());
        let b = Dataset::generate(SyntheticConfig::movielens_like());
        assert_eq!(a.user(0).history, b.user(0).history);
        assert_eq!(a.test()[0], b.test()[0]);
    }

    #[test]
    fn movielens_mostly_nonempty_histories() {
        let d = Dataset::generate(SyntheticConfig::movielens_like());
        let empty = d.users().iter().filter(|u| u.history.is_empty()).count();
        assert!(empty < d.users().len() / 10, "{empty} empty histories");
    }

    #[test]
    fn taobao_has_extreme_skew() {
        let d = Dataset::generate(SyntheticConfig::taobao_like());
        let empty = d.users().iter().filter(|u| u.history.is_empty()).count();
        assert!(empty > d.users().len() / 5, "only {empty} empty histories");
        let (mean, max) = d.history_stats();
        assert!(
            max as f64 > 8.0 * mean,
            "max {max} mean {mean} not heavy-tailed"
        );
    }

    #[test]
    fn labels_are_informative() {
        // Users with similar histories should have correlated labels for
        // the same target — proxy: both classes exist and neither is rare.
        let d = Dataset::generate(SyntheticConfig::movielens_like());
        let pos = d.test().iter().filter(|s| s.label).count();
        let frac = pos as f64 / d.test().len() as f64;
        assert!(frac > 0.2 && frac < 0.8, "label balance {frac}");
    }

    #[test]
    fn padded_history_shapes() {
        let d = Dataset::generate(SyntheticConfig::taobao_like());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for user in 0..20u32 {
            let (reqs, real) = d.padded_history(user, 100, &mut rng);
            assert_eq!(reqs.len(), 100);
            assert!(real <= 100);
            assert_eq!(&reqs[..real.min(reqs.len())], &d.user(user).history[..real]);
            assert!(reqs.iter().all(|&r| r < d.config().num_items));
        }
    }

    #[test]
    fn samples_reference_valid_items() {
        let d = Dataset::generate(SyntheticConfig::kaggle_like());
        for u in d.users() {
            for s in &u.train {
                assert!(s.target_item < d.config().num_items);
            }
            for &h in &u.history {
                assert!(h < d.config().num_items);
            }
        }
    }

    #[test]
    fn histories_are_deduplicated() {
        let d = Dataset::generate(SyntheticConfig::movielens_like());
        for u in d.users() {
            let mut h = u.history.clone();
            h.dedup();
            assert_eq!(h.len(), u.history.len(), "history has duplicates");
        }
    }
}
