//! Hierarchical causal span tracing.
//!
//! Tracing rides on the same [`Registry`](crate::Registry) as the metrics:
//! when enabled ([`Registry::set_tracing`](crate::Registry::set_tracing)),
//! every [`TraceSpan`] emits a `trace.begin` event on open and a `trace.end`
//! event on drop into the bounded journal, carrying a registry-unique span
//! id, the id of the innermost span still open *on the same thread*
//! (`parent`, 0 for roots), a synthetic thread id, and a nanosecond
//! timestamp relative to the registry's epoch. Instrumented device models
//! additionally emit `trace.io` point records that attribute *simulated*
//! latency (the modeled device time, not host wall time) to the span that
//! caused the I/O.
//!
//! Parent attribution uses a thread-local span stack, so spans nest
//! correctly per thread without any coordination; concurrent threads over
//! one registry interleave in the journal but never corrupt each other's
//! ancestry. A span should be dropped on the thread that opened it — a
//! cross-thread drop still emits a well-formed `trace.end` but leaves the
//! origin thread's stack entry to be cleaned up lazily.
//!
//! When tracing is disabled (the default) opening a span is one relaxed
//! atomic load returning an inert guard, preserving the bounded-overhead
//! contract of the disabled registry.
//!
//! The journal snapshot exports to Chrome trace-event JSON via
//! [`Snapshot::to_chrome_trace`](crate::Snapshot::to_chrome_trace), loadable
//! in Perfetto or `chrome://tracing`.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::journal::Value;
use crate::registry::Registry;

/// Process-wide source of unique tracer identities, so thread-local stacks
/// can tell spans of independent registries apart.
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide source of synthetic thread ids (std's `ThreadId` exposes no
/// stable integer). Ids are dense from 1 in first-use order per process.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of `(tracer id, span id)` for open spans on this thread.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Lazily assigned synthetic id for this thread (0 = unassigned).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Synthetic id of the calling thread, assigning one on first use.
pub(crate) fn current_thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let mut id = cell.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
        }
        id
    })
}

/// Innermost open span of `tracer` on this thread (0 when none).
fn current_parent(tracer: u64) -> u64 {
    SPAN_STACK.with(|stack| {
        stack
            .borrow()
            .iter()
            .rev()
            .find(|&&(t, _)| t == tracer)
            .map_or(0, |&(_, id)| id)
    })
}

fn push_span(tracer: u64, span: u64) {
    SPAN_STACK.with(|stack| stack.borrow_mut().push((tracer, span)));
}

/// Removes the innermost matching entry; tolerates out-of-order or
/// cross-thread drops (the entry is simply absent then).
fn pop_span(tracer: u64, span: u64) {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&(t, s)| t == tracer && s == span) {
            stack.remove(pos);
        }
    });
}

/// Per-registry tracing state (lives inside the registry's shared inner).
#[derive(Debug)]
pub(crate) struct TracerCore {
    /// Identity distinguishing this registry's spans on thread-local stacks.
    id: u64,
    /// Whether spans currently record (off by default).
    enabled: AtomicBool,
    /// Timestamp origin for all `t` fields of this registry.
    epoch: Instant,
    /// Next span id (dense from 1; 0 means "no parent").
    next_span: AtomicU64,
}

impl Default for TracerCore {
    fn default() -> Self {
        TracerCore {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
        }
    }
}

impl TracerCore {
    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }
}

/// Drop guard for one traced scope.
///
/// Obtained from [`Registry::trace_span`](crate::Registry::trace_span) (or
/// implicitly through [`Registry::span`](crate::Registry::span)). Emits
/// `trace.end` on drop; attributes added with [`TraceSpan::attr`] ride on
/// the end record, which is how abort paths mark unwound spans
/// (`aborted=1`).
#[derive(Debug, Default)]
pub struct TraceSpan {
    /// `None` for inert guards (tracing off / disabled registry).
    registry: Option<Registry>,
    tracer: u64,
    id: u64,
    name: String,
    end_fields: Vec<(String, Value)>,
}

impl TraceSpan {
    /// An inert guard that records nothing.
    pub(crate) fn inert() -> Self {
        TraceSpan::default()
    }

    /// Opens a span, emitting `trace.begin` and pushing the thread-local
    /// stack. Returns an inert guard when tracing is off.
    pub(crate) fn begin(registry: &Registry, name: &str, attrs: &[(&str, Value)]) -> Self {
        TraceSpan::begin_impl(registry, None, name, attrs)
    }

    /// Opens a span under an **explicit** parent span id instead of the
    /// innermost span on this thread. This is how worker threads keep the
    /// causal tree connected: the dispatching thread captures its open
    /// span's [`TraceSpan::id`] before fan-out and each worker roots its
    /// spans under it, so Perfetto still shows one tree. The new span is
    /// pushed on the *worker's* stack, so spans nested inside it parent
    /// normally.
    pub(crate) fn begin_under(
        registry: &Registry,
        parent: u64,
        name: &str,
        attrs: &[(&str, Value)],
    ) -> Self {
        TraceSpan::begin_impl(registry, Some(parent), name, attrs)
    }

    fn begin_impl(
        registry: &Registry,
        parent: Option<u64>,
        name: &str,
        attrs: &[(&str, Value)],
    ) -> Self {
        let Some(core) = registry.tracer_core() else {
            return TraceSpan::inert();
        };
        if !core.is_enabled() {
            return TraceSpan::inert();
        }
        let tracer = core.id;
        let id = core.next_span_id();
        let mut fields: Vec<(&str, Value)> = Vec::with_capacity(5 + attrs.len());
        fields.push(("span", id.into()));
        fields.push((
            "parent",
            parent.unwrap_or_else(|| current_parent(tracer)).into(),
        ));
        fields.push(("name", name.into()));
        fields.push(("tid", current_thread_id().into()));
        fields.push(("t", core.now_ns().into()));
        fields.extend(attrs.iter().map(|(k, v)| (*k, v.clone())));
        registry.event("trace.begin", &fields);
        push_span(tracer, id);
        TraceSpan {
            registry: Some(registry.clone()),
            tracer,
            id,
            name: name.to_string(),
            end_fields: Vec::new(),
        }
    }

    /// Whether this guard will emit a `trace.end` record.
    pub fn is_recording(&self) -> bool {
        self.registry.is_some()
    }

    /// This span's id (0 for inert guards).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a key=value attribute to the eventual `trace.end` record.
    pub fn attr(&mut self, key: &str, value: impl Into<Value>) {
        if self.registry.is_some() {
            self.end_fields.push((key.to_string(), value.into()));
        }
    }

    /// Ends the span now (same as dropping it).
    pub fn end(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(registry) = self.registry.take() else {
            return;
        };
        pop_span(self.tracer, self.id);
        let Some(core) = registry.tracer_core() else {
            return;
        };
        let mut fields: Vec<(&str, Value)> = Vec::with_capacity(4 + self.end_fields.len());
        fields.push(("span", self.id.into()));
        fields.push(("name", self.name.as_str().into()));
        fields.push(("tid", current_thread_id().into()));
        fields.push(("t", core.now_ns().into()));
        fields.extend(self.end_fields.iter().map(|(k, v)| (k.as_str(), v.clone())));
        registry.event("trace.end", &fields);
    }
}

/// Emits a `trace.io` point record attributing `sim_ns` of *simulated*
/// device latency to the innermost open span on this thread.
pub(crate) fn io_event(registry: &Registry, stream: &str, sim_ns: u64, pages: u64, bytes: u64) {
    let Some(core) = registry.tracer_core() else {
        return;
    };
    if !core.is_enabled() {
        return;
    }
    registry.event(
        "trace.io",
        &[
            ("span", core.next_span_id().into()),
            ("parent", current_parent(core.id).into()),
            ("name", stream.into()),
            ("tid", current_thread_id().into()),
            ("t", core.now_ns().into()),
            ("dur", sim_ns.into()),
            ("pages", pages.into()),
            ("bytes", bytes.into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;

    fn traced_registry() -> Registry {
        let r = Registry::new();
        r.set_tracing(true);
        r
    }

    fn field_u64(e: &Event, name: &str) -> u64 {
        match e.field(name) {
            Some(Value::U64(v)) => *v,
            other => panic!("field {name} not a u64: {other:?}"),
        }
    }

    #[test]
    fn spans_emit_begin_end_with_parentage() {
        let r = traced_registry();
        {
            let _outer = r.trace_span("round");
            let _inner = r.trace_span_with("oram.access", &[("kind", "ao".into())]);
        }
        let events = r.snapshot().events;
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["trace.begin", "trace.begin", "trace.end", "trace.end"]
        );
        let outer_id = field_u64(&events[0], "span");
        assert_eq!(field_u64(&events[0], "parent"), 0);
        assert_eq!(field_u64(&events[1], "parent"), outer_id);
        assert_eq!(events[1].field("kind"), Some(&Value::Str("ao".into())));
        // LIFO close order: inner ends first.
        assert_eq!(field_u64(&events[2], "span"), field_u64(&events[1], "span"));
        assert_eq!(field_u64(&events[3], "span"), outer_id);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let r = Registry::new();
        assert!(!r.tracing_enabled());
        let span = r.trace_span("quiet");
        assert!(!span.is_recording());
        drop(span);
        r.trace_io("storage.read", 100, 1, 4096);
        assert!(r.snapshot().events.is_empty());

        let off = Registry::disabled();
        off.set_tracing(true);
        assert!(!off.tracing_enabled());
        assert!(!off.trace_span("quiet").is_recording());
    }

    #[test]
    fn end_attributes_ride_on_trace_end() {
        let r = traced_registry();
        let mut span = r.trace_span("round");
        span.attr("aborted", true);
        span.end();
        let events = r.snapshot().events;
        let end = events.iter().find(|e| e.name == "trace.end").unwrap();
        assert_eq!(end.field("aborted"), Some(&Value::U64(1)));
    }

    #[test]
    fn io_events_attribute_to_innermost_span() {
        let r = traced_registry();
        let span = r.trace_span("oram.eviction");
        r.trace_io("storage.write", 25_000, 2, 8192);
        drop(span);
        let events = r.snapshot().events;
        let io = events.iter().find(|e| e.name == "trace.io").unwrap();
        assert_eq!(field_u64(io, "parent"), 1);
        assert_eq!(field_u64(io, "dur"), 25_000);
        assert_eq!(field_u64(io, "pages"), 2);
        assert_eq!(field_u64(io, "bytes"), 8192);
    }

    #[test]
    fn spans_nest_independently_across_threads() {
        let r = traced_registry();
        let spawn = |seed: u64| {
            let r = r.clone();
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let outer = r.trace_span("outer");
                    let inner = r.trace_span("inner");
                    let _ = seed;
                    drop(inner);
                    drop(outer);
                }
            })
        };
        let handles = [spawn(1), spawn(2)];
        for h in handles {
            h.join().unwrap();
        }
        let events = r.snapshot().events;
        // Per-thread: every "inner" begin's parent is an "outer" span opened
        // on the *same* thread, and every "outer" is a root.
        let mut outer_spans: std::collections::HashMap<u64, u64> = Default::default();
        for e in events.iter().filter(|e| e.name == "trace.begin") {
            let tid = field_u64(e, "tid");
            let span = field_u64(e, "span");
            let parent = field_u64(e, "parent");
            match e.field("name") {
                Some(Value::Str(n)) if n == "outer" => {
                    assert_eq!(parent, 0, "outer span must be a root");
                    outer_spans.insert(span, tid);
                }
                Some(Value::Str(n)) if n == "inner" => {
                    assert_eq!(
                        outer_spans.get(&parent),
                        Some(&tid),
                        "inner's parent must be an outer from the same thread"
                    );
                }
                other => panic!("unexpected span name {other:?}"),
            }
        }
        // Both threads contributed under distinct tids.
        let tids: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.name == "trace.begin")
            .map(|e| field_u64(e, "tid"))
            .collect();
        assert_eq!(tids.len(), 2);
        // Every span closed: 32 begins, 32 ends.
        assert_eq!(events.iter().filter(|e| e.name == "trace.end").count(), 32);
    }

    #[test]
    fn explicit_parent_connects_worker_spans_across_threads() {
        let r = traced_registry();
        let round = r.trace_span("round");
        let parent = round.id();
        let handles: Vec<_> = (0..3)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let worker = r.trace_span_under(parent, "worker");
                    // Children opened inside the worker nest under it via
                    // the worker thread's own stack.
                    let _inner = r.trace_span("inner");
                    let _ = (w, worker);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(round);
        let events = r.snapshot().events;
        let begins: Vec<_> = events.iter().filter(|e| e.name == "trace.begin").collect();
        let mut worker_ids = std::collections::HashSet::new();
        for e in &begins {
            match e.field("name") {
                Some(Value::Str(n)) if n == "worker" => {
                    assert_eq!(field_u64(e, "parent"), parent, "worker roots under round");
                    worker_ids.insert(field_u64(e, "span"));
                }
                _ => {}
            }
        }
        assert_eq!(worker_ids.len(), 3);
        for e in &begins {
            if let Some(Value::Str(n)) = e.field("name") {
                if n == "inner" {
                    assert!(
                        worker_ids.contains(&field_u64(e, "parent")),
                        "inner spans nest under their worker span"
                    );
                }
            }
        }
    }

    #[test]
    fn independent_registries_do_not_share_ancestry() {
        let a = traced_registry();
        let b = traced_registry();
        let _span_a = a.trace_span("a.root");
        let span_b = b.trace_span("b.root");
        drop(span_b);
        let events = b.snapshot().events;
        assert_eq!(
            field_u64(&events[0], "parent"),
            0,
            "b must not parent under a"
        );
    }

    #[test]
    fn legacy_span_emits_trace_records_when_enabled() {
        let r = traced_registry();
        {
            let _scope = r.span("oram.eviction");
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.histogram("oram.eviction.latency").map(|h| h.count),
            Some(1)
        );
        let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["trace.begin", "trace.end"]);
    }
}
