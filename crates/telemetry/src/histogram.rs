//! Log-bucketed histograms with percentile summaries.
//!
//! Values (typically latencies in nanoseconds) are binned into 64
//! power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 also
//! absorbs zero). Recording is a handful of relaxed atomic ops, so histograms
//! are safe to feed from hot paths; summaries are computed lazily at
//! snapshot time by nearest-rank selection with linear interpolation inside
//! the winning bucket, which keeps every reported percentile within one
//! bucket width of the exact sample quantile.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of logarithmic buckets per histogram (one per power of two of
/// `u64`, so any nanosecond latency or byte count fits without clamping).
pub const NUM_BUCKETS: usize = 64;

/// Maps a value to its bucket index: `v ∈ [2^i, 2^(i+1)) → i`, with 0
/// sharing bucket 0.
pub fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    let lo = if index == 0 { 0 } else { 1u64 << index };
    let hi = if index >= 63 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    };
    (lo, hi)
}

/// Shared lock-free storage behind [`Histogram`] handles.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Last exemplar id recorded into each bucket (0 = none). Last-writer
    /// wins: an exemplar is a *representative* sample, not an aggregate.
    exemplars: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn record_with_exemplar(&self, value: u64, exemplar: u64) {
        self.record(value);
        if exemplar != 0 {
            self.exemplars[bucket_index(value)].store(exemplar, Ordering::Relaxed);
        }
    }

    /// Point-in-time summary. The bucket array is copied first and the count
    /// derived from the copy, so the percentile walk is self-consistent even
    /// if other threads keep recording.
    pub(crate) fn summary(&self) -> HistogramSummary {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return HistogramSummary::default();
        }
        let exemplars: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.exemplars[i].load(Ordering::Relaxed));
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: quantile(&buckets, count, min, max, 0.50),
            p95: quantile(&buckets, count, min, max, 0.95),
            p99: quantile(&buckets, count, min, max, 0.99),
            buckets,
            exemplars,
        }
    }
}

/// Nearest-rank quantile with linear interpolation inside the winning
/// bucket. The estimate always lands in the same bucket as the exact sample
/// quantile, so the error is bounded by that bucket's width.
pub(crate) fn quantile(
    buckets: &[u64; NUM_BUCKETS],
    count: u64,
    min: u64,
    max: u64,
    q: f64,
) -> u64 {
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c > 0 && cum + c >= rank {
            let (lo, hi) = bucket_bounds(i);
            let frac = (rank - cum) as f64 / c as f64;
            let est = lo as f64 + (hi - lo) as f64 * frac;
            // Tighten to the observed range without leaving the bucket
            // (max/min chained instead of clamp: racy min/max must not panic).
            return (est as u64).max(min.max(lo)).min(max.min(hi)).max(lo);
        }
        cum += c;
    }
    max
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wraps on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Raw per-bucket counts (see [`bucket_bounds`]). Carried on the
    /// summary so interval views ([`HistogramSummary::delta`]) can
    /// recompute percentiles over just the new samples; the exporters
    /// serialize only the named summary fields.
    pub buckets: [u64; NUM_BUCKETS],
    /// Last exemplar id seen per bucket (0 = none), recorded via
    /// [`Histogram::record_with_exemplar`]. Exemplar ids are opaque — the
    /// net layer stores request trace ids here so a tail-latency bucket can
    /// be followed back to the span that produced it.
    pub exemplars: [u64; NUM_BUCKETS],
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p95: 0,
            p99: 0,
            buckets: [0; NUM_BUCKETS],
            exemplars: [0; NUM_BUCKETS],
        }
    }
}

impl HistogramSummary {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The exemplar id attached to the bucket holding the p99 estimate, or —
    /// if that bucket carries none — the nearest occupied higher bucket's
    /// exemplar. Returns 0 when no tail exemplar exists.
    pub fn p99_exemplar(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let start = bucket_index(self.p99.max(1));
        for i in start..NUM_BUCKETS {
            if self.exemplars[i] != 0 {
                return self.exemplars[i];
            }
        }
        0
    }

    /// Interval view: the samples recorded *after* `earlier` was taken,
    /// assuming `earlier` is an older summary of the same histogram.
    ///
    /// Per-bucket counts subtract with saturation, so a histogram that was
    /// reset between the two snapshots degrades to an empty (or partial)
    /// interval instead of wrapping. Percentiles are recomputed over the
    /// subtracted buckets; the interval min/max are bounded by the occupied
    /// delta buckets tightened against the cumulative observed range (the
    /// exact interval extrema are not recoverable from bucketed state).
    pub fn delta(&self, earlier: &HistogramSummary) -> HistogramSummary {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return HistogramSummary::default();
        }
        // Exemplars survive only in buckets that saw interval traffic; the
        // latest writer is by construction from the later snapshot.
        let mut exemplars = [0u64; NUM_BUCKETS];
        for (i, slot) in exemplars.iter_mut().enumerate() {
            if buckets[i] > 0 {
                *slot = self.exemplars[i];
            }
        }
        let first = buckets.iter().position(|&c| c > 0).unwrap_or(0);
        let last = buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(NUM_BUCKETS - 1);
        let min = bucket_bounds(first).0.max(self.min);
        let max = bucket_bounds(last).1.min(self.max);
        HistogramSummary {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
            p50: quantile(&buckets, count, min, max, 0.50),
            p95: quantile(&buckets, count, min, max, 0.95),
            p99: quantile(&buckets, count, min, max, 0.99),
            buckets,
            exemplars,
        }
    }
}

/// Cheap cloneable handle to a registered histogram.
///
/// A default-constructed (or [`Histogram::noop`]) handle drops every record
/// on the floor — this is the disabled-registry fast path.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A handle that discards all records.
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    pub(crate) fn from_core(core: Arc<HistogramCore>) -> Self {
        Histogram { core: Some(core) }
    }

    /// Whether records actually land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Records one value and tags its bucket with an exemplar id (0 means
    /// "no exemplar" and leaves any previous tag in place).
    pub fn record_with_exemplar(&self, value: u64, exemplar: u64) {
        if let Some(core) = &self.core {
            core.record_with_exemplar(value, exemplar);
        }
    }

    /// Starts a drop-guard timer that records elapsed nanoseconds into this
    /// histogram when dropped. On a no-op handle the clock is never read.
    pub fn start_timer(&self) -> Timer {
        Timer {
            start: self.core.is_some().then(Instant::now),
            hist: self.clone(),
        }
    }

    /// Current summary (all zeros for a no-op handle).
    pub fn summary(&self) -> HistogramSummary {
        self.core.as_ref().map(|c| c.summary()).unwrap_or_default()
    }
}

/// Drop guard recording elapsed wall time (monotonic clock, nanoseconds)
/// into a [`Histogram`].
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stops the timer now, recording the elapsed time (same as dropping).
    pub fn stop(self) {}

    /// Discards the timer without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let (Some(core), Some(start)) = (&self.hist.core, self.start) {
            core.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(1), (2, 3));
        assert_eq!(bucket_bounds(10), (1024, 2047));
        assert_eq!(bucket_bounds(63).1, u64::MAX);
        // Adjacent buckets tile the space with no gap or overlap.
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1 + 1, bucket_bounds(i + 1).0);
        }
    }

    #[test]
    fn empty_summary_is_zero() {
        let h = HistogramCore::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_value_summary() {
        let h = HistogramCore::new();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1000);
        assert_eq!(s.min, 1000);
        assert_eq!(s.max, 1000);
        // All percentiles must land in 1000's bucket [512, 1023].
        for p in [s.p50, s.p95, s.p99] {
            assert_eq!(bucket_index(p), bucket_index(1000));
        }
    }

    #[test]
    fn percentiles_ordered_and_in_range() {
        let h = HistogramCore::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // p50 of 0..10000 is ~5000, within bucket [4096, 8191].
        assert_eq!(bucket_index(s.p50), bucket_index(4999));
    }

    #[test]
    fn delta_against_empty_is_identity() {
        let h = HistogramCore::new();
        for v in [5u64, 900, 900, 7_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.delta(&HistogramSummary::default()), s);
    }

    #[test]
    fn delta_isolates_interval_samples() {
        let h = HistogramCore::new();
        for _ in 0..100 {
            h.record(10);
        }
        let early = h.summary();
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let d = h.summary().delta(&early);
        assert_eq!(d.count, 100);
        assert_eq!(d.sum, 100 * 1_000_000);
        // The interval view must not see the 100 old fast samples: every
        // percentile lands in 1e6's bucket, not 10's.
        for p in [d.p50, d.p95, d.p99] {
            assert_eq!(bucket_index(p), bucket_index(1_000_000));
        }
        assert!(d.min >= bucket_bounds(bucket_index(1_000_000)).0);
    }

    #[test]
    fn delta_saturates_on_reset() {
        let h = HistogramCore::new();
        h.record(100);
        h.record(200);
        let big = h.summary();
        let fresh = HistogramCore::new();
        fresh.record(100);
        // "Later" snapshot from a reset histogram has fewer samples than
        // the earlier one: subtraction saturates instead of wrapping.
        let d = fresh.summary().delta(&big);
        assert_eq!(d.count, 0);
        assert_eq!(d, HistogramSummary::default());
    }

    #[test]
    fn exemplars_tag_buckets_and_survive_delta() {
        let h = HistogramCore::new();
        h.record_with_exemplar(10, 0xAAAA);
        for _ in 0..200 {
            h.record(100);
        }
        h.record_with_exemplar(1_000_000, 0xBEEF);
        let s = h.summary();
        assert_eq!(s.exemplars[bucket_index(10)], 0xAAAA);
        assert_eq!(s.exemplars[bucket_index(1_000_000)], 0xBEEF);
        // p99 lands in the slow-outlier's bucket: the tail exemplar is it.
        assert_eq!(s.p99_exemplar(), 0xBEEF);

        // An interval that excludes the fast exemplar's bucket drops it.
        let mut earlier = HistogramSummary::default();
        earlier.buckets[bucket_index(10)] = 1;
        earlier.count = 1;
        let d = s.delta(&earlier);
        assert_eq!(d.exemplars[bucket_index(10)], 0);
        assert_eq!(d.exemplars[bucket_index(1_000_000)], 0xBEEF);
    }

    #[test]
    fn exemplar_zero_does_not_clobber() {
        let h = HistogramCore::new();
        h.record_with_exemplar(50, 7);
        h.record_with_exemplar(50, 0);
        assert_eq!(h.summary().exemplars[bucket_index(50)], 7);
    }

    #[test]
    fn p99_exemplar_falls_back_to_higher_bucket() {
        let h = HistogramCore::new();
        for _ in 0..100 {
            h.record(100); // bulk, no exemplar
        }
        h.record_with_exemplar(u64::MAX, 42);
        let s = h.summary();
        // p99 sits in the bulk bucket (no exemplar) but the occupied bucket
        // above carries one.
        assert_eq!(s.p99_exemplar(), 42);
        assert_eq!(HistogramSummary::default().p99_exemplar(), 0);
    }

    #[test]
    fn noop_handle_discards() {
        let h = Histogram::noop();
        h.record(42);
        let t = h.start_timer();
        drop(t);
        assert!(!h.is_enabled());
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn timer_records_elapsed() {
        let h = Histogram::from_core(Arc::new(HistogramCore::new()));
        h.start_timer().stop();
        assert_eq!(h.summary().count, 1);
        h.start_timer().cancel();
        assert_eq!(h.summary().count, 1);
    }
}
