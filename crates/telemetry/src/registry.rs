//! The handle-based metrics registry.
//!
//! A [`Registry`] is a cheap cloneable handle to shared state (or to
//! nothing, for the disabled no-op sink). Instruments are looked up by
//! dot-separated name; asking twice for the same name returns handles to the
//! same underlying cell, so independent layers can contribute to one metric
//! (e.g. every device mirrors into `storage.pages_read`). Registration is
//! eager: a counter exists (at zero) in snapshots from the moment any layer
//! asks for it, which keeps exported key sets stable across runs.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::export::Snapshot;
use crate::histogram::{Histogram, HistogramCore, Timer};
use crate::journal::{Journal, Value};
use crate::trace::{self, TraceSpan, TracerCore};

/// Locks a mutex, recovering the data from a poisoned lock instead of
/// panicking (telemetry must never take the host down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`, giving lock-free last-writer-wins floats.
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    journal: Mutex<Journal>,
    tracer: TracerCore,
    /// Series names whose values derive from round secrets (anything
    /// computed from `k_union`). Snapshots carry this set so default
    /// exporters can redact them; see [`Snapshot::audit_view`].
    audit_only: Mutex<BTreeSet<String>>,
}

/// A handle to a metrics registry, or a no-op sink.
///
/// Cloning shares the underlying state. The [`Default`] registry is
/// *disabled* so that plumbing telemetry through a struct never forces a
/// live registry on callers that don't want one.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Registry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// Creates a disabled registry: every handle it hands out is a no-op and
    /// snapshots are empty. This is the bounded-overhead sink for perf runs.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this handle points at live storage.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns (registering if needed) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    lock(&inner.counters)
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(AtomicU64::new(0))),
                )
            }),
        }
    }

    /// Returns (registering if needed) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    lock(&inner.gauges)
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
                )
            }),
        }
    }

    /// Returns (registering if needed) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.inner.as_ref() {
            None => Histogram::noop(),
            Some(inner) => Histogram::from_core(Arc::clone(
                lock(&inner.histograms)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )),
        }
    }

    /// Marks the series `name` as **audit-only**: its value derives from a
    /// round secret (in FEDORA, anything computed from `k_union`), so the
    /// default JSON/CSV/Prometheus exports redact it lest the telemetry
    /// channel itself become a side channel. Lookups on snapshots still see
    /// the series; only the exporters filter. No-op on a disabled registry.
    pub fn mark_audit_only(&self, name: &str) {
        if let Some(inner) = &self.inner {
            lock(&inner.audit_only).insert(name.to_string());
        }
    }

    /// Returns (registering if needed) the counter `name`, marked
    /// audit-only. See [`Registry::mark_audit_only`].
    pub fn counter_audit(&self, name: &str) -> Counter {
        self.mark_audit_only(name);
        self.counter(name)
    }

    /// Returns (registering if needed) the gauge `name`, marked audit-only.
    pub fn gauge_audit(&self, name: &str) -> Gauge {
        self.mark_audit_only(name);
        self.gauge(name)
    }

    /// Returns (registering if needed) the histogram `name`, marked
    /// audit-only.
    pub fn histogram_audit(&self, name: &str) -> Histogram {
        self.mark_audit_only(name);
        self.histogram(name)
    }

    /// Opens a hierarchical span named `name`, timing the scope into the
    /// histogram `"{name}.latency"` when the guard drops. When tracing is
    /// enabled (see [`Registry::set_tracing`]) the scope additionally emits
    /// `trace.begin`/`trace.end` records into the journal.
    ///
    /// Hot paths that run many times should cache the [`Histogram`] handle
    /// and use [`Histogram::start_timer`] instead, skipping the name lookup.
    pub fn span(&self, name: &str) -> Span {
        Span {
            timer: self.histogram(&format!("{name}.latency")).start_timer(),
            trace: self.trace_span(name),
            name: name.to_string(),
            registry: self.clone(),
        }
    }

    /// Turns causal span tracing on or off (off by default; a no-op on a
    /// disabled registry). While on, [`Registry::trace_span`] and
    /// [`Registry::span`] emit `trace.begin`/`trace.end` journal records and
    /// instrumented devices emit `trace.io` records.
    pub fn set_tracing(&self, on: bool) {
        if let Some(core) = self.tracer_core() {
            core.set_enabled(on);
        }
    }

    /// Whether causal span tracing is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer_core().is_some_and(TracerCore::is_enabled)
    }

    /// Opens a causal trace span (without the latency histogram of
    /// [`Registry::span`]). Returns an inert guard when tracing is off, at
    /// the cost of one relaxed atomic load.
    pub fn trace_span(&self, name: &str) -> TraceSpan {
        TraceSpan::begin(self, name, &[])
    }

    /// Like [`Registry::trace_span`] but with key=value attributes on the
    /// `trace.begin` record.
    pub fn trace_span_with(&self, name: &str, attrs: &[(&str, Value)]) -> TraceSpan {
        TraceSpan::begin(self, name, attrs)
    }

    /// Opens a causal trace span under an **explicit** parent span id
    /// instead of the caller thread's innermost open span. Worker threads
    /// use this to keep the causal tree connected across a fan-out: the
    /// dispatching thread captures its span's id ([`TraceSpan::id`] /
    /// [`Span::trace_id`]) before spawning and each worker roots its spans
    /// under it, so Perfetto still renders one tree. `parent = 0` opens a
    /// root span.
    pub fn trace_span_under(&self, parent: u64, name: &str) -> TraceSpan {
        TraceSpan::begin_under(self, parent, name, &[])
    }

    /// Like [`Registry::trace_span_under`] but with key=value attributes on
    /// the `trace.begin` record.
    pub fn trace_span_under_with(
        &self,
        parent: u64,
        name: &str,
        attrs: &[(&str, Value)],
    ) -> TraceSpan {
        TraceSpan::begin_under(self, parent, name, attrs)
    }

    /// Like [`Registry::span`] (latency histogram + causal span) but with
    /// the causal span rooted under an explicit parent span id; see
    /// [`Registry::trace_span_under`].
    pub fn span_under(&self, parent: u64, name: &str) -> Span {
        Span {
            timer: self.histogram(&format!("{name}.latency")).start_timer(),
            trace: self.trace_span_under(parent, name),
            name: name.to_string(),
            registry: self.clone(),
        }
    }

    /// Records a `trace.io` point event attributing `sim_ns` of *simulated*
    /// device latency (plus page/byte counts) to the innermost span open on
    /// this thread. No-op when tracing is off.
    pub fn trace_io(&self, stream: &str, sim_ns: u64, pages: u64, bytes: u64) {
        trace::io_event(self, stream, sim_ns, pages, bytes);
    }

    pub(crate) fn tracer_core(&self) -> Option<&TracerCore> {
        self.inner.as_deref().map(|inner| &inner.tracer)
    }

    /// Appends a structured event to the journal.
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        if let Some(inner) = &self.inner {
            lock(&inner.journal).push(name, fields);
        }
    }

    /// Changes the journal's retention bound (default
    /// [`crate::MAX_JOURNAL_EVENTS`]). Already-buffered events are kept even
    /// if they exceed a smaller bound; only future pushes are affected.
    /// No-op on a disabled registry.
    pub fn set_journal_capacity(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            lock(&inner.journal).set_capacity(capacity);
        }
    }

    /// Current journal retention bound (0 when disabled).
    pub fn journal_capacity(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| lock(&inner.journal).capacity())
    }

    /// Events evicted from the bounded journal since startup (the live
    /// value behind the `telemetry.journal.dropped` snapshot counter),
    /// readable without building a snapshot. The `tail` verb reports this
    /// so pollers can tell a quiet window from a lost one.
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| lock(&inner.journal).dropped())
    }

    /// Copies journal events with `seq >= cursor`, at most `max` of them,
    /// without snapshotting instruments. Returns the events plus the cursor
    /// to resume from (one past the last returned seq; equal to `cursor`
    /// when nothing new exists). This is the polling primitive behind the
    /// network `tail` verb: the client holds the cursor, the server keeps
    /// no per-client state. Sequence numbers are dense, so a gap between
    /// the requested cursor and the first returned seq can only mean the
    /// journal hit its retention bound in between.
    pub fn events_since(&self, cursor: u64, max: usize) -> (Vec<crate::Event>, u64) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), cursor);
        };
        let journal = lock(&inner.journal);
        let events = journal.events();
        // seq is dense from 0 over retained events: index by position.
        let start = events.partition_point(|e| e.seq < cursor);
        let out: Vec<crate::Event> = events[start..].iter().take(max).cloned().collect();
        let next = out.last().map_or(cursor, |e| e.seq + 1);
        (out, next)
    }

    /// Full point-in-time snapshot, including the event journal.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_impl(true)
    }

    /// Snapshot without the event journal — cheap enough to attach to every
    /// `RoundReport` without cloning thousands of events each round.
    pub fn snapshot_lite(&self) -> Snapshot {
        self.snapshot_impl(false)
    }

    fn snapshot_impl(&self, with_events: bool) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let mut counters: Vec<(String, u64)> = lock(&inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = lock(&inner.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        let journal = lock(&inner.journal);
        // Overflow accounting is a first-class counter so trace-based
        // analyses can tell a complete journal from a truncated one.
        let dropped_key = "telemetry.journal.dropped";
        let pos = counters.partition_point(|(k, _)| k.as_str() < dropped_key);
        if counters.get(pos).is_some_and(|(k, _)| k == dropped_key) {
            counters[pos].1 = journal.dropped();
        } else {
            counters.insert(pos, (dropped_key.to_string(), journal.dropped()));
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            events: if with_events {
                journal.events().to_vec()
            } else {
                Vec::new()
            },
            events_dropped: journal.dropped(),
            audit_only: lock(&inner.audit_only).iter().cloned().collect(),
        }
    }
}

/// Monotonic `u64` counter handle (no-op when detached).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that discards increments.
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Last-writer-wins `f64` gauge handle (no-op when detached).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A gauge that discards writes.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Sets from an integer (stored as `f64`).
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: f64) {
        if let Some(cell) = &self.cell {
            // Relaxed CAS loop; contention on gauges is negligible.
            let mut cur = cell.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match cell.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A hierarchical timing scope: records its lifetime into
/// `"{name}.latency"` on drop, and can open children named under it. With
/// tracing enabled it also carries a causal [`TraceSpan`].
#[derive(Debug)]
pub struct Span {
    name: String,
    registry: Registry,
    timer: Timer,
    trace: TraceSpan,
}

impl Span {
    /// This span's full dotted name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Opens a child span named `"{parent}.{suffix}"`.
    pub fn child(&self, suffix: &str) -> Span {
        self.registry.span(&format!("{}.{suffix}", self.name))
    }

    /// Attaches a key=value attribute to the `trace.end` record (a no-op
    /// when tracing is off).
    pub fn attr(&mut self, key: &str, value: impl Into<Value>) {
        self.trace.attr(key, value);
    }

    /// Id of the underlying causal trace span (0 when tracing is off).
    /// Capture this before a fan-out and pass it to
    /// [`Registry::span_under`] / [`Registry::trace_span_under`] so worker
    /// spans stay connected to this span's tree.
    pub fn trace_id(&self) -> u64 {
        self.trace.id()
    }

    /// Ends the span now (same as dropping it).
    pub fn end(self) {
        self.timer.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn disabled_registry_is_noop() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        r.gauge("g").set(1.5);
        r.histogram("h").record(7);
        r.event("e", &[]);
        let snap = r.snapshot();
        assert_eq!(snap, Snapshot::default());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Registry::default().is_enabled());
        let c = Counter::default();
        c.incr();
        assert_eq!(c.get(), 0);
        Gauge::default().set(1.0);
    }

    #[test]
    fn gauge_roundtrip_and_max() {
        let r = Registry::new();
        let g = r.gauge("occupancy");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
        g.set_max(0.1);
        assert_eq!(g.get(), 0.25);
        g.set_max(0.9);
        assert_eq!(g.get(), 0.9);
        g.set_u64(7);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn eager_registration_appears_in_snapshot() {
        let r = Registry::new();
        let _ = r.counter("never.touched");
        let _ = r.histogram("empty.hist");
        let snap = r.snapshot();
        assert_eq!(snap.counter("never.touched"), Some(0));
        assert_eq!(snap.histogram("empty.hist").map(|h| h.count), Some(0));
    }

    #[test]
    fn span_records_latency_and_children() {
        let r = Registry::new();
        {
            let span = r.span("oram.access");
            let child = span.child("decrypt");
            assert_eq!(child.name(), "oram.access.decrypt");
            child.end();
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.histogram("oram.access.latency").map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            snap.histogram("oram.access.decrypt.latency")
                .map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn events_flow_to_snapshot() {
        let r = Registry::new();
        r.event("fault.detected", &[("node", 4u64.into())]);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, "fault.detected");
        // Lite snapshots skip events but keep instruments.
        assert!(r.snapshot_lite().events.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.counter("shared").incr();
        assert_eq!(r.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn concurrent_writers_lose_no_journal_records() {
        use crate::journal::MAX_JOURNAL_EVENTS;
        // Worker pools share one Registry handle across threads; the
        // journal must neither lose nor double-count records under
        // contention, and the overflow tail must land in `dropped` (and
        // thus `telemetry.journal.dropped`) exactly.
        const WRITERS: usize = 8;
        const PER_WRITER: usize = MAX_JOURNAL_EVENTS / WRITERS + 1_000;
        let r = Registry::new();
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        r.event("par.tick", &[("w", w.into()), ("i", i.into())]);
                        r.counter("par.ticks").incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        let total = (WRITERS * PER_WRITER) as u64;
        assert_eq!(snap.counter("par.ticks"), Some(total));
        assert_eq!(snap.events.len(), MAX_JOURNAL_EVENTS);
        assert_eq!(snap.events_dropped, total - MAX_JOURNAL_EVENTS as u64);
        assert_eq!(
            snap.counter("telemetry.journal.dropped"),
            Some(total - MAX_JOURNAL_EVENTS as u64)
        );
        // Sequence numbers stay dense and ordered: concurrent pushes
        // serialize under the journal lock.
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
