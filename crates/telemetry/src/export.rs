//! Snapshot type and hand-rolled JSON / CSV exporters (zero dependencies).
//!
//! The JSON layout is the contract consumed by CI, bench drivers, and the
//! `BENCH_*.json` trajectory files:
//!
//! ```json
//! {
//!   "schema": "fedora-telemetry/v1",
//!   "counters": {"storage.pages_read": 123},
//!   "gauges": {"oram.stash.len": 4.0},
//!   "histograms": {"oram.access.latency": {"count": 9, "sum": 1, "min": 1,
//!                   "max": 2, "mean": 1.0, "p50": 1, "p95": 2, "p99": 2}},
//!   "events": [{"seq": 0, "name": "round.end", "fields": {"round": 1}}],
//!   "events_dropped": 0
//! }
//! ```

use std::io::Write as _;
use std::path::Path;

use crate::histogram::HistogramSummary;
use crate::journal::{Event, Value};

/// A point-in-time copy of a registry's instruments and journal.
///
/// Entries are sorted by name (the registry stores them in ordered maps), so
/// exports are deterministic and diffable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Journal events (empty for lite snapshots).
    pub events: Vec<Event>,
    /// Events discarded after the journal hit its bound.
    pub events_dropped: u64,
    /// Sorted names of audit-only series (values derived from round
    /// secrets). Lookups still resolve them, but the default exporters
    /// ([`to_json`](Self::to_json), [`to_csv`](Self::to_csv),
    /// [`to_prometheus_text`](Self::to_prometheus_text)) redact them; use
    /// [`audit_view`](Self::audit_view) to export everything.
    pub audit_only: Vec<String>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Whether `name` is tagged audit-only (redacted from default exports).
    pub fn is_audit_only(&self, name: &str) -> bool {
        self.audit_only
            .binary_search_by(|k| k.as_str().cmp(name))
            .is_ok()
    }

    /// An un-redacted copy for explicitly-requested audit exports: the
    /// audit-only tag set is cleared, so every series appears in JSON / CSV /
    /// Prometheus output. Only hand the result to channels cleared to see
    /// secret-derived series.
    pub fn audit_view(&self) -> Snapshot {
        let mut full = self.clone();
        full.audit_only.clear();
        full
    }

    /// A copy with every series name prefixed as `"{prefix}.{name}"`
    /// (audit-only tags follow their series; events are left untouched).
    /// Used by the multi-table server to namespace per-shard registries as
    /// `oram.shard<N>.*` before aggregation.
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        let pre = |k: &String| format!("{prefix}.{k}");
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (pre(k), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (pre(k), *v)).collect(),
            histograms: self.histograms.iter().map(|(k, v)| (pre(k), *v)).collect(),
            events: self.events.clone(),
            events_dropped: self.events_dropped,
            audit_only: self.audit_only.iter().map(pre).collect(),
        }
    }

    /// Merges another snapshot into this one: series lists are
    /// concatenated (then re-sorted by name so lookups and exports stay
    /// deterministic), events appended, drop counts summed, and the
    /// audit-only tag set re-sorted so [`is_audit_only`] keeps working.
    /// Combine with [`prefixed`](Self::prefixed) to compose disjoint
    /// per-shard namespaces into one aggregated view.
    ///
    /// [`is_audit_only`]: Self::is_audit_only
    pub fn absorb(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.extend(other.gauges);
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.extend(other.histograms);
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self.events.extend(other.events);
        self.events_dropped += other.events_dropped;
        self.audit_only.extend(other.audit_only);
        self.audit_only.sort();
        self.audit_only.dedup();
    }

    /// Interval view: what happened *after* `earlier` was taken, assuming
    /// `earlier` is an older snapshot of the same registry.
    ///
    /// Counters subtract with saturation (a restarted registry reports the
    /// post-restart value rather than wrapping); histograms subtract
    /// per-bucket and recompute interval percentiles
    /// ([`HistogramSummary::delta`]); gauges are point-in-time, so the
    /// latest value stands. Events keep only records sequenced after the
    /// last event `earlier` carried (all of them when `earlier` has no
    /// events, e.g. a lite snapshot). Audit-only tags are preserved, so
    /// interval views redact exactly like the snapshots they came from.
    ///
    /// This is the watch plane's windowing primitive: SLO rules evaluate
    /// over `current.delta(&previous_sample)` so a latency spike shows up
    /// in the interval p99 instead of being averaged away by hours of
    /// lifetime history.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k).unwrap_or(0))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let prior = earlier.histogram(k).copied().unwrap_or_default();
                (k.clone(), h.delta(&prior))
            })
            .collect();
        let next_seq = earlier.events.last().map_or(0, |e| e.seq + 1);
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            events: self
                .events
                .iter()
                .filter(|e| e.seq >= next_seq)
                .cloned()
                .collect(),
            events_dropped: self.events_dropped.saturating_sub(earlier.events_dropped),
            audit_only: self.audit_only.clone(),
        }
    }

    /// Serializes to a single-line JSON object. Audit-only series are
    /// redacted; see [`Snapshot::audit_view`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"fedora-telemetry/v1\",\"counters\":{");
        push_entries(self, &mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"gauges\":{");
        push_entries(self, &mut out, &self.gauges, |out, v| {
            out.push_str(&json_f64(*v))
        });
        out.push_str("},\"histograms\":{");
        push_entries(self, &mut out, &self.histograms, |out, h| {
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean()),
                h.p50,
                h.p95,
                h.p99
            ));
            // Exemplar ids ride as hex strings (u64 trace ids overflow the
            // 2^53 JSON-number precision guarantee), keyed by bucket index
            // and only when present so the schema stays unchanged for
            // exemplar-free histograms.
            if h.exemplars.iter().any(|&x| x != 0) {
                out.push_str(",\"exemplars\":{");
                let mut first = true;
                for (i, &x) in h.exemplars.iter().enumerate() {
                    if x != 0 {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("\"{i}\":\"{x:#x}\""));
                    }
                }
                out.push('}');
                let tail = h.p99_exemplar();
                if tail != 0 {
                    out.push_str(&format!(",\"p99_exemplar\":\"{tail:#x}\""));
                }
            }
            out.push('}');
        });
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"name\":\"{}\",\"fields\":{{",
                e.seq,
                escape_json(&e.name)
            ));
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":");
                out.push_str(&json_value(v));
            }
            out.push_str("}}");
        }
        out.push_str(&format!("],\"events_dropped\":{}}}", self.events_dropped));
        out
    }

    /// Serializes instruments (not events) to CSV with header
    /// `kind,name,field,value`. Audit-only series are redacted; see
    /// [`Snapshot::audit_view`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in self.counters.iter().filter(|(k, _)| !self.is_audit_only(k)) {
            out.push_str(&format!("counter,{},value,{v}\n", csv_field(name)));
        }
        for (name, v) in self.gauges.iter().filter(|(k, _)| !self.is_audit_only(k)) {
            out.push_str(&format!("gauge,{},value,{v}\n", csv_field(name)));
        }
        for (name, h) in self
            .histograms
            .iter()
            .filter(|(k, _)| !self.is_audit_only(k))
        {
            let name = csv_field(name);
            for (field, v) in [
                ("count", h.count),
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                out.push_str(&format!("histogram,{name},{field},{v}\n"));
            }
        }
        out
    }

    /// Exports the journal's `trace.*` records as Chrome trace-event JSON,
    /// loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    ///
    /// `trace.begin`/`trace.end` records become `B`/`E` duration events on
    /// their originating thread's track; `trace.io` records become `X`
    /// complete events on one synthetic track per I/O stream, whose duration
    /// is the *simulated* device latency placed at the host timestamp that
    /// caused it (so modeled I/O time can overhang the causing host-time
    /// span). Span/parent ids and attributes ride in `args`, preserving the
    /// causal tree even for viewers that only show flat slices. Timestamps
    /// are microseconds relative to the registry's epoch.
    pub fn to_chrome_trace(&self) -> String {
        // Stable synthetic tracks: spans keep their thread's tid; each I/O
        // stream gets its own lane well above any real tid.
        let mut span_tids: Vec<u64> = Vec::new();
        let mut io_streams: Vec<String> = Vec::new();
        for e in &self.events {
            match e.name.as_str() {
                "trace.begin" | "trace.end" => {
                    let tid = field_u64(e, "tid");
                    if !span_tids.contains(&tid) {
                        span_tids.push(tid);
                    }
                }
                "trace.io" => {
                    let stream = field_str(e, "name").to_string();
                    if !io_streams.contains(&stream) {
                        io_streams.push(stream);
                    }
                }
                _ => {}
            }
        }
        let io_tid = |stream: &str| -> u64 {
            const IO_TRACK_BASE: u64 = 1_000_000;
            IO_TRACK_BASE + io_streams.iter().position(|s| s == stream).unwrap_or(0) as u64
        };

        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"fedora\"}}",
        );
        for tid in &span_tids {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"thread-{tid}\"}}}}"
            ));
        }
        for stream in &io_streams {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"io: {}\"}}}}",
                io_tid(stream),
                escape_json(stream)
            ));
        }
        for e in &self.events {
            let known: &[&str] = match e.name.as_str() {
                "trace.begin" => &["span", "parent", "name", "tid", "t"],
                "trace.end" => &["span", "name", "tid", "t"],
                "trace.io" => &["name", "tid", "t", "dur"],
                _ => continue,
            };
            let name = field_str(e, "name");
            let ts_us = field_u64(e, "t") as f64 / 1000.0;
            out.push_str(",{\"name\":\"");
            out.push_str(&escape_json(name));
            out.push_str("\",\"cat\":\"fedora\",\"ph\":\"");
            match e.name.as_str() {
                "trace.begin" => out.push('B'),
                "trace.end" => out.push('E'),
                _ => out.push('X'),
            }
            out.push_str(&format!("\",\"pid\":1,\"ts\":{ts_us:.3}"));
            if e.name == "trace.io" {
                out.push_str(&format!(
                    ",\"dur\":{:.3},\"tid\":{}",
                    field_u64(e, "dur") as f64 / 1000.0,
                    io_tid(name)
                ));
            } else {
                out.push_str(&format!(",\"tid\":{}", field_u64(e, "tid")));
            }
            out.push_str(",\"args\":{");
            let mut first = true;
            for (k, v) in &e.fields {
                if known.contains(&k.as_str()) && !matches!(k.as_str(), "span" | "parent") {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":");
                out.push_str(&json_value(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Writes the Chrome trace-event export (plus trailing newline) to
    /// `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_chrome_trace().as_bytes())?;
        f.write_all(b"\n")
    }

    /// Writes the JSON export (plus trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")
    }

    /// Writes the CSV export to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Serializes instruments to the Prometheus text exposition format
    /// (version 0.0.4), scrape-ready for a push-gateway or file-based
    /// collector. Audit-only series are redacted; see
    /// [`Snapshot::audit_view`].
    ///
    /// Dotted names are sanitized to `fedora_<name_with_underscores>`.
    /// Counters and gauges export directly; each histogram expands to
    /// `_count` / `_sum` counters plus `_p50` / `_p95` / `_p99` quantile
    /// gauges (the log-bucket histograms keep summaries, not raw buckets,
    /// so quantiles rather than `le`-bucket series are the honest export).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (name, v) in self.counters.iter().filter(|(k, _)| !self.is_audit_only(k)) {
            let p = prom_name(name);
            out.push_str(&format!(
                "# HELP {p} FEDORA counter {name}\n# TYPE {p} counter\n{p} {v}\n"
            ));
        }
        for (name, v) in self.gauges.iter().filter(|(k, _)| !self.is_audit_only(k)) {
            let p = prom_name(name);
            out.push_str(&format!(
                "# HELP {p} FEDORA gauge {name}\n# TYPE {p} gauge\n{p} {}\n",
                prom_f64(*v)
            ));
        }
        for (name, h) in self
            .histograms
            .iter()
            .filter(|(k, _)| !self.is_audit_only(k))
        {
            let p = prom_name(name);
            out.push_str(&format!(
                "# HELP {p}_count FEDORA histogram {name} sample count\n\
                 # TYPE {p}_count counter\n{p}_count {}\n",
                h.count
            ));
            out.push_str(&format!(
                "# HELP {p}_sum FEDORA histogram {name} sample sum\n\
                 # TYPE {p}_sum counter\n{p}_sum {}\n",
                h.sum
            ));
            for (q, v) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                out.push_str(&format!(
                    "# HELP {p}_{q} FEDORA histogram {name} {q} quantile\n\
                     # TYPE {p}_{q} gauge\n{p}_{q} {v}\n"
                ));
            }
            // Tail exemplar as a comment line: plain-text parsers skip `#`
            // lines that are not HELP/TYPE, so this is wire-compatible with
            // exposition format 0.0.4 while still machine-greppable.
            let tail = h.p99_exemplar();
            if tail != 0 {
                out.push_str(&format!("# EXEMPLAR {p}_p99 trace_id=\"{tail:#x}\"\n"));
            }
        }
        out
    }

    /// Writes the Prometheus text exposition to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_prometheus(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_prometheus_text())
    }
}

fn push_entries<T>(
    snap: &Snapshot,
    out: &mut String,
    entries: &[(String, T)],
    mut emit: impl FnMut(&mut String, &T),
) {
    let mut first = true;
    for (k, v) in entries.iter().filter(|(k, _)| !snap.is_audit_only(k)) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&escape_json(k));
        out.push_str("\":");
        emit(out, v);
    }
}

/// JSON-legal float formatting: non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still a valid
        // JSON number, so leave it as-is.
        s
    } else {
        "null".to_string()
    }
}

fn json_value(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(f) => json_f64(*f),
        Value::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Numeric field lookup for trace records (0 when absent/mistyped — the
/// exporter must never panic on a malformed journal).
fn field_u64(e: &Event, name: &str) -> u64 {
    match e.field(name) {
        Some(Value::U64(v)) => *v,
        Some(Value::I64(v)) => u64::try_from(*v).unwrap_or(0),
        Some(Value::F64(v)) if *v >= 0.0 => *v as u64,
        _ => 0,
    }
}

/// String field lookup for trace records (empty when absent/mistyped).
fn field_str<'e>(e: &'e Event, name: &str) -> &'e str {
    match e.field(name) {
        Some(Value::Str(s)) => s,
        _ => "",
    }
}

/// Sanitizes a dotted series name into a Prometheus metric name:
/// `storage.pages_read` → `fedora_storage_pages_read`. Any character
/// outside `[a-zA-Z0-9_:]` becomes `_`; the `fedora_` prefix guarantees a
/// legal leading character.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("fedora_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus float formatting: the exposition format spells non-finite
/// values `+Inf` / `-Inf` / `NaN`.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Metric names are dot/underscore identifiers, but guard against commas and
/// quotes anyway so the CSV never breaks.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("storage.pages_read").add(5);
        r.gauge("oram.stash.len").set(3.0);
        let h = r.histogram("oram.access.latency");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        r.event(
            "round.end",
            &[("round", 1u64.into()), ("mode", "raw".into())],
        );
        r.snapshot()
    }

    #[test]
    fn json_contains_all_sections() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema\":\"fedora-telemetry/v1\""));
        assert!(j.contains("\"storage.pages_read\":5"));
        assert!(j.contains("\"oram.stash.len\":3"));
        assert!(j.contains("\"oram.access.latency\":{\"count\":3"));
        assert!(j.contains("\"p50\":"));
        assert!(j.contains("\"name\":\"round.end\""));
        assert!(j.contains("\"events_dropped\":0"));
    }

    #[test]
    fn json_escapes_strings() {
        let r = Registry::new();
        r.event("weird", &[("msg", "a\"b\\c\nd".into())]);
        let j = r.snapshot().to_json();
        assert!(j.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn json_nonfinite_gauge_is_null() {
        let r = Registry::new();
        r.gauge("bad").set(f64::NAN);
        assert!(r.snapshot().to_json().contains("\"bad\":null"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("kind,name,field,value"));
        assert!(csv.contains("counter,storage.pages_read,value,5\n"));
        assert!(csv.contains("histogram,oram.access.latency,count,3\n"));
        assert!(csv.contains("histogram,oram.access.latency,p99,"));
    }

    #[test]
    fn lookups() {
        let s = sample();
        assert_eq!(s.counter("storage.pages_read"), Some(5));
        assert_eq!(s.gauge("oram.stash.len"), Some(3.0));
        assert_eq!(s.histogram("oram.access.latency").map(|h| h.count), Some(3));
        assert_eq!(s.counter("nope"), None);
    }

    #[test]
    fn files_roundtrip() {
        let dir = std::env::temp_dir();
        let jp = dir.join("fedora_telemetry_test.json");
        let cp = dir.join("fedora_telemetry_test.csv");
        let s = sample();
        s.write_json(&jp).unwrap();
        s.write_csv(&cp).unwrap();
        let j = std::fs::read_to_string(&jp).unwrap();
        assert!(j.ends_with("}\n"));
        assert!(std::fs::read_to_string(&cp)
            .unwrap()
            .starts_with("kind,name,field,value"));
        let _ = std::fs::remove_file(jp);
        let _ = std::fs::remove_file(cp);
    }

    #[test]
    fn prometheus_text_has_type_help_and_quantiles() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("# TYPE fedora_storage_pages_read counter\n"));
        assert!(
            text.contains("# HELP fedora_storage_pages_read FEDORA counter storage.pages_read\n")
        );
        assert!(text.contains("fedora_storage_pages_read 5\n"));
        assert!(text.contains("# TYPE fedora_oram_stash_len gauge\n"));
        assert!(text.contains("fedora_oram_stash_len 3\n"));
        assert!(text.contains("fedora_oram_access_latency_count 3\n"));
        assert!(text.contains("# TYPE fedora_oram_access_latency_p95 gauge\n"));
        assert!(text.contains("fedora_oram_access_latency_p50 "));
        assert!(text.contains("fedora_oram_access_latency_p99 "));
    }

    #[test]
    fn prometheus_nonfinite_gauges_spelled_out() {
        let r = Registry::new();
        r.gauge("inf").set(f64::INFINITY);
        r.gauge("nan").set(f64::NAN);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("fedora_inf +Inf\n"));
        assert!(text.contains("fedora_nan NaN\n"));
    }

    #[test]
    fn audit_only_series_redacted_from_default_exports() {
        let r = Registry::new();
        r.counter("public.count").add(1);
        r.gauge_audit("fdp.round.k_union").set(17.0);
        r.counter_audit("fdp.dummies.total").add(3);
        r.histogram_audit("fdp.k.overhead").record(4);
        let s = r.snapshot();
        // Lookups still resolve the secret-derived series.
        assert_eq!(s.gauge("fdp.round.k_union"), Some(17.0));
        assert!(s.is_audit_only("fdp.round.k_union"));
        assert!(!s.is_audit_only("public.count"));
        for text in [s.to_json(), s.to_csv(), s.to_prometheus_text()] {
            assert!(!text.contains("k_union"), "redacted from: {text}");
            assert!(!text.contains("fdp.dummies"), "redacted from: {text}");
            assert!(!text.contains("fdp_dummies"), "redacted from: {text}");
            assert!(!text.contains("overhead"), "redacted from: {text}");
            assert!(text.contains("public"), "public series kept: {text}");
        }
        // The explicit audit view exports everything.
        let full = s.audit_view();
        assert!(full.to_json().contains("\"fdp.round.k_union\":17"));
        assert!(full
            .to_csv()
            .contains("counter,fdp.dummies.total,value,3\n"));
        assert!(full
            .to_prometheus_text()
            .contains("fedora_fdp_k_overhead_count 1\n"));
    }

    #[test]
    fn prefixed_renames_series_and_audit_tags() {
        let r = Registry::new();
        r.counter("storage.pages_read").add(2);
        r.gauge_audit("fdp.round.k_union").set(9.0);
        let p = r.snapshot_lite().prefixed("oram.shard3");
        assert_eq!(p.counter("oram.shard3.storage.pages_read"), Some(2));
        assert_eq!(p.counter("storage.pages_read"), None);
        assert!(p.is_audit_only("oram.shard3.fdp.round.k_union"));
        assert!(!p.to_json().contains("k_union"));
    }

    #[test]
    fn absorb_merges_shard_snapshots() {
        let a = Registry::new();
        a.counter("storage.pages_read").add(2);
        a.gauge_audit("fdp.round.k_union").set(9.0);
        let b = Registry::new();
        b.counter("storage.pages_read").add(5);
        let mut merged = a.snapshot_lite().prefixed("oram.shard0");
        merged.absorb(b.snapshot_lite().prefixed("oram.shard1"));
        assert_eq!(merged.counter("oram.shard0.storage.pages_read"), Some(2));
        assert_eq!(merged.counter("oram.shard1.storage.pages_read"), Some(5));
        // Audit tags stay sorted after the merge so lookups still resolve.
        assert!(merged.is_audit_only("oram.shard0.fdp.round.k_union"));
        assert!(!merged.to_json().contains("k_union"));
        // Names are re-sorted: exports stay deterministic.
        let names: Vec<&str> = merged.counters.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn delta_windows_counters_histograms_and_events() {
        use crate::histogram::bucket_index;
        let r = Registry::new();
        r.counter("net.requests").add(10);
        r.histogram("round.latency").record(100);
        r.event("warmup.tick", &[]);
        let early = r.snapshot();
        r.counter("net.requests").add(5);
        r.counter("net.shed").add(3);
        r.gauge("fdp.total.epsilon").set(2.5);
        r.histogram("round.latency").record(1_000_000);
        r.event("steady.tick", &[]);
        let d = r.snapshot().delta(&early);
        assert_eq!(d.counter("net.requests"), Some(5));
        assert_eq!(d.counter("net.shed"), Some(3));
        // Gauges are point-in-time: the latest value stands.
        assert_eq!(d.gauge("fdp.total.epsilon"), Some(2.5));
        let h = d.histogram("round.latency").expect("windowed histogram");
        assert_eq!(h.count, 1);
        assert_eq!(bucket_index(h.p99), bucket_index(1_000_000));
        // Only events after the earlier snapshot's tail survive.
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].name, "steady.tick");
    }

    #[test]
    fn delta_saturates_on_counter_reset() {
        let old = Registry::new();
        old.counter("net.requests").add(100);
        let fresh = Registry::new();
        fresh.counter("net.requests").add(7);
        // A restarted process reports post-restart counts, not a wrap.
        let d = fresh.snapshot().delta(&old.snapshot());
        assert_eq!(d.counter("net.requests"), Some(0));
    }

    #[test]
    fn delta_empty_window_histograms_are_zero() {
        // A window in which nothing was recorded must read as an empty
        // histogram — zero count, zero percentiles — not as stale lifetime
        // values, and must not panic on the all-zero bucket walk.
        let r = Registry::new();
        r.histogram("round.latency").record(500);
        let early = r.snapshot();
        let d = r.snapshot().delta(&early);
        let h = d.histogram("round.latency").expect("series still present");
        assert_eq!(h.count, 0);
        assert_eq!(
            (h.sum, h.min, h.max, h.p50, h.p95, h.p99),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(h.p99_exemplar(), 0);
    }

    #[test]
    fn delta_new_metric_mid_window_counts_from_zero() {
        // A series that first appears after the earlier snapshot was taken
        // must report its full value in the window (baseline zero), with no
        // underflow or panic for counters, gauges, or histograms.
        let r = Registry::new();
        r.counter("old.counter").add(2);
        let early = r.snapshot();
        r.counter("new.counter").add(7);
        r.gauge("new.gauge").set(1.5);
        r.histogram("new.latency").record(100);
        r.histogram("new.latency").record(300);
        let d = r.snapshot().delta(&early);
        assert_eq!(d.counter("new.counter"), Some(7));
        assert_eq!(d.gauge("new.gauge"), Some(1.5));
        let h = d.histogram("new.latency").expect("new histogram windowed");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
        assert_eq!(d.counter("old.counter"), Some(0));
    }

    #[test]
    fn delta_histogram_reset_saturates_like_counters() {
        // Histogram "went backwards" (process restart): the window view
        // degrades to empty instead of wrapping — mirror of the counter
        // saturation rule, pinned here against the real registry path.
        let old = Registry::new();
        for _ in 0..10 {
            old.histogram("round.latency").record(1000);
        }
        let fresh = Registry::new();
        fresh.histogram("round.latency").record(1000);
        let d = fresh.snapshot().delta(&old.snapshot());
        assert_eq!(
            d.histogram("round.latency").map(|h| h.count),
            Some(0),
            "fewer lifetime samples than the baseline must clamp to empty"
        );
    }

    #[test]
    fn exemplars_export_in_json_and_prometheus() {
        use crate::histogram::bucket_index;
        let r = Registry::new();
        let h = r.histogram("net.request.phase.serve_ns");
        for _ in 0..200 {
            h.record(1_000);
        }
        h.record_with_exemplar(9_000_000, 0xABCD);
        let s = r.snapshot();
        let summary = s.histogram("net.request.phase.serve_ns").unwrap();
        assert_eq!(summary.exemplars[bucket_index(9_000_000)], 0xABCD);
        assert_eq!(summary.p99_exemplar(), 0xABCD);
        let j = s.to_json();
        assert!(j.contains("\"p99_exemplar\":\"0xabcd\""), "json: {j}");
        let text = s.to_prometheus_text();
        assert!(
            text.contains("# EXEMPLAR fedora_net_request_phase_serve_ns_p99 trace_id=\"0xabcd\"\n"),
            "prom: {text}"
        );
        // Exemplar-free histograms keep the original schema exactly.
        let r2 = Registry::new();
        r2.histogram("plain").record(5);
        assert!(!r2.snapshot().to_json().contains("exemplar"));
        assert!(!r2.snapshot().to_prometheus_text().contains("EXEMPLAR"));
    }

    #[test]
    fn delta_preserves_audit_redaction() {
        let r = Registry::new();
        r.gauge_audit("fdp.empirical.eps_hat").set(0.5);
        r.counter("public.count").add(1);
        let early = r.snapshot();
        r.gauge("fdp.empirical.eps_hat").set(0.9);
        r.counter("public.count").add(2);
        let d = r.snapshot().delta(&early);
        assert!(d.is_audit_only("fdp.empirical.eps_hat"));
        assert!(!d.to_json().contains("eps_hat"));
        assert!(d
            .audit_view()
            .to_json()
            .contains("\"fdp.empirical.eps_hat\":0.9"));
    }

    #[test]
    fn prometheus_export_parses_back() {
        use std::collections::{BTreeMap, BTreeSet};
        let r = Registry::new();
        r.counter("storage.pages_read").add(5);
        r.gauge("oram.shard<3>.fdp.total.epsilon").set(1.25);
        r.gauge("weird-name.with spaces").set(f64::INFINITY);
        r.histogram("net.round.latency").record(1000);
        let text = r.snapshot().to_prometheus_text();
        let mut typed: BTreeMap<String, String> = BTreeMap::new();
        let mut helped: BTreeSet<String> = BTreeSet::new();
        let mut samples = 0usize;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("HELP name");
                assert!(helped.insert(name.to_string()), "duplicate HELP {name}");
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("TYPE name");
                let kind = it.next().expect("TYPE kind");
                assert!(matches!(kind, "counter" | "gauge"), "kind {kind}");
                assert!(
                    typed.insert(name.to_string(), kind.to_string()).is_none(),
                    "duplicate TYPE {name}"
                );
            } else {
                let (name, value) = line.split_once(' ').expect("sample line");
                assert!(typed.contains_key(name), "sample {name} missing TYPE");
                assert!(helped.contains(name), "sample {name} missing HELP");
                // Exposition-format metric name grammar.
                assert!(name
                    .chars()
                    .enumerate()
                    .all(|(i, c)| c.is_ascii_alphabetic()
                        || c == '_'
                        || c == ':'
                        || (i > 0 && c.is_ascii_digit())));
                assert!(value.parse::<f64>().is_ok(), "unparsable value {value}");
                samples += 1;
            }
        }
        // 2 counters (pages_read + the implicit journal-dropped counter)
        // + 2 gauges + histogram (count/sum/p50/p95/p99).
        assert_eq!(samples, 9);
        // Name-illegal characters (< > - space .) all sanitize to '_'.
        assert!(text.contains("fedora_oram_shard_3__fdp_total_epsilon 1.25\n"));
        assert!(text.contains("fedora_weird_name_with_spaces +Inf\n"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let j = Snapshot::default().to_json();
        assert!(j.contains("\"counters\":{}"));
        assert!(j.contains("\"events\":[]"));
    }

    /// Builds a snapshot with a small traced scope plus one io record.
    fn traced_sample() -> Snapshot {
        let r = Registry::new();
        r.set_tracing(true);
        {
            let mut outer = r.trace_span_with("round", &[("round", 0u64.into())]);
            {
                let _inner = r.trace_span("oram.eviction");
                r.trace_io("storage.write", 25_000, 2, 8192);
            }
            outer.attr("aborted", false);
        }
        r.snapshot()
    }

    #[test]
    fn chrome_trace_roundtrips_through_parser() {
        use crate::json::{self, Json};
        let doc = json::parse(&traced_sample().to_chrome_trace()).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let phase = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
        let begins = events.iter().filter(|e| phase(e) == "B").count();
        let ends = events.iter().filter(|e| phase(e) == "E").count();
        let completes: Vec<&Json> = events.iter().filter(|e| phase(e) == "X").collect();
        assert_eq!(begins, 2, "two trace.begin records");
        assert_eq!(begins, ends, "balanced B/E events");
        assert_eq!(completes.len(), 1, "one trace.io record");
        // Simulated latency carried as microsecond duration.
        assert_eq!(completes[0].get("dur").and_then(Json::as_f64), Some(25.0));
        assert_eq!(
            completes[0]
                .get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(Json::as_u64),
            Some(8192)
        );
        // Causal ids survive in args: the io's parent is the eviction span.
        let eviction_span = events
            .iter()
            .find(|e| {
                phase(e) == "B" && e.get("name").and_then(Json::as_str) == Some("oram.eviction")
            })
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("span"))
            .and_then(Json::as_u64)
            .expect("eviction begin span id");
        assert_eq!(
            completes[0]
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_u64),
            Some(eviction_span)
        );
        // Metadata names the io lane after its stream.
        assert!(events.iter().any(|e| {
            phase(e) == "M"
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("io: storage.write")
        }));
    }

    #[test]
    fn chrome_trace_of_traceless_snapshot_is_minimal() {
        use crate::json::{self, Json};
        // A snapshot with non-trace events exports metadata only.
        let doc = json::parse(&sample().to_chrome_trace()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
    }

    #[test]
    fn chrome_trace_file_roundtrip() {
        let path = std::env::temp_dir().join("fedora_telemetry_test.trace.json");
        traced_sample().write_chrome_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("}\n"));
        assert!(crate::json::parse(text.trim_end()).is_ok());
        let _ = std::fs::remove_file(path);
    }
}
