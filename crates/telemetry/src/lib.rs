//! `fedora-telemetry`: a zero-dependency tracing + metrics subsystem.
//!
//! Every layer of the FEDORA stack — storage devices, the ORAM core, the
//! crypto envelope, the FL round loop — reports into one handle-based
//! [`Registry`]. There are no globals: whoever owns the registry (normally
//! `FedoraServer`) hands out cheap cloneable handles, and a *disabled*
//! registry ([`Registry::disabled`]) turns every handle into a no-op sink so
//! instrumented hot paths cost nothing when observability is off.
//!
//! The building blocks:
//!
//! * [`Counter`] — monotonically increasing `u64` (atomic, lock-free).
//! * [`Gauge`] — last-writer-wins `f64`, for analytic results and occupancy.
//! * [`Histogram`] — 64 logarithmic (power-of-two) buckets with count / sum /
//!   min / max and p50/p95/p99 summaries; fed directly via
//!   [`Histogram::record`] or by drop-guard [`Timer`]s / [`Span`]s using a
//!   monotonic clock.
//! * [`Event`] journal — a bounded, ordered log of structured per-round
//!   events (faults, quarantines, SecAgg dropouts, round boundaries).
//! * [`TraceSpan`] causal tracing — when enabled via
//!   [`Registry::set_tracing`], spans emit `trace.begin`/`trace.end` journal
//!   records with span/parent ids and attributes, forming a per-round causal
//!   tree exportable as Chrome trace-event JSON
//!   ([`Snapshot::to_chrome_trace`]) for Perfetto / `chrome://tracing`.
//! * [`Snapshot`] — a point-in-time copy of everything, exportable as
//!   `BENCH_*.json`-compatible JSON or CSV.
//! * [`json`] — a minimal zero-dependency JSON parser for reading the
//!   exports back (trajectory diffing, round-trip checks).
//!
//! # Example
//!
//! ```
//! use fedora_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let reads = registry.counter("storage.pages_read");
//! reads.add(3);
//! let lat = registry.histogram("oram.access.latency");
//! for ns in [120_u64, 480, 950] {
//!     lat.record(ns);
//! }
//! {
//!     let _span = registry.span("oram.eviction"); // times the scope
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("storage.pages_read"), Some(3));
//! assert!(snap.to_json().contains("\"oram.access.latency\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod export;
mod histogram;
mod journal;
pub mod json;
mod registry;
mod trace;

pub use export::Snapshot;
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSummary, Timer, NUM_BUCKETS};
pub use journal::{Event, Value, MAX_JOURNAL_EVENTS};
pub use registry::{Counter, Gauge, Registry, Span};
pub use trace::TraceSpan;
