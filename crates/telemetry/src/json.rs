//! A minimal recursive-descent JSON parser (zero dependencies).
//!
//! The workspace bans external crates, yet several consumers need to
//! *read* JSON: the Chrome-trace round-trip check, the bench
//! `perf_trajectory compare` subcommand that diffs `BENCH_*.json` files,
//! and — since `fedora-net` — the wire protocol, which parses **untrusted
//! bytes off a socket**. The parser therefore returns typed errors and
//! never panics on any input: recursion depth is bounded ([`MAX_DEPTH`]),
//! numbers that overflow to non-finite values are rejected, trailing
//! garbage is rejected, and [`parse_bytes`] validates UTF-8 up front
//! instead of trusting the caller.

use std::fmt;

/// Maximum nesting depth (objects + arrays) before a document is rejected.
///
/// Nothing this workspace produces nests deeper than ~10 levels; the bound
/// exists so adversarial input like `[[[[…` off the wire exhausts a counter
/// instead of the parser's stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`, which is exact for the `u53` range
    /// our exporters emit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys kept as-is
    /// ([`Json::get`] returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` on other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number value as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes to compact JSON text that [`parse`] round-trips.
    ///
    /// Non-finite numbers (unrepresentable in JSON) serialize as `null`,
    /// matching the metric exporters.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out);
        out
    }

    fn dump_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) if v.is_finite() => {
                out.push_str(&format!("{v}"));
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.dump_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).dump_into(out);
                    out.push(':');
                    v.dump_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Parses a complete JSON document from raw bytes (e.g. a network frame).
///
/// Identical to [`parse`] but validates UTF-8 first, turning malformed
/// encodings into a typed [`JsonError`] at the offending byte offset
/// instead of requiring the caller to pre-validate.
///
/// # Errors
///
/// Returns a [`JsonError`] on invalid UTF-8 or any grammar violation.
pub fn parse_bytes(input: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(input).map_err(|e| JsonError {
        offset: e.valid_up_to(),
        message: "invalid UTF-8 in document".to_string(),
    })?;
    parse(text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current object/array nesting depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe
                    // to slice on char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        // `"1e999"` parses to +inf; an untrusted peer must not be able to
        // smuggle non-finite values into a grammar that has no spelling
        // for them.
        if !value.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(value))
    }
}

/// Length of the UTF-8 sequence starting with `first` (1 for ASCII and for
/// anything malformed — the subsequent `from_utf8` catches real errors).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}, null], "d": {} }"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .and_then(Json::as_str),
            Some("c")
        );
        assert_eq!(doc.get("d").unwrap().as_object(), Some(&[][..]));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
        let err = parse("[1, x]").unwrap_err();
        assert!(err.offset > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn dump_round_trips_through_parse() {
        let doc = parse(
            r#"{"a": [1, {"b": "c\"\\\n\t"}, null, true, false], "n": -1.5e2, "u": "héllo😀"}"#,
        )
        .unwrap();
        assert_eq!(parse(&doc.dump()).unwrap(), doc);
        // Control characters escape to \uXXXX and survive the cycle.
        let ctrl = Json::Str("a\u{01}b".into());
        assert_eq!(ctrl.dump(), "\"a\\u0001b\"");
        assert_eq!(parse(&ctrl.dump()).unwrap(), ctrl);
        // Non-finite numbers degrade to null rather than emitting invalid JSON.
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
        assert!(parse(&Json::Num(f64::NAN).dump()).is_ok());
    }

    #[test]
    fn bounds_nesting_depth() {
        // Within the bound: fine.
        let mut ok = "[".repeat(MAX_DEPTH);
        ok.push_str(&"]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // One deeper: typed error, not a stack overflow.
        let mut deep = "[".repeat(MAX_DEPTH + 1);
        deep.push_str(&"]".repeat(MAX_DEPTH + 1));
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Way deeper (the adversarial case): still a clean error.
        let hostile = "[".repeat(1_000_000);
        assert!(parse(&hostile).is_err());
        // Mixed objects and arrays share the one depth counter.
        let mixed = "{\"a\":[".repeat(MAX_DEPTH);
        assert!(parse(&mixed).is_err());
        // Siblings don't accumulate depth.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn rejects_oversized_numbers() {
        for bad in ["1e999", "-1e999", "1e309"] {
            let err = parse(bad).unwrap_err();
            assert!(err.message.contains("out of range"), "{bad}: {err}");
        }
        // Large but representable doubles still parse.
        assert!(parse("1e308").is_ok());
        assert!(parse("-1.7976931348623157e308").is_ok());
    }

    #[test]
    fn parse_bytes_rejects_invalid_utf8() {
        let err = parse_bytes(b"\"ab\xff\"").unwrap_err();
        assert!(err.message.contains("UTF-8"), "{err}");
        assert_eq!(err.offset, 3);
        assert_eq!(parse_bytes(b"[1,2]").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn truncated_and_garbage_inputs_error_cleanly() {
        for bad in [
            &b"{\"a\": 1"[..],
            b"[1, 2",
            b"\"esc\\",
            b"\"\\u12",
            b"123abc",
            b"{} trailing",
            b"nul",
            b"-",
            b"- 1",
        ] {
            assert!(parse_bytes(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("7.5").unwrap().as_f64(), Some(7.5));
    }

    #[test]
    fn roundtrips_snapshot_export() {
        let r = crate::Registry::new();
        r.counter("storage.pages_read").add(5);
        r.gauge("oram.stash.len").set(3.5);
        r.histogram("oram.access.latency").record(100);
        r.event(
            "round.end",
            &[("round", 1u64.into()), ("mode", "raw".into())],
        );
        let doc = parse(&r.snapshot().to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("fedora-telemetry/v1")
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("storage.pages_read"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("oram.stash.len"))
                .and_then(Json::as_f64),
            Some(3.5)
        );
        assert_eq!(
            doc.get("events").and_then(Json::as_array).map(<[_]>::len),
            Some(1)
        );
    }
}
