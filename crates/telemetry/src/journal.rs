//! Structured per-round event journal.
//!
//! Events carry a name and a small bag of typed fields, and are stamped with
//! a registry-wide sequence number so interleavings across layers stay
//! ordered. The journal is bounded: once its capacity is reached new events
//! are counted as dropped instead of growing without bound, so a long
//! training run cannot OOM the server through its own telemetry. The
//! capacity defaults to [`MAX_JOURNAL_EVENTS`] and is tunable per registry
//! ([`Registry::set_journal_capacity`](crate::Registry::set_journal_capacity)).

/// Default upper bound on retained events per registry.
pub const MAX_JOURNAL_EVENTS: usize = 65_536;

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(v as u64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One journal entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Registry-wide sequence number (dense from 0, including dropped tail).
    pub seq: u64,
    /// Event name, dot-separated by convention (`round.end`, `fault.detected`).
    pub name: String,
    /// Typed fields in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Bounded event buffer (lives behind the registry's mutex).
#[derive(Debug)]
pub(crate) struct Journal {
    events: Vec<Event>,
    next_seq: u64,
    dropped: u64,
    capacity: usize,
}

impl Default for Journal {
    fn default() -> Self {
        Journal {
            events: Vec::new(),
            next_seq: 0,
            dropped: 0,
            capacity: MAX_JOURNAL_EVENTS,
        }
    }
}

impl Journal {
    /// Changes the retention bound. Already-buffered events are kept even if
    /// they exceed a smaller capacity; only future pushes are affected.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn push(&mut self, name: &str, fields: &[(&str, Value)]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(Event {
            seq,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    pub(crate) fn events(&self) -> &[Event] {
        &self.events
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut j = Journal::default();
        j.push(
            "round.end",
            &[("round", 3u64.into()), ("mode", "raw".into())],
        );
        assert_eq!(j.events().len(), 1);
        let e = &j.events()[0];
        assert_eq!(e.seq, 0);
        assert_eq!(e.field("round"), Some(&Value::U64(3)));
        assert_eq!(e.field("mode"), Some(&Value::Str("raw".into())));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn bounded_with_dropped_count() {
        let mut j = Journal::default();
        for _ in 0..MAX_JOURNAL_EVENTS + 10 {
            j.push("e", &[]);
        }
        assert_eq!(j.events().len(), MAX_JOURNAL_EVENTS);
        assert_eq!(j.dropped(), 10);
        // Sequence numbers keep advancing past the cap.
        assert_eq!(
            j.events().last().map(|e| e.seq),
            Some(MAX_JOURNAL_EVENTS as u64 - 1)
        );
    }

    #[test]
    fn capacity_is_configurable() {
        let mut j = Journal::default();
        assert_eq!(j.capacity(), MAX_JOURNAL_EVENTS);
        j.set_capacity(4);
        for _ in 0..10 {
            j.push("e", &[]);
        }
        assert_eq!(j.events().len(), 4);
        assert_eq!(j.dropped(), 6);
        // Growing the bound re-enables retention without losing seq density.
        j.set_capacity(6);
        j.push("e", &[]);
        assert_eq!(j.events().len(), 5);
        assert_eq!(j.events().last().map(|e| e.seq), Some(10));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(true), Value::U64(1));
        assert_eq!(Value::from(-1i64), Value::I64(-1));
        assert_eq!(Value::from(0.5f64), Value::F64(0.5));
        assert_eq!(Value::from("x".to_string()), Value::Str("x".into()));
    }
}
