//! Property tests for the histogram bucket math (ISSUE 2 satellite).
//!
//! Two families of properties:
//! 1. every recorded value lands in the bucket whose bounds contain it;
//! 2. the reported p50/p95/p99 are within one bucket width of the exact
//!    nearest-rank sample quantiles.

use fedora_telemetry::{bucket_bounds, bucket_index, Registry, NUM_BUCKETS};
use proptest::prelude::*;

/// Exact nearest-rank quantile, the definition the histogram approximates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn bucket_width(value: u64) -> u64 {
    let (lo, hi) = bucket_bounds(bucket_index(value));
    hi - lo
}

proptest! {
    #[test]
    fn value_lands_in_its_bucket(value in any::<u64>()) {
        let idx = bucket_index(value);
        prop_assert!(idx < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= value && value <= hi,
            "value {value} outside bucket {idx} = [{lo}, {hi}]");
    }

    #[test]
    fn buckets_partition_neighbourhood(value in 1..u64::MAX) {
        // The bucket function is monotone: v-1 maps to the same or the
        // previous bucket, never a later one.
        prop_assert!(bucket_index(value - 1) <= bucket_index(value));
    }

    #[test]
    fn percentiles_within_one_bucket_width(
        mut values in proptest::collection::vec(0u64..1u64 << 48, 1..400)
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("test.latency");
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();

        let summary = hist.summary();
        prop_assert_eq!(summary.count, values.len() as u64);
        prop_assert_eq!(summary.min, values[0]);
        prop_assert_eq!(summary.max, *values.last().unwrap());

        for (q, got) in [(0.50, summary.p50), (0.95, summary.p95), (0.99, summary.p99)] {
            let exact = exact_quantile(&values, q);
            let tol = bucket_width(exact);
            let err = got.abs_diff(exact);
            prop_assert!(
                err <= tol,
                "q={q}: estimate {got} vs exact {exact} (err {err} > bucket width {tol})"
            );
        }
    }

    #[test]
    fn percentiles_are_ordered(
        values in proptest::collection::vec(any::<u32>().prop_map(u64::from), 1..200)
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("test.ordered");
        for &v in &values {
            hist.record(v);
        }
        let s = hist.summary();
        prop_assert!(s.min <= s.p50);
        prop_assert!(s.p50 <= s.p95);
        prop_assert!(s.p95 <= s.p99);
        prop_assert!(s.p99 <= s.max);
    }
}
