//! Group-based encryption for tree-structured data (paper §5.2, Figure 6).
//!
//! Existing TEEs allocate an encryption counter and an authentication tag per
//! 64-byte cache line and protect counters with a Merkle tree — too expensive
//! for multi-gigabyte ORAM trees. FEDORA instead groups multiple tree nodes
//! (512 bytes in the paper) into one encryption *group* that shares a single
//! counter and tag, and stores each group's counter inside its **parent**
//! group. Only the root group's counter needs tamper-proof storage (the 4-KB
//! scratchpad). Decrypting a path walks root → leaf, verifying each group
//! and extracting the next group's counter; encrypting walks leaf → root,
//! bumping the on-path counters.
//!
//! This module is device-agnostic: it transforms byte vectors. The ORAM
//! layer owns where the encrypted groups live (DRAM or SSD).

use fedora_par::WorkerPool;

use crate::aead::{AeadError, ChaCha20Poly1305, Key, Nonce, TAG_LEN};

/// Number of child-counter slots stored in each group (binary tree).
pub const CHILD_SLOTS: usize = 2;
/// Bytes of counter material appended to each group payload.
pub const COUNTER_OVERHEAD: usize = CHILD_SLOTS * 8;

/// Error from group-tree path decryption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupError {
    /// A group failed authentication (tampered data or stale counter —
    /// i.e. a replay of an old version).
    Authentication {
        /// Index of the failing group within the path (0 = root).
        level: usize,
    },
    /// Input shape was malformed (mismatched lengths).
    Malformed,
}

impl core::fmt::Display for GroupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GroupError::Authentication { level } => {
                write!(f, "group authentication failed at path level {level}")
            }
            GroupError::Malformed => f.write_str("malformed group path"),
        }
    }
}

impl std::error::Error for GroupError {}

/// A decrypted path through the group tree: the mutable payloads plus the
/// bookkeeping needed to re-encrypt (the off-path child counters that must
/// be preserved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecryptedPath {
    /// Plaintext payload of each group, root first.
    pub payloads: Vec<Vec<u8>>,
    /// Child counters `[left, right]` carried by each group.
    pub child_counters: Vec<[u64; 2]>,
    /// Public group ids, root first.
    ids: Vec<u32>,
    /// Direction taken from group `i` to group `i+1` (`false` = left).
    dirs: Vec<bool>,
}

impl DecryptedPath {
    /// Number of groups on the path.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }
}

/// Encrypts/decrypts paths of a binary tree whose per-group counters are
/// stored in parent groups, with the root counter held by the caller's
/// scratchpad model.
///
/// # Example
///
/// ```
/// use fedora_crypto::aead::Key;
/// use fedora_crypto::group::GroupTreeCipher;
///
/// let mut cipher = GroupTreeCipher::new(Key::from_bytes([1; 32]));
/// // A 2-level path: root group id 0, child id 1 (left child).
/// let enc = cipher.encrypt_fresh_path(&[b"root-data".to_vec(), b"leaf-data".to_vec()],
///                                     &[0, 1], &[false]);
/// let dec = cipher.decrypt_path(&enc, &[0, 1], &[false]).unwrap();
/// assert_eq!(dec.payloads[1], b"leaf-data");
/// ```
#[derive(Clone, Debug)]
pub struct GroupTreeCipher {
    aead: ChaCha20Poly1305,
    root_counter: u64,
    pool: WorkerPool,
}

impl GroupTreeCipher {
    /// Creates a cipher with root counter 0.
    pub fn new(key: Key) -> Self {
        GroupTreeCipher {
            aead: ChaCha20Poly1305::new(&key),
            root_counter: 0,
            pool: WorkerPool::serial(),
        }
    }

    /// Sets the worker-thread count for path *encryption* (each on-path
    /// group encrypts independently once the counters are fixed).
    /// Decryption stays inherently serial: each group's counter lives in
    /// its parent's plaintext, so the walk is a data dependency chain.
    /// Thread count never changes the produced bytes.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = WorkerPool::new(threads);
    }

    /// The current root counter (lives in the scratchpad in the real
    /// system; exposed for persistence and tests).
    pub fn root_counter(&self) -> u64 {
        self.root_counter
    }

    /// Total ciphertext overhead per group (child counters + tag).
    pub const fn overhead() -> usize {
        COUNTER_OVERHEAD + TAG_LEN
    }

    /// Encrypts a fresh path whose groups have never been written (all
    /// child counters start at 0). Used at tree initialization.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != payloads.len()` or `dirs.len() + 1 !=
    /// payloads.len()` — these are programming errors in tree geometry.
    pub fn encrypt_fresh_path(
        &mut self,
        payloads: &[Vec<u8>],
        ids: &[u32],
        dirs: &[bool],
    ) -> Vec<Vec<u8>> {
        assert_eq!(ids.len(), payloads.len(), "one id per group");
        assert_eq!(dirs.len() + 1, payloads.len(), "one direction per edge");
        let path = DecryptedPath {
            payloads: payloads.to_vec(),
            child_counters: vec![[0, 0]; payloads.len()],
            ids: ids.to_vec(),
            dirs: dirs.to_vec(),
        };
        self.encrypt_path(path)
    }

    /// Decrypts a path root → leaf, verifying authenticity and freshness of
    /// every group along the way.
    ///
    /// # Errors
    ///
    /// [`GroupError::Authentication`] if any group fails its tag check —
    /// which also catches *replay*, because a stale group would have been
    /// encrypted under an older counter. [`GroupError::Malformed`] if the
    /// shapes disagree.
    pub fn decrypt_path(
        &self,
        encrypted: &[Vec<u8>],
        ids: &[u32],
        dirs: &[bool],
    ) -> Result<DecryptedPath, GroupError> {
        if ids.len() != encrypted.len() || dirs.len() + 1 != encrypted.len() || encrypted.is_empty()
        {
            return Err(GroupError::Malformed);
        }
        let mut payloads = Vec::with_capacity(encrypted.len());
        let mut child_counters = Vec::with_capacity(encrypted.len());
        let mut counter = self.root_counter;
        for (level, group) in encrypted.iter().enumerate() {
            let nonce = Nonce::from_u64_pair(ids[level], counter);
            let aad = ids[level].to_le_bytes();
            let plain = self
                .aead
                .decrypt(&nonce, group, &aad)
                .map_err(|AeadError| GroupError::Authentication { level })?;
            if plain.len() < COUNTER_OVERHEAD {
                return Err(GroupError::Malformed);
            }
            let split = plain.len() - COUNTER_OVERHEAD;
            let left = u64::from_le_bytes(plain[split..split + 8].try_into().expect("8 bytes"));
            let right = u64::from_le_bytes(plain[split + 8..].try_into().expect("8 bytes"));
            child_counters.push([left, right]);
            payloads.push(plain[..split].to_vec());
            if level < dirs.len() {
                counter = if dirs[level] { right } else { left };
            }
        }
        Ok(DecryptedPath {
            payloads,
            child_counters,
            ids: ids.to_vec(),
            dirs: dirs.to_vec(),
        })
    }

    /// Re-encrypts a (possibly modified) decrypted path, bumping the counter
    /// of every on-path group: each group's new counter is written into its
    /// parent, and the root counter (scratchpad) is incremented.
    ///
    /// Returns the new encrypted groups, root first.
    pub fn encrypt_path(&mut self, mut path: DecryptedPath) -> Vec<Vec<u8>> {
        let n = path.payloads.len();
        assert!(n > 0, "cannot encrypt an empty path");
        // Bump on-path child counters parent-side, leaf upward.
        for level in (0..n - 1).rev() {
            let slot = usize::from(path.dirs[level]);
            path.child_counters[level][slot] = path.child_counters[level][slot].wrapping_add(1);
        }
        self.root_counter = self.root_counter.wrapping_add(1);

        let mut counters_used = Vec::with_capacity(n);
        counters_used.push(self.root_counter);
        for level in 0..n - 1 {
            let slot = usize::from(path.dirs[level]);
            counters_used.push(path.child_counters[level][slot]);
        }

        // With every on-path counter fixed above, each group's AEAD is
        // independent — fan the encrypts out and collect in level order
        // (bit-identical to the serial loop).
        let aead = &self.aead;
        let path = &path;
        self.pool.map_indices(n, |level| {
            let mut plain = path.payloads[level].clone();
            plain.extend_from_slice(&path.child_counters[level][0].to_le_bytes());
            plain.extend_from_slice(&path.child_counters[level][1].to_le_bytes());
            let nonce = Nonce::from_u64_pair(path.ids[level], counters_used[level]);
            let aad = path.ids[level].to_le_bytes();
            aead.encrypt(&nonce, &plain, &aad)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> GroupTreeCipher {
        GroupTreeCipher::new(Key::from_bytes([9u8; 32]))
    }

    #[test]
    fn fresh_roundtrip_single_group() {
        let mut c = cipher();
        let enc = c.encrypt_fresh_path(&[b"only-root".to_vec()], &[0], &[]);
        let dec = c.decrypt_path(&enc, &[0], &[]).unwrap();
        assert_eq!(dec.payloads, vec![b"only-root".to_vec()]);
    }

    #[test]
    fn fresh_roundtrip_three_levels() {
        let mut c = cipher();
        let payloads = vec![vec![1u8; 32], vec![2u8; 32], vec![3u8; 32]];
        let ids = [0u32, 2, 5];
        let dirs = [true, false];
        let enc = c.encrypt_fresh_path(&payloads, &ids, &dirs);
        let dec = c.decrypt_path(&enc, &ids, &dirs).unwrap();
        assert_eq!(dec.payloads, payloads);
        assert_eq!(dec.child_counters.len(), 3);
    }

    #[test]
    fn modify_and_reencrypt() {
        let mut c = cipher();
        let ids = [0u32, 1];
        let dirs = [false];
        let enc = c.encrypt_fresh_path(&[vec![0u8; 16], vec![0u8; 16]], &ids, &dirs);
        let mut dec = c.decrypt_path(&enc, &ids, &dirs).unwrap();
        dec.payloads[1] = vec![0xAB; 16];
        let enc2 = c.encrypt_path(dec);
        let dec2 = c.decrypt_path(&enc2, &ids, &dirs).unwrap();
        assert_eq!(dec2.payloads[1], vec![0xAB; 16]);
        assert_eq!(dec2.payloads[0], vec![0u8; 16]);
    }

    #[test]
    fn replay_of_old_root_detected() {
        let mut c = cipher();
        let ids = [0u32];
        let enc_old = c.encrypt_fresh_path(&[vec![7u8; 8]], &ids, &[]);
        // Write a newer version; root counter advances.
        let dec = c.decrypt_path(&enc_old, &ids, &[]).unwrap();
        let _enc_new = c.encrypt_path(dec);
        // Replaying the old ciphertext now fails: counter mismatch.
        assert_eq!(
            c.decrypt_path(&enc_old, &ids, &[]),
            Err(GroupError::Authentication { level: 0 })
        );
    }

    #[test]
    fn tampered_leaf_detected_at_its_level() {
        let mut c = cipher();
        let ids = [0u32, 1, 3];
        let dirs = [false, false];
        let mut enc =
            c.encrypt_fresh_path(&[vec![0u8; 8], vec![1u8; 8], vec![2u8; 8]], &ids, &dirs);
        let last = enc.len() - 1;
        enc[last][0] ^= 0xFF;
        assert_eq!(
            c.decrypt_path(&enc, &ids, &dirs),
            Err(GroupError::Authentication { level: 2 })
        );
    }

    #[test]
    fn swapped_groups_detected() {
        // Moving a validly-encrypted group to a different tree position
        // fails because the group id is the AAD/nonce domain.
        let mut c = cipher();
        let ids = [0u32, 1];
        let dirs = [false];
        let enc = c.encrypt_fresh_path(&[vec![0u8; 8], vec![1u8; 8]], &ids, &dirs);
        let swapped = vec![enc[0].clone(), enc[0].clone()];
        assert!(c.decrypt_path(&swapped, &ids, &dirs).is_err());
    }

    #[test]
    fn counters_increment_per_write() {
        let mut c = cipher();
        assert_eq!(c.root_counter(), 0);
        let enc = c.encrypt_fresh_path(&[vec![0u8; 4]], &[0], &[]);
        assert_eq!(c.root_counter(), 1);
        let dec = c.decrypt_path(&enc, &[0], &[]).unwrap();
        let _ = c.encrypt_path(dec);
        assert_eq!(c.root_counter(), 2);
    }

    #[test]
    fn off_path_sibling_counter_preserved() {
        // Write path root->left twice, then root->right once; the root's
        // left-counter must still decrypt the left child.
        let mut c = cipher();
        // Tree: root 0, children 1 (left) and 2 (right).
        let left_enc = c.encrypt_fresh_path(&[vec![0u8; 4], vec![1u8; 4]], &[0, 1], &[false]);
        // Decrypt left path, re-encrypt with a change.
        let mut dec = c.decrypt_path(&left_enc, &[0, 1], &[false]).unwrap();
        dec.payloads[1] = vec![9u8; 4];
        let left_enc2 = c.encrypt_path(dec);
        // Now operate on the right path, reusing the *current* root group.
        // Build a right path by decrypting the root from left_enc2 and
        // encrypting a fresh right child: simulate by asking decrypt for a
        // path of length 1 (root only) then manual two-level encrypt.
        let root_only = c.decrypt_path(&left_enc2[..1], &[0], &[]).unwrap();
        let right_path = DecryptedPath {
            payloads: vec![root_only.payloads[0].clone(), vec![7u8; 4]],
            child_counters: vec![root_only.child_counters[0], [0, 0]],
            ids: vec![0, 2],
            dirs: vec![true],
        };
        let right_enc = c.encrypt_path(right_path);
        // The left child is still decryptable under the new root.
        let full_left = vec![right_enc[0].clone(), left_enc2[1].clone()];
        let dec_left = c.decrypt_path(&full_left, &[0, 1], &[false]).unwrap();
        assert_eq!(dec_left.payloads[1], vec![9u8; 4]);
        // And the right child decrypts too.
        let dec_right = c.decrypt_path(&right_enc, &[0, 2], &[true]).unwrap();
        assert_eq!(dec_right.payloads[1], vec![7u8; 4]);
    }

    #[test]
    fn parallel_encrypt_bit_identical_to_serial() {
        let payloads: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 48]).collect();
        let ids: Vec<u32> = (0..6).collect();
        let dirs = vec![false, true, false, true, false];
        let mut serial = cipher();
        let mut par = cipher();
        par.set_threads(4);
        let enc_s = serial.encrypt_fresh_path(&payloads, &ids, &dirs);
        let enc_p = par.encrypt_fresh_path(&payloads, &ids, &dirs);
        assert_eq!(enc_s, enc_p);
        // A modify-and-reencrypt cycle stays identical too.
        let dec_s = serial.decrypt_path(&enc_s, &ids, &dirs).unwrap();
        let dec_p = par.decrypt_path(&enc_p, &ids, &dirs).unwrap();
        assert_eq!(serial.encrypt_path(dec_s), par.encrypt_path(dec_p));
    }

    #[test]
    fn malformed_shapes_rejected() {
        let c = cipher();
        assert_eq!(c.decrypt_path(&[], &[], &[]), Err(GroupError::Malformed));
        assert_eq!(
            c.decrypt_path(&[vec![0u8; 40]], &[0, 1], &[]),
            Err(GroupError::Malformed)
        );
    }

    #[test]
    fn overhead_constant() {
        assert_eq!(GroupTreeCipher::overhead(), 16 + 16);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_paths_roundtrip(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..6),
            dirs_seed: u64,
            key in proptest::array::uniform32(any::<u8>()),
        ) {
            let mut c = GroupTreeCipher::new(Key::from_bytes(key));
            let n = payloads.len();
            let ids: Vec<u32> = (0..n as u32).collect();
            let dirs: Vec<bool> = (0..n.saturating_sub(1))
                .map(|i| (dirs_seed >> i) & 1 == 1)
                .collect();
            let enc = c.encrypt_fresh_path(&payloads, &ids, &dirs);
            let dec = c.decrypt_path(&enc, &ids, &dirs).unwrap();
            prop_assert_eq!(&dec.payloads, &payloads);
            // Modify-and-reencrypt cycle also roundtrips.
            let enc2 = c.encrypt_path(dec);
            let dec2 = c.decrypt_path(&enc2, &ids, &dirs).unwrap();
            prop_assert_eq!(&dec2.payloads, &payloads);
        }
    }
}
