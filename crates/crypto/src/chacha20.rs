//! The ChaCha20 stream cipher (RFC 8439).
//!
//! ChaCha20 is inherently constant-time: the keystream derivation is pure
//! ARX (add/rotate/xor) arithmetic with no secret-dependent memory access,
//! which is exactly what the FEDORA controller's threat model requires.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (the 96-bit IETF variant).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one ChaCha20 keystream block as its 16 native `u32` words —
/// the form [`xor_stream`] consumes directly, skipping the byte
/// serialization round-trip of [`block`].
fn block_words(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    for (w, s) in working.iter_mut().zip(&state) {
        *w = w.wrapping_add(*s);
    }
    working
}

/// Computes one 64-byte ChaCha20 keystream block.
///
/// `counter` is the 32-bit block counter from RFC 8439 §2.3.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let words = block_words(key, counter, nonce);
    let mut out = [0u8; BLOCK_LEN];
    for (i, word) in words.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream (starting at block `initial_counter`) into
/// `data` in place. Encryption and decryption are the same operation.
///
/// # Example
///
/// ```
/// use fedora_crypto::chacha20::xor_stream;
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut data = *b"attack at dawn";
/// xor_stream(&key, 0, &nonce, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// xor_stream(&key, 0, &nonce, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    initial_counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    let mut chunks = data.chunks_exact_mut(BLOCK_LEN);
    let mut block_idx = 0u32;
    // Full blocks: XOR the keystream 64 bits at a time straight from the
    // block words — no per-block byte serialization, no scratch buffer.
    // `from_le`/`to_le` keep the lane packing endian-correct everywhere.
    for chunk in &mut chunks {
        let ks = block_words(key, initial_counter.wrapping_add(block_idx), nonce);
        block_idx = block_idx.wrapping_add(1);
        for (i, pair) in ks.chunks_exact(2).enumerate() {
            let k = u64::from(pair[0]) | (u64::from(pair[1]) << 32);
            let off = 8 * i;
            let d = u64::from_le_bytes(chunk[off..off + 8].try_into().expect("8 bytes"));
            chunk[off..off + 8].copy_from_slice(&(d ^ k).to_le_bytes());
        }
    }
    // Partial tail block: byte-wise against a stack-serialized keystream.
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let ks = block(key, initial_counter.wrapping_add(block_idx), nonce);
        for (d, k) in tail.iter_mut().zip(ks.iter()) {
            *d ^= *k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let out = block(&key, 1, &nonce);
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(out.to_vec(), expected);
    }

    /// RFC 8439 §2.4.2 encryption test vector ("Ladies and Gentlemen...").
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42 874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn roundtrip_multiblock() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        xor_stream(&key, 7, &nonce, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, 7, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn wordwise_xor_matches_bytewise_reference() {
        // The u64-lane fast path must agree with the scalar reference
        // (block() + byte XOR) for every alignment of the tail.
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 130, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let mut fast = original.clone();
            xor_stream(&key, 3, &nonce, &mut fast);
            let mut reference = original.clone();
            for (block_idx, chunk) in reference.chunks_mut(BLOCK_LEN).enumerate() {
                let ks = block(&key, 3u32.wrapping_add(block_idx as u32), &nonce);
                for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                    *d ^= *k;
                }
            }
            assert_eq!(fast, reference, "len={len}");
        }
    }

    /// Assertion-free throughput microbench: `cargo test -p fedora-crypto
    /// --release -- --ignored --nocapture xor_stream_throughput`.
    #[test]
    #[ignore = "microbench; run with --ignored --nocapture for MB/s"]
    fn xor_stream_throughput() {
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        let mut data = vec![0xA5u8; 4 << 20];
        let iters = 32u32;
        let start = std::time::Instant::now();
        for i in 0..iters {
            xor_stream(&key, i, &nonce, &mut data);
        }
        let secs = start.elapsed().as_secs_f64();
        let mb = (data.len() as f64 * f64::from(iters)) / (1024.0 * 1024.0);
        eprintln!("chacha20 xor_stream: {:.1} MB/s", mb / secs);
    }

    #[test]
    fn different_counters_differ() {
        let key = [1u8; 32];
        let nonce = [0u8; 12];
        assert_ne!(block(&key, 0, &nonce), block(&key, 1, &nonce));
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        assert_ne!(block(&key, 0, &[0u8; 12]), block(&key, 0, &[1u8; 12]));
    }
}
