//! Typed integrity-violation classification.
//!
//! FEDORA's counter scheme (see [`crate::counter`]) makes every AEAD
//! decryption a freshness *and* integrity check: the nonce encodes the
//! expected write counter, so a tag mismatch means the ciphertext is not
//! the bytes written at that counter. The storage layer refines a bare
//! [`crate::AeadError`] into one of three [`IntegrityError`] kinds by
//! probing — retrying the read (transient), re-trying older counters
//! (rollback), or concluding corruption — so recovery policy can differ
//! per kind: transients are retried, rollbacks and corruption quarantine
//! the bucket.

/// Classified integrity failure for one authenticated unit (bucket/group).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntegrityError {
    /// Tag mismatch not explained by any plausible counter: the stored
    /// bytes were altered (bit rot, torn write, active tampering).
    Corruption,
    /// The ciphertext authenticates under an *older* write counter: a
    /// stale version was replayed (rollback attack or lost write).
    Rollback,
    /// The device reported a retryable failure; the data itself may be
    /// intact.
    Transient,
}

impl IntegrityError {
    /// Whether retrying the same operation can succeed without repair.
    pub fn is_retryable(self) -> bool {
        matches!(self, IntegrityError::Transient)
    }
}

impl core::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IntegrityError::Corruption => write!(f, "corruption (tag mismatch at current counter)"),
            IntegrityError::Rollback => write!(f, "rollback (stale version authenticates)"),
            IntegrityError::Transient => write!(f, "transient device failure"),
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_transient_is_retryable() {
        assert!(IntegrityError::Transient.is_retryable());
        assert!(!IntegrityError::Corruption.is_retryable());
        assert!(!IntegrityError::Rollback.is_retryable());
    }

    #[test]
    fn display_distinct() {
        let texts: Vec<String> = [
            IntegrityError::Corruption,
            IntegrityError::Rollback,
            IntegrityError::Transient,
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        assert_ne!(texts[0], texts[1]);
        assert_ne!(texts[1], texts[2]);
    }
}
