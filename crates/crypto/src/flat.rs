//! Group-based encryption for *flat* off-chip arrays (paper §5.2).
//!
//! The tree-structured scheme in [`crate::group`] covers the ORAMs; the
//! position map and VTree are flat arrays, and FEDORA encrypts them with
//! the same idea applied hierarchically: the array is split into 512-byte
//! **data groups**, each group's write counter lives in a **counter
//! group** one level up (64 counters of 8 bytes per 512-byte group), and
//! the hierarchy repeats until a single group remains, whose counter is
//! the on-chip **root counter**. Reads verify the whole counter chain
//! top-down; writes bump it bottom-up — replay of any stale group fails
//! authentication without any Merkle tree.

use crate::aead::{ChaCha20Poly1305, Key, Nonce};

/// Bytes per encryption group (the paper's empirical choice).
pub const GROUP_BYTES: usize = 512;
/// Counters per counter-group (`GROUP_BYTES / 8`).
pub const COUNTERS_PER_GROUP: usize = GROUP_BYTES / 8;

/// Error from flat-store operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatStoreError {
    /// A group failed authentication (tamper or replay).
    Authentication {
        /// Hierarchy level (0 = data groups).
        level: usize,
        /// Group index within the level.
        group: usize,
    },
    /// Group index beyond the array.
    OutOfRange {
        /// The offending group index.
        group: usize,
        /// Number of data groups.
        capacity: usize,
    },
}

impl core::fmt::Display for FlatStoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlatStoreError::Authentication { level, group } => {
                write!(f, "group {group} at level {level} failed authentication")
            }
            FlatStoreError::OutOfRange { group, capacity } => {
                write!(f, "group {group} out of range ({capacity} groups)")
            }
        }
    }
}

impl std::error::Error for FlatStoreError {}

/// A flat byte array encrypted in 512-byte groups with a hierarchical
/// counter chain and a single on-chip root counter.
///
/// # Example
///
/// ```
/// use fedora_crypto::aead::Key;
/// use fedora_crypto::flat::FlatGroupStore;
///
/// let mut store = FlatGroupStore::new(Key::from_bytes([1; 32]), 4);
/// store.write_group(2, &[0xAB; 512]).unwrap();
/// assert_eq!(store.read_group(2).unwrap()[0], 0xAB);
/// ```
pub struct FlatGroupStore {
    /// Per-level AEADs (distinct subkeys so nonces never collide across
    /// levels).
    aeads: Vec<ChaCha20Poly1305>,
    /// Ciphertexts: `levels[0]` are data groups; `levels[i>0]` counter
    /// groups.
    levels: Vec<Vec<Vec<u8>>>,
    /// Plaintext counter mirrors (the controller's working copy; the
    /// encrypted form is authoritative and is what reads verify).
    counters: Vec<Vec<u64>>,
    root_counter: u64,
    num_groups: usize,
}

impl FlatGroupStore {
    /// Creates a store of `num_groups` zero-filled 512-byte data groups.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups == 0`.
    pub fn new(key: Key, num_groups: usize) -> Self {
        assert!(num_groups > 0, "need at least one group");
        // Plan levels: level 0 has num_groups; each level above has
        // ceil(prev / 64) counter groups, until one group remains.
        let mut sizes = vec![num_groups];
        while *sizes.last().expect("non-empty") > 1 {
            let next = sizes
                .last()
                .expect("non-empty")
                .div_ceil(COUNTERS_PER_GROUP);
            sizes.push(next);
            if next == 1 {
                break;
            }
        }
        let aeads: Vec<ChaCha20Poly1305> = (0..sizes.len())
            .map(|l| ChaCha20Poly1305::new(&key.derive_subkey(&format!("flat-level-{l}"))))
            .collect();
        let mut store = FlatGroupStore {
            aeads,
            levels: sizes.iter().map(|&n| vec![Vec::new(); n]).collect(),
            counters: sizes.iter().map(|&n| vec![0u64; n]).collect(),
            root_counter: 0,
            num_groups,
        };
        // Encrypt everything fresh at counter 0.
        for level in 0..store.levels.len() {
            for group in 0..store.levels[level].len() {
                let plain = store.plaintext_for(level, group, &vec![0u8; GROUP_BYTES]);
                store.levels[level][group] = store.seal(level, group, 0, &plain);
            }
        }
        store
    }

    /// Number of data groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of hierarchy levels (≥ 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total ciphertext bytes held off-chip — the §5.2 memory-overhead
    /// figure (counter+tag amortized over 512-byte groups).
    pub fn total_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// The on-chip root counter.
    pub fn root_counter(&self) -> u64 {
        self.root_counter
    }

    /// Plaintext of a counter group for the level below, or passthrough
    /// for data groups.
    fn plaintext_for(&self, level: usize, group: usize, data: &[u8]) -> Vec<u8> {
        if level == 0 {
            data.to_vec()
        } else {
            let mut plain = vec![0u8; GROUP_BYTES];
            let below = &self.counters[level - 1];
            for slot in 0..COUNTERS_PER_GROUP {
                let idx = group * COUNTERS_PER_GROUP + slot;
                let v = below.get(idx).copied().unwrap_or(0);
                plain[slot * 8..(slot + 1) * 8].copy_from_slice(&v.to_le_bytes());
            }
            plain
        }
    }

    fn seal(&self, level: usize, group: usize, counter: u64, plain: &[u8]) -> Vec<u8> {
        let nonce = Nonce::from_u64_pair(group as u32, counter);
        let aad = (group as u64).to_le_bytes();
        self.aeads[level].encrypt(&nonce, plain, &aad)
    }

    fn open(&self, level: usize, group: usize, counter: u64) -> Result<Vec<u8>, FlatStoreError> {
        let nonce = Nonce::from_u64_pair(group as u32, counter);
        let aad = (group as u64).to_le_bytes();
        self.aeads[level]
            .decrypt(&nonce, &self.levels[level][group], &aad)
            .map_err(|_| FlatStoreError::Authentication { level, group })
    }

    /// The counter protecting `(level, group)`: the group's own write
    /// counter — held in the on-chip root register for the top level, and
    /// embedded in (and verified against) the parent counter group for
    /// every other level.
    fn counter_of(&self, level: usize, group: usize) -> u64 {
        if level + 1 == self.levels.len() {
            self.root_counter
        } else {
            self.counters[level][group]
        }
    }

    /// Reads one data group, verifying its whole counter chain top-down.
    ///
    /// # Errors
    ///
    /// [`FlatStoreError::Authentication`] on tamper/replay at any level;
    /// [`FlatStoreError::OutOfRange`] for bad indices.
    pub fn read_group(&self, group: usize) -> Result<Vec<u8>, FlatStoreError> {
        if group >= self.num_groups {
            return Err(FlatStoreError::OutOfRange {
                group,
                capacity: self.num_groups,
            });
        }
        // Walk top-down: verify each counter group on the chain and check
        // that the stored counter matches the working mirror (a mismatch
        // means replay of the counter group itself).
        let mut idx = group;
        let mut chain = Vec::new(); // (level, group_idx)
        for level in 0..self.levels.len() {
            chain.push((level, idx));
            idx /= COUNTERS_PER_GROUP;
        }
        for &(level, gidx) in chain.iter().rev() {
            let counter = self.counter_of(level, gidx);
            let plain = self.open(level, gidx, counter)?;
            if level > 0 {
                // Cross-check the embedded child counters against the
                // mirror (detects a desynchronized/replayed counter page).
                let below = &self.counters[level - 1];
                for slot in 0..COUNTERS_PER_GROUP {
                    let child = gidx * COUNTERS_PER_GROUP + slot;
                    if child >= below.len() {
                        break;
                    }
                    let stored =
                        u64::from_le_bytes(plain[slot * 8..(slot + 1) * 8].try_into().expect("8"));
                    if stored != below[child] {
                        return Err(FlatStoreError::Authentication { level, group: gidx });
                    }
                }
            } else {
                return Ok(plain);
            }
        }
        unreachable!("chain always ends at level 0")
    }

    /// Writes one data group, bumping the counter chain bottom-up (and the
    /// root counter).
    ///
    /// # Errors
    ///
    /// [`FlatStoreError::OutOfRange`] for bad indices.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != GROUP_BYTES`.
    pub fn write_group(&mut self, group: usize, data: &[u8]) -> Result<(), FlatStoreError> {
        assert_eq!(data.len(), GROUP_BYTES, "one full group per write");
        if group >= self.num_groups {
            return Err(FlatStoreError::OutOfRange {
                group,
                capacity: self.num_groups,
            });
        }
        // Bump and re-seal level 0.
        self.counters[0][group] += 1;
        let c0 = self.counters[0][group];
        self.levels[0][group] = self.seal(0, group, c0, data);
        // Re-seal the counter chain upward.
        let mut idx = group;
        for level in 1..self.levels.len() {
            idx /= COUNTERS_PER_GROUP;
            self.counters[level][idx] += 1;
            let c = self.counters[level][idx];
            let plain = self.plaintext_for(level, idx, &[]);
            self.levels[level][idx] = self.seal(level, idx, c, &plain);
        }
        if self.levels.len() == 1 {
            // Single-level store: the root counter IS level 0's counter.
            self.root_counter = c0;
        } else {
            self.root_counter = self.counters[self.levels.len() - 1][0];
        }
        Ok(())
    }

    /// Test/attack hook: overwrites a stored ciphertext (what a malicious
    /// DRAM controller could do).
    pub fn tamper(&mut self, level: usize, group: usize, ciphertext: Vec<u8>) {
        self.levels[level][group] = ciphertext;
    }

    /// Test/attack hook: snapshots a stored ciphertext for later replay.
    pub fn snapshot(&self, level: usize, group: usize) -> Vec<u8> {
        self.levels[level][group].clone()
    }
}

impl core::fmt::Debug for FlatGroupStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlatGroupStore")
            .field("groups", &self.num_groups)
            .field("levels", &self.levels.len())
            .field("root_counter", &self.root_counter)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(groups: usize) -> FlatGroupStore {
        FlatGroupStore::new(Key::from_bytes([0x33; 32]), groups)
    }

    #[test]
    fn roundtrip_small() {
        let mut s = store(4);
        s.write_group(2, &[0x5A; GROUP_BYTES]).unwrap();
        assert_eq!(s.read_group(2).unwrap(), vec![0x5A; GROUP_BYTES]);
        assert_eq!(s.read_group(0).unwrap(), vec![0u8; GROUP_BYTES]);
    }

    #[test]
    fn hierarchy_depth_scales() {
        assert_eq!(store(1).num_levels(), 1);
        assert_eq!(store(64).num_levels(), 2);
        // 65 data groups need 2 counter groups, which need a top group.
        assert_eq!(store(65).num_levels(), 3);
        assert_eq!(store(64 * 64).num_levels(), 3);
        assert_eq!(store(64 * 64 + 1).num_levels(), 4);
    }

    #[test]
    fn many_writes_roundtrip() {
        let mut s = store(200); // 3 levels? 200 -> 4 -> 1 : 3 levels
        for i in 0..200usize {
            let byte = (i % 251) as u8;
            s.write_group(i, &[byte; GROUP_BYTES]).unwrap();
        }
        for i in (0..200).step_by(17) {
            assert_eq!(s.read_group(i).unwrap()[0], (i % 251) as u8);
        }
    }

    #[test]
    fn tamper_detected() {
        let mut s = store(128);
        s.write_group(7, &[1; GROUP_BYTES]).unwrap();
        let mut ct = s.snapshot(0, 7);
        ct[0] ^= 0xFF;
        s.tamper(0, 7, ct);
        assert!(matches!(
            s.read_group(7),
            Err(FlatStoreError::Authentication { level: 0, group: 7 })
        ));
    }

    #[test]
    fn data_replay_detected() {
        let mut s = store(128);
        s.write_group(7, &[1; GROUP_BYTES]).unwrap();
        let old = s.snapshot(0, 7);
        s.write_group(7, &[2; GROUP_BYTES]).unwrap();
        s.tamper(0, 7, old); // roll the data group back
        assert!(matches!(
            s.read_group(7),
            Err(FlatStoreError::Authentication { level: 0, group: 7 })
        ));
    }

    #[test]
    fn counter_page_replay_detected() {
        // Replaying the *counter group* (level 1) is caught by the mirror
        // cross-check anchored in the root counter.
        let mut s = store(128);
        s.write_group(3, &[1; GROUP_BYTES]).unwrap();
        let old_ctr_page = s.snapshot(1, 0);
        s.write_group(3, &[2; GROUP_BYTES]).unwrap();
        s.tamper(1, 0, old_ctr_page);
        assert!(matches!(
            s.read_group(3),
            Err(FlatStoreError::Authentication { .. })
        ));
    }

    #[test]
    fn overhead_is_modest() {
        // 512-byte groups with 16-byte tags + hierarchical counters: the
        // §5.2 "8× better than per-cache-line" claim corresponds to a few
        // percent of the data size, not 25%.
        let s = store(1024);
        let data_bytes = 1024 * GROUP_BYTES;
        let overhead = s.total_bytes() as f64 / data_bytes as f64 - 1.0;
        assert!(overhead < 0.10, "overhead {overhead:.3}");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = store(4);
        assert!(matches!(
            s.read_group(4),
            Err(FlatStoreError::OutOfRange { .. })
        ));
        assert!(matches!(
            s.write_group(9, &[0; GROUP_BYTES]),
            Err(FlatStoreError::OutOfRange { .. })
        ));
    }

    #[test]
    fn random_ops_match_model() {
        // Deterministic pseudo-random op sequence vs a plain Vec model.
        let mut s = store(70); // 3 levels
        let mut model: Vec<Vec<u8>> = vec![vec![0u8; GROUP_BYTES]; 70];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let g = (x >> 33) as usize % 70;
            if x & 1 == 0 {
                let fill = (x >> 8) as u8;
                s.write_group(g, &[fill; GROUP_BYTES]).unwrap();
                model[g] = vec![fill; GROUP_BYTES];
            } else {
                assert_eq!(s.read_group(g).unwrap(), model[g], "group {g}");
            }
        }
    }

    #[test]
    fn root_counter_advances_per_write() {
        let mut s = store(128);
        let before = s.root_counter();
        s.write_group(0, &[1; GROUP_BYTES]).unwrap();
        s.write_group(1, &[2; GROUP_BYTES]).unwrap();
        assert!(s.root_counter() > before);
    }
}
