//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! This is the cipher FEDORA uses for every encrypted off-chip structure.
//! Nonces are never random: they are derived deterministically from the
//! (public) identity of the encrypted group and its write counter, which is
//! exactly what the group-based counter scheme of [`crate::group`] provides.

use fedora_telemetry::{Counter, Registry};

use crate::chacha20::{self, NONCE_LEN};
use crate::poly1305;

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// A 256-bit AEAD key.
///
/// Holds the secret key material; intentionally does not implement
/// `Display`, and its `Debug` output is redacted.
#[derive(Clone)]
pub struct Key([u8; 32]);

impl Key {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Key(bytes)
    }

    /// Derives a distinct subkey for a named component (e.g. "main-oram",
    /// "vtree") so every tree uses an independent key, as the prototype
    /// does. Derivation is one ChaCha20 block keyed by the master key.
    pub fn derive_subkey(&self, label: &str) -> Key {
        let mut nonce = [0u8; NONCE_LEN];
        let label_bytes = label.as_bytes();
        let take = label_bytes.len().min(NONCE_LEN);
        nonce[..take].copy_from_slice(&label_bytes[..take]);
        // Mix remaining label bytes into the counter.
        let mut counter = 0u32;
        for &b in &label_bytes[take..] {
            counter = counter.wrapping_mul(257).wrapping_add(b as u32);
        }
        let block = chacha20::block(&self.0, counter, &nonce);
        let mut sub = [0u8; 32];
        sub.copy_from_slice(&block[..32]);
        Key(sub)
    }

    fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl core::fmt::Debug for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Key(<redacted>)")
    }
}

/// A 96-bit nonce. Must be unique per (key, encryption); the group counter
/// scheme guarantees this by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nonce([u8; NONCE_LEN]);

impl Nonce {
    /// Creates a nonce from raw bytes.
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce(bytes)
    }

    /// Builds a nonce from a 32-bit domain value and a 64-bit counter —
    /// the (group-id, write-counter) encoding used by the tree cipher.
    pub fn from_u64_pair(domain: u32, counter: u64) -> Self {
        let mut bytes = [0u8; NONCE_LEN];
        bytes[..4].copy_from_slice(&domain.to_le_bytes());
        bytes[4..].copy_from_slice(&counter.to_le_bytes());
        Nonce(bytes)
    }

    fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.0
    }
}

/// Error returned when AEAD decryption fails authentication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AeadError;

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("authentication tag mismatch")
    }
}

impl std::error::Error for AeadError {}

/// The ChaCha20-Poly1305 AEAD cipher.
///
/// # Example
///
/// ```
/// use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce};
/// # fn main() -> Result<(), fedora_crypto::aead::AeadError> {
/// let aead = ChaCha20Poly1305::new(&Key::from_bytes([0u8; 32]));
/// let nonce = Nonce::from_u64_pair(3, 17);
/// let ct = aead.encrypt(&nonce, b"hello", b"ad");
/// assert_eq!(aead.decrypt(&nonce, &ct, b"ad")?, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ChaCha20Poly1305 {
    key: Key,
    telemetry: AeadTelemetry,
}

/// Registry handles counting AEAD operations (no-op by default).
#[derive(Clone, Debug, Default)]
struct AeadTelemetry {
    encrypt_ops: Counter,
    decrypt_ops: Counter,
    auth_failures: Counter,
}

impl AeadTelemetry {
    fn attach(registry: &Registry) -> Self {
        AeadTelemetry {
            encrypt_ops: registry.counter("crypto.aead.encrypt_ops"),
            decrypt_ops: registry.counter("crypto.aead.decrypt_ops"),
            auth_failures: registry.counter("crypto.aead.auth_failures"),
        }
    }
}

impl ChaCha20Poly1305 {
    /// Creates the AEAD from a key.
    pub fn new(key: &Key) -> Self {
        ChaCha20Poly1305 {
            key: key.clone(),
            telemetry: AeadTelemetry::default(),
        }
    }

    /// Counts this cipher's operations in `registry` under
    /// `crypto.aead.{encrypt_ops,decrypt_ops,auth_failures}`. The counters
    /// are shared atomics, so cloned ciphers keep feeding the same cells.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = AeadTelemetry::attach(registry);
    }

    /// Encrypts `plaintext` with associated data `aad`, returning
    /// `ciphertext ‖ tag` (length `plaintext.len() + TAG_LEN`).
    pub fn encrypt(&self, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        self.telemetry.encrypt_ops.incr();
        let mut out = plaintext.to_vec();
        chacha20::xor_stream(self.key.as_bytes(), 1, nonce.as_bytes(), &mut out);
        let tag = self.compute_tag(nonce, &out, aad);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `ciphertext ‖ tag` produced by [`encrypt`](Self::encrypt).
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] if the tag does not verify (wrong key, nonce,
    /// AAD, or tampered ciphertext) or the input is shorter than a tag.
    pub fn decrypt(
        &self,
        nonce: &Nonce,
        ciphertext_and_tag: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        self.telemetry.decrypt_ops.incr();
        if ciphertext_and_tag.len() < TAG_LEN {
            self.telemetry.auth_failures.incr();
            return Err(AeadError);
        }
        let split = ciphertext_and_tag.len() - TAG_LEN;
        let (ct, tag_bytes) = ciphertext_and_tag.split_at(split);
        let expected = self.compute_tag(nonce, ct, aad);
        let actual: [u8; TAG_LEN] = tag_bytes.try_into().expect("exactly TAG_LEN bytes");
        if !poly1305::verify(&expected, &actual) {
            self.telemetry.auth_failures.incr();
            return Err(AeadError);
        }
        let mut out = ct.to_vec();
        chacha20::xor_stream(self.key.as_bytes(), 1, nonce.as_bytes(), &mut out);
        Ok(out)
    }

    /// RFC 8439 §2.8 MAC construction: Poly1305 over
    /// `aad ‖ pad ‖ ct ‖ pad ‖ len(aad) ‖ len(ct)` with a one-time key from
    /// ChaCha20 block 0.
    fn compute_tag(&self, nonce: &Nonce, ciphertext: &[u8], aad: &[u8]) -> [u8; TAG_LEN] {
        let block0 = chacha20::block(self.key.as_bytes(), 0, nonce.as_bytes());
        let otk: [u8; 32] = block0[..32].try_into().expect("32 bytes");

        let mut mac_data = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
        mac_data.extend_from_slice(aad);
        mac_data.resize(mac_data.len().div_ceil(16) * 16, 0);
        mac_data.extend_from_slice(ciphertext);
        mac_data.resize(mac_data.len().div_ceil(16) * 16, 0);
        mac_data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
        mac_data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
        poly1305::authenticate(&otk, &mac_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key_bytes: [u8; 32] =
            hex("808182838485868788898a8b8c8d8e8f 909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce = Nonce::from_bytes(hex("070000004041424344454647").try_into().unwrap());
        let aad = hex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let aead = ChaCha20Poly1305::new(&Key::from_bytes(key_bytes));
        let out = aead.encrypt(&nonce, plaintext, &aad);
        let tag = &out[out.len() - TAG_LEN..];
        let expected_tag = hex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(tag, &expected_tag[..]);

        let back = aead.decrypt(&nonce, &out, &aad).unwrap();
        assert_eq!(back, plaintext);
    }

    #[test]
    fn tamper_detection() {
        let aead = ChaCha20Poly1305::new(&Key::from_bytes([1u8; 32]));
        let nonce = Nonce::from_u64_pair(0, 0);
        let mut ct = aead.encrypt(&nonce, b"secret block", b"");
        ct[0] ^= 1;
        assert_eq!(aead.decrypt(&nonce, &ct, b""), Err(AeadError));
    }

    #[test]
    fn wrong_aad_rejected() {
        let aead = ChaCha20Poly1305::new(&Key::from_bytes([1u8; 32]));
        let nonce = Nonce::from_u64_pair(0, 0);
        let ct = aead.encrypt(&nonce, b"secret block", b"bucket-7");
        assert!(aead.decrypt(&nonce, &ct, b"bucket-8").is_err());
        assert!(aead.decrypt(&nonce, &ct, b"bucket-7").is_ok());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let aead = ChaCha20Poly1305::new(&Key::from_bytes([1u8; 32]));
        let ct = aead.encrypt(&Nonce::from_u64_pair(1, 1), b"data", b"");
        assert!(aead.decrypt(&Nonce::from_u64_pair(1, 2), &ct, b"").is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let aead = ChaCha20Poly1305::new(&Key::from_bytes([1u8; 32]));
        assert_eq!(
            aead.decrypt(&Nonce::from_u64_pair(0, 0), &[0u8; 5], b""),
            Err(AeadError)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let aead = ChaCha20Poly1305::new(&Key::from_bytes([1u8; 32]));
        let nonce = Nonce::from_u64_pair(9, 9);
        let ct = aead.encrypt(&nonce, b"", b"meta");
        assert_eq!(ct.len(), TAG_LEN);
        assert_eq!(aead.decrypt(&nonce, &ct, b"meta").unwrap(), b"");
    }

    #[test]
    fn telemetry_counts_ops_and_failures() {
        let registry = Registry::new();
        let mut aead = ChaCha20Poly1305::new(&Key::from_bytes([1u8; 32]));
        aead.set_telemetry(&registry);
        let nonce = Nonce::from_u64_pair(0, 0);
        let mut ct = aead.encrypt(&nonce, b"secret block", b"");
        assert!(aead.decrypt(&nonce, &ct, b"").is_ok());
        ct[0] ^= 1;
        assert!(aead.decrypt(&nonce, &ct, b"").is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("crypto.aead.encrypt_ops"), Some(1));
        assert_eq!(snap.counter("crypto.aead.decrypt_ops"), Some(2));
        assert_eq!(snap.counter("crypto.aead.auth_failures"), Some(1));
    }

    #[test]
    fn subkeys_are_independent() {
        let master = Key::from_bytes([5u8; 32]);
        let a = master.derive_subkey("main-oram");
        let b = master.derive_subkey("vtree");
        let aead_a = ChaCha20Poly1305::new(&a);
        let aead_b = ChaCha20Poly1305::new(&b);
        let nonce = Nonce::from_u64_pair(0, 0);
        let ct = aead_a.encrypt(&nonce, b"x", b"");
        assert!(aead_b.decrypt(&nonce, &ct, b"").is_err());
        // Deterministic derivation.
        let a2 = master.derive_subkey("main-oram");
        assert!(ChaCha20Poly1305::new(&a2).decrypt(&nonce, &ct, b"").is_ok());
    }

    #[test]
    fn long_label_subkey() {
        let master = Key::from_bytes([5u8; 32]);
        let a = master.derive_subkey("a-very-long-component-label-beyond-nonce");
        let b = master.derive_subkey("a-very-long-component-label-beyond-nonc!");
        let nonce = Nonce::from_u64_pair(0, 0);
        let ct = ChaCha20Poly1305::new(&a).encrypt(&nonce, b"x", b"");
        assert!(ChaCha20Poly1305::new(&b).decrypt(&nonce, &ct, b"").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(key in proptest::array::uniform32(any::<u8>()),
                     domain: u32, counter: u64,
                     pt in proptest::collection::vec(any::<u8>(), 0..300),
                     aad in proptest::collection::vec(any::<u8>(), 0..50)) {
            let aead = ChaCha20Poly1305::new(&Key::from_bytes(key));
            let nonce = Nonce::from_u64_pair(domain, counter);
            let ct = aead.encrypt(&nonce, &pt, &aad);
            prop_assert_eq!(ct.len(), pt.len() + TAG_LEN);
            prop_assert_eq!(aead.decrypt(&nonce, &ct, &aad).unwrap(), pt);
        }
    }
}
