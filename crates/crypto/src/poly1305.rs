//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented over a small fixed-width big integer (320-bit accumulator)
//! reduced modulo 2¹³⁰ − 5. Performance is adequate for the simulator; the
//! arithmetic is branch-free in the message bytes.

/// Poly1305 key length (r ‖ s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// A 320-bit little-endian integer as five 64-bit limbs. Only values below
/// ~2²⁶¹ ever occur (h < 2¹³¹, r < 2¹²⁴, h·r < 2²⁵⁵ before reduction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct U320([u64; 5]);

impl U320 {
    fn from_le_bytes17(bytes: &[u8]) -> Self {
        debug_assert!(bytes.len() <= 17);
        let mut buf = [0u8; 24];
        buf[..bytes.len()].copy_from_slice(bytes);
        U320([
            u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
            0,
            0,
        ])
    }

    fn add(self, other: U320) -> U320 {
        let mut out = [0u64; 5];
        let mut carry = 0u128;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            let sum = *a as u128 + *b as u128 + carry;
            *o = sum as u64;
            carry = sum >> 64;
        }
        debug_assert_eq!(carry, 0, "U320 add overflow");
        U320(out)
    }

    /// Schoolbook multiply, keeping the low 320 bits (inputs are small
    /// enough that nothing is lost).
    fn mul(self, other: U320) -> U320 {
        let mut acc = [0u128; 6];
        for i in 0..5 {
            for j in 0..5 {
                if i + j < 5 {
                    let prod = self.0[i] as u128 * other.0[j] as u128;
                    let lo = prod as u64 as u128;
                    let hi = prod >> 64;
                    acc[i + j] += lo;
                    if i + j + 1 < 6 {
                        acc[i + j + 1] += hi;
                    }
                }
            }
        }
        let mut out = [0u64; 5];
        let mut carry = 0u128;
        for (o, a) in out.iter_mut().zip(acc.iter()) {
            let v = *a + carry;
            *o = v as u64;
            carry = v >> 64;
        }
        U320(out)
    }

    /// Reduces modulo p = 2¹³⁰ − 5 (not necessarily to the canonical
    /// representative; callers do a final conditional subtraction).
    fn reduce_weak(self) -> U320 {
        // x = hi * 2^130 + lo  =>  x ≡ lo + 5*hi (mod p)
        let mut x = self;
        for _ in 0..3 {
            // lo = x mod 2^130 : limbs 0,1 and low 2 bits of limb 2.
            let lo = U320([x.0[0], x.0[1], x.0[2] & 0b11, 0, 0]);
            // hi = x >> 130
            let hi = U320([
                (x.0[2] >> 2) | (x.0[3] << 62),
                (x.0[3] >> 2) | (x.0[4] << 62),
                x.0[4] >> 2,
                0,
                0,
            ]);
            let hi5 = hi.mul(U320([5, 0, 0, 0, 0]));
            x = lo.add(hi5);
        }
        x
    }

    /// Final reduction to the canonical representative mod 2¹³⁰ − 5.
    fn reduce_full(self) -> U320 {
        let mut x = self.reduce_weak();
        // x < 2^131 now; subtract p at most twice.
        const P: [u64; 5] = [0xffff_ffff_ffff_fffb, 0xffff_ffff_ffff_ffff, 0b11, 0, 0];
        for _ in 0..2 {
            if x.geq(&U320(P)) {
                x = x.sub(U320(P));
            }
        }
        x
    }

    fn geq(&self, other: &U320) -> bool {
        for i in (0..5).rev() {
            if self.0[i] > other.0[i] {
                return true;
            }
            if self.0[i] < other.0[i] {
                return false;
            }
        }
        true
    }

    fn sub(self, other: U320) -> U320 {
        let mut out = [0u64; 5];
        let mut borrow = 0i128;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            let d = *a as i128 - *b as i128 - borrow;
            if d < 0 {
                *o = (d + (1i128 << 64)) as u64;
                borrow = 1;
            } else {
                *o = d as u64;
                borrow = 0;
            }
        }
        U320(out)
    }

    fn low_16_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.0[0].to_le_bytes());
        out[8..].copy_from_slice(&self.0[1].to_le_bytes());
        out
    }
}

/// Computes the Poly1305 tag of `msg` under the one-time `key` (r ‖ s).
///
/// # Example
///
/// ```
/// use fedora_crypto::poly1305::authenticate;
/// let tag = authenticate(&[0x42; 32], b"some message");
/// assert_eq!(tag.len(), 16);
/// ```
pub fn authenticate(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    // Clamp r per RFC 8439 §2.5.
    let mut r_bytes = [0u8; 16];
    r_bytes.copy_from_slice(&key[..16]);
    r_bytes[3] &= 15;
    r_bytes[7] &= 15;
    r_bytes[11] &= 15;
    r_bytes[15] &= 15;
    r_bytes[4] &= 252;
    r_bytes[8] &= 252;
    r_bytes[12] &= 252;
    let r = U320::from_le_bytes17(&r_bytes);
    let s = U320::from_le_bytes17(&key[16..32]);

    let mut h = U320::default();
    for chunk in msg.chunks(16) {
        // Append the 0x01 byte to form the 17-byte block value.
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1;
        let n = U320::from_le_bytes17(&block[..chunk.len() + 1]);
        h = h.add(n).mul(r).reduce_weak();
    }
    let h = h.reduce_full().add(s);
    h.low_16_bytes()
}

/// Constant-time tag comparison.
pub fn verify(expected: &[u8; TAG_LEN], actual: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag_vector() {
        let key: [u8; 32] =
            hex("85d6be7857556d337f4452fe42d506a8 0103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        let tag = authenticate(&key, msg);
        let expected: [u8; 16] = hex("a8061dc1305136c6c22b8baf0c0127a9").try_into().unwrap();
        assert_eq!(tag, expected);
    }

    #[test]
    fn empty_message() {
        // For an empty message h stays 0, so tag == s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xAA; 16]);
        let tag = authenticate(&key, b"");
        assert_eq!(tag, [0xAA; 16]);
    }

    #[test]
    fn tag_changes_with_message() {
        let key = [7u8; 32];
        assert_ne!(authenticate(&key, b"aaa"), authenticate(&key, b"aab"));
    }

    #[test]
    fn tag_changes_with_key() {
        assert_ne!(
            authenticate(&[1u8; 32], b"m"),
            authenticate(&[2u8; 32], b"m")
        );
    }

    #[test]
    fn verify_constant_time_compare() {
        let t1 = [1u8; 16];
        let mut t2 = t1;
        assert!(verify(&t1, &t2));
        t2[15] ^= 1;
        assert!(!verify(&t1, &t2));
    }

    #[test]
    fn multiblock_lengths() {
        // Exercise block boundary lengths 15, 16, 17, 31, 32, 33.
        let key = [3u8; 32];
        let mut tags = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 100] {
            let msg = vec![0x5Au8; len];
            tags.push(authenticate(&key, &msg));
        }
        // All distinct (length is authenticated implicitly via padding rule).
        for i in 0..tags.len() {
            for j in i + 1..tags.len() {
                assert_ne!(tags[i], tags[j], "lengths {i} vs {j} collided");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn deterministic(key in proptest::array::uniform32(any::<u8>()), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
            prop_assert_eq!(authenticate(&key, &msg), authenticate(&key, &msg));
        }

        #[test]
        fn bitflip_changes_tag(key in proptest::array::uniform32(any::<u8>()), mut msg in proptest::collection::vec(any::<u8>(), 1..100), pos in 0usize..100, bit in 0u8..8) {
            prop_assume!(pos < msg.len());
            let t1 = authenticate(&key, &msg);
            msg[pos] ^= 1 << bit;
            let t2 = authenticate(&key, &msg);
            prop_assert_ne!(t1, t2);
        }
    }
}
