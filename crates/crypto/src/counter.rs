//! Merkle-free write counters for the main ORAM (paper §5.2, last ¶).
//!
//! Writes to the main ORAM happen **only** during EO (eviction-only)
//! accesses, and EO accesses select their path in a *predetermined*
//! reverse-lexicographic order (as in RAW/Ring ORAM). Consequently, a single
//! root counter — the total number of EO accesses so far — determines
//! exactly how many times any bucket has been written, so every bucket's
//! encryption counter can be *recomputed* instead of stored, and tampering
//! with any bucket is caught by its AEAD tag under the recomputed nonce.

/// Reverses the low `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (64 - bits)
}

/// The deterministic eviction schedule of a tree with `2^depth` leaves.
///
/// Eviction `e` targets leaf `bit_reverse(e mod 2^depth)` — the
/// reverse-lexicographic order from Ring ORAM, which spaces consecutive
/// evictions across the tree so every bucket is written at a fixed cadence.
///
/// # Example
///
/// ```
/// use fedora_crypto::counter::EvictionSchedule;
/// let s = EvictionSchedule::new(2); // 4 leaves
/// assert_eq!(s.leaf_for(0), 0);
/// assert_eq!(s.leaf_for(1), 2);
/// assert_eq!(s.leaf_for(2), 1);
/// assert_eq!(s.leaf_for(3), 3);
/// assert_eq!(s.leaf_for(4), 0); // wraps
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictionSchedule {
    depth: u32,
}

impl EvictionSchedule {
    /// Creates a schedule for a tree with `2^depth` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 62` (tree sizes beyond any realistic table).
    pub fn new(depth: u32) -> Self {
        assert!(depth <= 62, "tree depth {depth} out of range");
        EvictionSchedule { depth }
    }

    /// The tree depth (leaves live at this level; root is level 0).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of leaves, `2^depth`.
    pub fn num_leaves(&self) -> u64 {
        1u64 << self.depth
    }

    /// The leaf targeted by the `e`-th eviction.
    pub fn leaf_for(&self, e: u64) -> u64 {
        bit_reverse(e % self.num_leaves(), self.depth)
    }

    /// How many times the bucket at `(level, index)` has been written after
    /// `eo_count` evictions. This *is* the bucket's encryption counter.
    ///
    /// A level-`level` bucket with index `i` is on eviction `e`'s path iff
    /// `e mod 2^level == bit_reverse(i, level)`, so the count has the closed
    /// form below (verified against brute force in tests).
    ///
    /// # Panics
    ///
    /// Panics if `level > depth` or `index >= 2^level`.
    pub fn writes_to_bucket(&self, level: u32, index: u64, eo_count: u64) -> u64 {
        assert!(
            level <= self.depth,
            "level {level} beyond depth {}",
            self.depth
        );
        let width = 1u64 << level;
        assert!(index < width, "index {index} out of range at level {level}");
        let phase = bit_reverse(index, level);
        if eo_count <= phase {
            0
        } else {
            (eo_count - phase - 1) / width + 1
        }
    }

    /// The bucket indices (level, index) along the path to `leaf`, root
    /// first.
    pub fn path_buckets(&self, leaf: u64) -> Vec<(u32, u64)> {
        (0..=self.depth)
            .map(|level| (level, leaf >> (self.depth - level)))
            .collect()
    }
}

/// The root counter register: total EO accesses, the only persistent
/// counter the main ORAM needs (kept in the scratchpad).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RootCounter(u64);

impl RootCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        RootCounter(0)
    }

    /// Reconstructs a counter at `count` — the checkpoint-restore path.
    /// Safe only with the exact persisted EO count: a stale value replays
    /// nonces, which the AEAD layer then rejects as tampering.
    pub fn from_count(count: u64) -> Self {
        RootCounter(count)
    }

    /// Current EO count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Records one EO access, returning the index it occupies (pre-increment
    /// value), which selects the eviction path.
    pub fn advance(&mut self) -> u64 {
        let v = self.0;
        self.0 += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
        assert_eq!(bit_reverse(1, 1), 1);
    }

    #[test]
    fn schedule_covers_all_leaves_per_cycle() {
        let s = EvictionSchedule::new(4);
        let mut seen = [false; 16];
        for e in 0..16 {
            seen[s.leaf_for(e) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "one full cycle hits every leaf");
    }

    #[test]
    fn writes_match_brute_force() {
        let s = EvictionSchedule::new(4);
        for eo_count in [0u64, 1, 2, 7, 15, 16, 17, 33, 100] {
            for level in 0..=4u32 {
                for index in 0..(1u64 << level) {
                    let mut brute = 0;
                    for e in 0..eo_count {
                        let leaf = s.leaf_for(e);
                        if leaf >> (4 - level) == index {
                            brute += 1;
                        }
                    }
                    assert_eq!(
                        s.writes_to_bucket(level, index, eo_count),
                        brute,
                        "level {level} index {index} eo {eo_count}"
                    );
                }
            }
        }
    }

    #[test]
    fn root_written_every_eviction() {
        let s = EvictionSchedule::new(5);
        assert_eq!(s.writes_to_bucket(0, 0, 0), 0);
        assert_eq!(s.writes_to_bucket(0, 0, 123), 123);
    }

    #[test]
    fn leaves_written_once_per_cycle() {
        let s = EvictionSchedule::new(3);
        for leaf in 0..8 {
            assert_eq!(s.writes_to_bucket(3, leaf, 8), 1, "leaf {leaf}");
            assert_eq!(s.writes_to_bucket(3, leaf, 16), 2, "leaf {leaf}");
        }
    }

    #[test]
    fn path_buckets_shape() {
        let s = EvictionSchedule::new(3);
        let path = s.path_buckets(0b101);
        assert_eq!(path, vec![(0, 0), (1, 1), (2, 0b10), (3, 0b101)]);
    }

    #[test]
    fn root_counter_advances() {
        let mut rc = RootCounter::new();
        assert_eq!(rc.advance(), 0);
        assert_eq!(rc.advance(), 1);
        assert_eq!(rc.get(), 2);
    }

    #[test]
    fn depth_zero_tree() {
        let s = EvictionSchedule::new(0);
        assert_eq!(s.num_leaves(), 1);
        assert_eq!(s.leaf_for(5), 0);
        assert_eq!(s.writes_to_bucket(0, 0, 9), 9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn closed_form_matches_brute(depth in 0u32..6, eo in 0u64..200) {
            let s = EvictionSchedule::new(depth);
            for level in 0..=depth {
                for index in 0..(1u64 << level) {
                    let brute = (0..eo)
                        .filter(|&e| s.leaf_for(e) >> (depth - level) == index)
                        .count() as u64;
                    prop_assert_eq!(s.writes_to_bucket(level, index, eo), brute);
                }
            }
        }
    }
}
