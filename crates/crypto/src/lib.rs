//! From-scratch cryptographic substrate for FEDORA.
//!
//! The paper's prototype encrypts every off-chip data structure (main ORAM,
//! buffer ORAM, position map, VTree) and verifies freshness/integrity with a
//! counter scheme tailored to tree data (§5.2). This crate provides all of
//! that with no external dependencies:
//!
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439).
//! * [`aead`] — the ChaCha20-Poly1305 AEAD composition.
//! * [`flat`] — the same grouping applied to flat arrays (position map,
//!   VTree): 512-byte data groups under a hierarchical counter chain
//!   rooted in one on-chip counter.
//! * [`group`] — the paper's group-based tree encryption: nodes are grouped
//!   into 512-byte units that share one counter and one tag; each group's
//!   counter lives in its *parent* group, and only the root counter needs
//!   on-chip (scratchpad) storage — no Merkle tree required.
//! * [`counter`] — the main-ORAM write-counter scheme: because SSD writes
//!   only happen during EO accesses in a *predetermined* order, one root
//!   counter (total EO count) determines every bucket's write count.
//!
//! The paper uses libsodium; we re-implement the same AEAD so the whole
//! stack is one language and auditable (see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce};
//!
//! let key = Key::from_bytes([7u8; 32]);
//! let aead = ChaCha20Poly1305::new(&key);
//! let nonce = Nonce::from_u64_pair(1, 2);
//! let ct = aead.encrypt(&nonce, b"bucket bytes", b"bucket-id:42");
//! let pt = aead.decrypt(&nonce, &ct, b"bucket-id:42").unwrap();
//! assert_eq!(pt, b"bucket bytes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod counter;
pub mod flat;
pub mod group;
pub mod integrity;
pub mod poly1305;

pub use aead::{AeadError, ChaCha20Poly1305, Key, Nonce, TAG_LEN};
pub use integrity::IntegrityError;
