//! Multi-table FEDORA: one protected main ORAM per private sparse
//! feature.
//!
//! Production recommendation models use many embedding tables (§2.1 —
//! one per sparse feature). The paper's pipeline protects a single private
//! table; this module composes several [`FedoraServer`]s so a model with
//! multiple private features runs each table's round under its own ORAM
//! and its own ε-FDP noise. Privacy composes per *feature value*: a value
//! belongs to exactly one table, so tables compose in parallel (the same
//! argument as request chunks within a table, §4.2).

use fedora_fl::modes::AggregationMode;
use fedora_par::WorkerPool;
use fedora_telemetry::Snapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{FedoraConfig, ParallelismConfig};
use crate::server::{FedoraError, FedoraServer, RoundReport};

/// Identifier of one private table (the sparse-feature index).
pub type TableId = usize;

/// A table's configuration together with its row initializer.
pub type TableInit<'a> = (FedoraConfig, Box<dyn FnMut(u64) -> Vec<u8> + 'a>);

/// Several private tables, each behind its own FEDORA pipeline.
///
/// Tables are fully independent (own ORAM, own devices, own registry
/// namespace `oram.shard<N>.*`), so their rounds can fan out across a
/// [`WorkerPool`]. To keep every thread count bit-identical, each table's
/// round always runs on its own [`StdRng`] seeded from one serial draw
/// per table off the caller's RNG — regardless of whether the table then
/// executes inline or on a worker.
pub struct MultiTableServer {
    tables: Vec<FedoraServer>,
    pool: WorkerPool,
}

/// Per-round report across all tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiRoundReport {
    /// One report per table, indexed by [`TableId`].
    pub per_table: Vec<RoundReport>,
    /// Aggregated telemetry across shards: every table's per-round
    /// metrics snapshot namespaced as `oram.shard<N>.*` and merged into
    /// one view (audit-only tags follow their series). Only populated by
    /// [`MultiTableServer::end_round`]; empty on the begin-round report.
    pub metrics: Snapshot,
}

impl MultiRoundReport {
    /// Total main-ORAM accesses across tables.
    pub fn total_accesses(&self) -> usize {
        self.per_table.iter().map(|r| r.k_accesses).sum()
    }

    /// Total requests across tables.
    pub fn total_requests(&self) -> usize {
        self.per_table.iter().map(|r| r.k_requests).sum()
    }
}

/// The per-shard namespace prefix: `oram.shard<N>`.
fn shard_prefix(table: TableId) -> String {
    format!("oram.shard{table}")
}

impl MultiTableServer {
    /// Builds one pipeline per `(config, init)` pair. Rounds run serially;
    /// use [`Self::with_parallelism`] or [`Self::set_threads`] to fan out.
    pub fn new<R: Rng>(configs: Vec<TableInit<'_>>, rng: &mut R) -> Self {
        Self::with_parallelism(configs, ParallelismConfig::serial(), rng)
    }

    /// Builds one pipeline per `(config, init)` pair with per-table round
    /// execution fanned out over `parallelism.threads` workers.
    pub fn with_parallelism<R: Rng>(
        configs: Vec<TableInit<'_>>,
        parallelism: ParallelismConfig,
        rng: &mut R,
    ) -> Self {
        let tables = configs
            .into_iter()
            .map(|(config, init)| FedoraServer::new(config, init, rng))
            .collect();
        let mut server = MultiTableServer {
            tables,
            pool: WorkerPool::serial(),
        };
        server.set_threads(parallelism.threads);
        server
    }

    /// Changes the worker-thread count for subsequent rounds. The budget
    /// splits hierarchically: one worker per table for the shard fan-out,
    /// and the remainder (`threads / num_tables`, at least 1) drives each
    /// table's bucket crypto. Thread count never changes results — only
    /// wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = WorkerPool::new(threads);
        let per_table = (threads.max(1) / self.tables.len().max(1)).max(1);
        for table in &mut self.tables {
            table.set_threads(per_table);
        }
    }

    /// One serially drawn RNG seed per table. Drawing the seeds on the
    /// caller's RNG (in table order) and handing each table its own
    /// `StdRng` makes the per-table streams independent of which worker
    /// runs which table — the determinism anchor for the whole fan-out.
    fn table_seeds<R: Rng>(&self, rng: &mut R) -> Vec<u64> {
        self.tables.iter().map(|_| rng.gen()).collect()
    }

    /// Number of protected tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Access to one table's pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn table(&self, table: TableId) -> &FedoraServer {
        &self.tables[table]
    }

    /// Begins a round on every table, fanned out over the worker pool.
    /// `requests[t]` is table `t`'s flat request list; tables with no
    /// requests this round still run an (empty) round so the round counter
    /// stays aligned.
    ///
    /// # Errors
    ///
    /// Every table runs to completion; the first table's error (in table
    /// order) is then returned (configuration bug).
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != num_tables()`.
    pub fn begin_round<R: Rng>(
        &mut self,
        requests: &[Vec<u64>],
        rng: &mut R,
    ) -> Result<MultiRoundReport, FedoraError> {
        assert_eq!(
            requests.len(),
            self.tables.len(),
            "one request list per table"
        );
        let seeds = self.table_seeds(rng);
        let mut work: Vec<(&mut FedoraServer, &Vec<u64>)> =
            self.tables.iter_mut().zip(requests).collect();
        let results = self.pool.map_mut(&mut work, |i, (server, reqs)| {
            let mut table_rng = StdRng::seed_from_u64(seeds[i]);
            server.begin_round(reqs, &mut table_rng)
        });
        let mut out = MultiRoundReport::default();
        for report in results {
            out.per_table.push(report?);
        }
        Ok(out)
    }

    /// Serves one entry of one table.
    ///
    /// # Errors
    ///
    /// As for [`FedoraServer::serve`].
    pub fn serve<R: Rng>(
        &mut self,
        table: TableId,
        id: u64,
        rng: &mut R,
    ) -> Result<Option<Vec<u8>>, FedoraError> {
        self.tables[table].serve(id, rng)
    }

    /// Aggregates a gradient into one table.
    ///
    /// # Errors
    ///
    /// As for [`FedoraServer::aggregate`].
    pub fn aggregate<M: AggregationMode, R: Rng>(
        &mut self,
        table: TableId,
        mode: &M,
        id: u64,
        gradient: &[f32],
        n_samples: u32,
        rng: &mut R,
    ) -> Result<bool, FedoraError> {
        self.tables[table].aggregate(mode, id, gradient, n_samples, rng)
    }

    /// Ends the round on every table.
    ///
    /// Runs serially even on a parallel pool: the one shared `mode`
    /// (optimizer state) must observe tables in a fixed order. For a fully
    /// parallel round give each table its own mode via
    /// [`Self::round_parallel`].
    ///
    /// # Errors
    ///
    /// The first table error aborts.
    pub fn end_round<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &mut M,
        server_lr: f32,
        rng: &mut R,
    ) -> Result<MultiRoundReport, FedoraError> {
        let mut out = MultiRoundReport::default();
        for (i, server) in self.tables.iter_mut().enumerate() {
            let report = server.end_round(mode, server_lr, rng)?;
            out.metrics
                .absorb(report.metrics.prefixed(&shard_prefix(i)));
            out.per_table.push(report);
        }
        Ok(out)
    }

    /// Runs one complete round on every table, fanned out over the worker
    /// pool: each shard executes `begin_round` → `client` callback (serve /
    /// aggregate against that one table) → `end_round` on its own worker,
    /// with its own aggregation mode (`modes[t]`) and its own
    /// deterministically seeded RNG. Reports and `oram.shard<N>.*` metrics
    /// merge in table order, so results are bit-identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Every table runs to completion; the first table's error (in table
    /// order) is then returned.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` or `modes.len()` differs from
    /// `num_tables()`.
    pub fn round_parallel<M, F, R>(
        &mut self,
        requests: &[Vec<u64>],
        modes: &mut [M],
        server_lr: f32,
        client: F,
        rng: &mut R,
    ) -> Result<MultiRoundReport, FedoraError>
    where
        M: AggregationMode + Send,
        F: Fn(TableId, &mut FedoraServer, &mut M, &mut StdRng) -> Result<(), FedoraError> + Sync,
        R: Rng,
    {
        assert_eq!(
            requests.len(),
            self.tables.len(),
            "one request list per table"
        );
        assert_eq!(modes.len(), self.tables.len(), "one mode per table");
        let seeds = self.table_seeds(rng);
        let mut work: Vec<((&mut FedoraServer, &mut M), &Vec<u64>)> = self
            .tables
            .iter_mut()
            .zip(modes.iter_mut())
            .zip(requests)
            .collect();
        let results = self.pool.map_mut(&mut work, |i, ((server, mode), reqs)| {
            let server: &mut FedoraServer = server;
            let mode: &mut M = mode;
            let mut table_rng = StdRng::seed_from_u64(seeds[i]);
            server.begin_round(reqs, &mut table_rng)?;
            client(i, server, mode, &mut table_rng)?;
            server.end_round(mode, server_lr, &mut table_rng)
        });
        let mut out = MultiRoundReport::default();
        for (i, report) in results.into_iter().enumerate() {
            let report = report?;
            out.metrics
                .absorb(report.metrics.prefixed(&shard_prefix(i)));
            out.per_table.push(report);
        }
        Ok(out)
    }

    /// Aggregated cumulative telemetry across shards: each table's full
    /// registry snapshot namespaced as `oram.shard<N>.*` and merged.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut out = Snapshot::default();
        for (i, server) in self.tables.iter().enumerate() {
            out.absorb(server.metrics_snapshot().prefixed(&shard_prefix(i)));
        }
        out
    }

    /// Combined SSD statistics across all tables' main ORAMs.
    pub fn ssd_stats(&self) -> fedora_storage::stats::DeviceStats {
        self.tables
            .iter()
            .map(|t| t.ssd_stats())
            .fold(fedora_storage::stats::DeviceStats::new(), |acc, s| {
                acc.merged(&s)
            })
    }
}

impl core::fmt::Debug for MultiTableServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiTableServer")
            .field("tables", &self.tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FedoraConfig, PrivacyConfig, TableSpec};
    use fedora_fl::modes::FedAvg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn multi(seed: u64) -> (MultiTableServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg_a = FedoraConfig::for_testing(TableSpec::tiny(128), 32);
        cfg_a.privacy = PrivacyConfig::none();
        let mut cfg_b = FedoraConfig::for_testing(TableSpec::tiny(256), 32);
        cfg_b.privacy = PrivacyConfig::none();
        let s = MultiTableServer::new(
            vec![
                (cfg_a, Box::new(|id| vec![id as u8; 32])),
                (cfg_b, Box::new(|id| vec![(id as u8).wrapping_mul(2); 32])),
            ],
            &mut rng,
        );
        (s, rng)
    }

    #[test]
    fn tables_are_independent() {
        let (mut s, mut rng) = multi(1);
        let report = s
            .begin_round(&[vec![5, 5, 9], vec![5, 11]], &mut rng)
            .unwrap();
        assert_eq!(report.per_table.len(), 2);
        assert_eq!(report.per_table[0].k_union, 2);
        assert_eq!(report.per_table[1].k_union, 2);
        // Same id, different tables, different contents.
        assert_eq!(s.serve(0, 5, &mut rng).unwrap().unwrap(), vec![5u8; 32]);
        assert_eq!(s.serve(1, 5, &mut rng).unwrap().unwrap(), vec![10u8; 32]);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn totals_aggregate_across_tables() {
        let (mut s, mut rng) = multi(2);
        let report = s
            .begin_round(&[vec![1, 2, 3], vec![4, 5]], &mut rng)
            .unwrap();
        assert_eq!(report.total_requests(), 5);
        assert_eq!(report.total_accesses(), 5); // eps = inf: k = k_union
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(s.ssd_stats().pages_read > 0);
    }

    #[test]
    fn updates_stay_in_their_table() {
        let (mut s, mut rng) = multi(3);
        s.begin_round(&[vec![0], vec![0]], &mut rng).unwrap();
        let mode = FedAvg;
        s.aggregate(0, &mode, 0, &[1.0; 8], 1, &mut rng).unwrap();
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        // Table 0's entry 0 moved; table 1's entry 0 did not.
        s.begin_round(&[vec![0], vec![0]], &mut rng).unwrap();
        let a = s.serve(0, 0, &mut rng).unwrap().unwrap();
        let b = s.serve(1, 0, &mut rng).unwrap().unwrap();
        let a0 = f32::from_le_bytes(a[..4].try_into().unwrap());
        let b0 = f32::from_le_bytes(b[..4].try_into().unwrap());
        assert!((a0 - 1.0).abs() < 1e-6, "table 0 updated: {a0}");
        assert_eq!(b0, 0.0, "table 1 untouched");
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn shard_namespaces_aggregate() {
        let (mut s, mut rng) = multi(5);
        s.begin_round(&[vec![1, 2], vec![3]], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        // Per-round aggregated snapshot: one ledger per shard.
        assert_eq!(
            report.metrics.gauge("oram.shard0.fdp.total.epsilon"),
            Some(s.table(0).accountant().total_epsilon())
        );
        assert_eq!(report.metrics.gauge("oram.shard1.fdp.rounds"), Some(1.0));
        // Cumulative aggregated snapshot mirrors both shards too.
        let m = s.metrics_snapshot();
        assert_eq!(m.counter("oram.shard0.fl.rounds.completed"), Some(1));
        assert_eq!(m.counter("oram.shard1.fl.rounds.completed"), Some(1));
        assert!(m.counter("fl.rounds.completed").is_none());
        // Secret-derived series stay audit-only through the merge.
        assert!(m.is_audit_only("oram.shard0.fdp.round.k_union"));
        assert!(!m.to_json().contains("k_union"));
    }

    /// Runs two `round_parallel` rounds at the given thread count and
    /// returns rng-independent observables: per-table access counts plus
    /// the post-round contents of one entry per table.
    fn parallel_round_outcome(threads: usize) -> (Vec<usize>, Vec<Vec<u8>>) {
        let (mut s, mut rng) = multi(9);
        s.set_threads(threads);
        let reqs = vec![vec![1, 2, 3], vec![4, 5]];
        let mut counts = Vec::new();
        for _ in 0..2 {
            let mut modes = vec![FedAvg, FedAvg];
            let report = s
                .round_parallel(
                    &reqs,
                    &mut modes,
                    1.0,
                    |t, server, mode, trng| {
                        for &id in &reqs[t] {
                            assert!(server.serve(id, trng)?.is_some());
                            server.aggregate(&*mode, id, &[0.25; 8], 1, trng)?;
                        }
                        Ok(())
                    },
                    &mut rng,
                )
                .unwrap();
            assert_eq!(report.per_table.len(), 2);
            assert!(report.metrics.gauge("oram.shard1.fdp.rounds").is_some());
            counts.extend(report.per_table.iter().map(|r| r.k_accesses));
        }
        s.begin_round(&[vec![1], vec![4]], &mut rng).unwrap();
        let a = s.serve(0, 1, &mut rng).unwrap().unwrap();
        let b = s.serve(1, 4, &mut rng).unwrap().unwrap();
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        (counts, vec![a, b])
    }

    #[test]
    fn round_parallel_is_thread_count_invariant() {
        let serial = parallel_round_outcome(1);
        for threads in [2, 4] {
            assert_eq!(serial, parallel_round_outcome(threads), "threads={threads}");
        }
        // And the aggregates actually landed.
        let first = f32::from_le_bytes(serial.1[0][..4].try_into().unwrap());
        assert!((first - 0.5).abs() < 1e-6, "two rounds of 0.25: {first}");
    }

    #[test]
    #[should_panic]
    fn request_list_arity_checked() {
        let (mut s, mut rng) = multi(4);
        let _ = s.begin_round(&[vec![1]], &mut rng);
    }
}
