//! The FEDORA controller: the round pipeline of Figure 4.

use std::collections::HashSet;
use std::time::Instant;

use fedora_crypto::IntegrityError;
use fedora_fdp::{ChunkPlan, FdpAccountant};
use fedora_fl::modes::AggregationMode;
use fedora_oblivious::union::{oblivious_union, requests_scan_cost};
use fedora_oram::buffer::{BufferError, BufferOram};
use fedora_oram::raw::RawOram;
use fedora_oram::store::{BucketStore, IntegrityStats, ScrubReport, SsdBucketStore};
use fedora_oram::OramError;
use fedora_storage::stats::DeviceStats;
use fedora_storage::AccessTraceRecorder;
use fedora_storage::{FaultConfig, FaultStats};
use fedora_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot, TraceSpan};
use rand::Rng;

use crate::config::{FedoraConfig, SelectionStrategy};

/// Errors from the FEDORA pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum FedoraError {
    /// More requests than the provisioned per-round maximum.
    TooManyRequests {
        /// Requests submitted.
        got: usize,
        /// The provisioned maximum.
        max: usize,
    },
    /// An entry id that was neither fetched nor lost this round.
    UnknownEntry {
        /// The offending id.
        id: u64,
    },
    /// A round operation was issued outside an active round.
    NoActiveRound,
    /// `begin_round` called while a round is already active.
    RoundInProgress,
    /// Main-ORAM failure.
    Oram(OramError),
    /// Buffer-ORAM failure.
    Buffer(BufferError),
    /// A transactional round hit an unrecoverable integrity failure and
    /// was rolled back to its start-of-round snapshot. The round's
    /// requests were *not* applied; the caller may retry the round.
    RoundAborted {
        /// What kind of integrity violation forced the abort.
        kind: IntegrityError,
        /// The bucket (tree node) that failed authentication.
        node: u64,
    },
    /// The configured cumulative ε budget would be exceeded by running
    /// another round, and the budget is in enforcing mode. The round was
    /// refused before any state changed; no budget was consumed.
    PrivacyBudgetExhausted {
        /// Cumulative ε already spent (the accountant's total).
        spent: f64,
        /// The configured maximum cumulative ε.
        budget: f64,
    },
}

impl From<OramError> for FedoraError {
    fn from(e: OramError) -> Self {
        FedoraError::Oram(e)
    }
}

impl From<BufferError> for FedoraError {
    fn from(e: BufferError) -> Self {
        FedoraError::Buffer(e)
    }
}

impl core::fmt::Display for FedoraError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FedoraError::TooManyRequests { got, max } => {
                write!(f, "{got} requests exceed the provisioned maximum {max}")
            }
            FedoraError::UnknownEntry { id } => write!(f, "entry {id} not part of this round"),
            FedoraError::NoActiveRound => f.write_str("no active round"),
            FedoraError::RoundInProgress => f.write_str("a round is already in progress"),
            FedoraError::Oram(e) => write!(f, "main ORAM: {e}"),
            FedoraError::Buffer(e) => write!(f, "buffer ORAM: {e}"),
            FedoraError::RoundAborted { kind, node } => {
                write!(
                    f,
                    "round aborted and rolled back: bucket {node} failed with {kind}"
                )
            }
            FedoraError::PrivacyBudgetExhausted { spent, budget } => {
                write!(
                    f,
                    "privacy budget exhausted: ε spent {spent} of budget {budget}"
                )
            }
        }
    }
}

impl std::error::Error for FedoraError {}

/// Host wall-clock time spent in each phase of one round, in nanoseconds.
///
/// The five phase fields partition [`PhaseBreakdown::round_ns`] exactly:
/// `round_ns` accumulates the same measured intervals the phases do, so
/// `sum_ns() == round_ns` by construction (up to one clock-granularity
/// rounding in `fetch_ns`, which is derived as read-phase minus union).
/// Note these are *host* times — the simulated device latencies of the cost
/// model live in the `DeviceStats` fields and `trace.io` records instead.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Oblivious-union scans across all chunks (step ①).
    pub union_ns: u64,
    /// Rest of the read phase: FDP sampling, ordering, main-ORAM fetches
    /// and buffer loads (steps ②–③).
    pub fetch_ns: u64,
    /// Serving user downloads from the buffer ORAM (step ④), summed over
    /// every `serve` call.
    pub serve_ns: u64,
    /// Gradient aggregation into the buffer ORAM (step ⑥), summed over
    /// every `aggregate` call.
    pub aggregate_ns: u64,
    /// Write phase: buffer drain, main-ORAM insertions and EO evictions,
    /// report finalization (step ⑦).
    pub write_ns: u64,
    /// Total measured round time (sum of the intervals above).
    pub round_ns: u64,
}

impl PhaseBreakdown {
    /// Sum of the five phase fields (equals [`PhaseBreakdown::round_ns`]).
    pub fn sum_ns(&self) -> u64 {
        self.union_ns + self.fetch_ns + self.serve_ns + self.aggregate_ns + self.write_ns
    }
}

/// Everything observable/countable about one round, used by the latency,
/// lifetime, and cost models.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundReport {
    /// Total user requests `K`.
    pub k_requests: usize,
    /// Unique entries per chunk, summed (`Σ_c k_union(c)`).
    pub k_union: usize,
    /// Main-ORAM accesses actually performed (`Σ_c k(c)`).
    pub k_accesses: usize,
    /// Padding (dummy) accesses issued (`k > k_union` part).
    pub dummies: usize,
    /// Entries lost to the mechanism (`k < k_union` part).
    pub lost: usize,
    /// Oblivious-union slot visits (the O(K²) scan cost).
    pub union_scan_slots: u64,
    /// EO accesses performed during the write phase.
    pub eo_accesses: u64,
    /// SSD activity for this round.
    pub ssd: DeviceStats,
    /// Buffer-ORAM DRAM activity for this round.
    pub buffer_dram: DeviceStats,
    /// VTree DRAM activity for this round.
    pub vtree_dram: DeviceStats,
    /// Integrity events (detections, retries, recoveries, quarantines)
    /// observed on the main ORAM during this round.
    pub integrity: IntegrityStats,
    /// Host wall-time spent per phase of this round.
    pub phases: PhaseBreakdown,
    /// Telemetry snapshot at round completion (cumulative registry state:
    /// counters, gauges, histogram summaries — no journal events). Empty
    /// when the server runs with a disabled registry.
    pub metrics: Snapshot,
}

/// The record of one aborted (rolled-back) transactional round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundAbort {
    /// The integrity violation that forced the abort.
    pub kind: IntegrityError,
    /// The bucket that exhausted its retry budget.
    pub node: u64,
    /// The partial report at abort time (its `integrity` field holds the
    /// detections counted before the state was rewound).
    pub report: RoundReport,
}

/// Start-of-round copy of the ORAM state, restored on abort.
#[derive(Clone, Debug)]
struct RoundSnapshot {
    main: RawOram<SsdBucketStore>,
    buffer: BufferOram,
}

/// Snapshot of device stats at round start (to compute deltas).
#[derive(Clone, Debug)]
struct RoundState {
    report: RoundReport,
    ssd_before: DeviceStats,
    buffer_before: DeviceStats,
    vtree_before: DeviceStats,
    eo_before: u64,
    integrity_before: IntegrityStats,
    lost_ids: HashSet<u64>,
    snapshot: Option<Box<RoundSnapshot>>,
}

/// Telemetry handles for the FL-facing side of the round pipeline.
#[derive(Clone, Debug, Default)]
struct FlTelemetry {
    rounds_completed: Counter,
    rounds_aborted: Counter,
    download_bytes: Counter,
    upload_bytes: Counter,
    lost_serves: Counter,
}

impl FlTelemetry {
    fn attach(registry: &Registry) -> Self {
        FlTelemetry {
            rounds_completed: registry.counter("fl.rounds.completed"),
            rounds_aborted: registry.counter("fl.rounds.aborted"),
            download_bytes: registry.counter("fl.round.download_bytes"),
            upload_bytes: registry.counter("fl.round.upload_bytes"),
            lost_serves: registry.counter("fl.round.lost_serves"),
        }
    }
}

/// Telemetry handles mirroring the privacy accountant into the registry —
/// the *privacy ledger* of the observability layer (§3.1 accounting made
/// visible).
///
/// Public series carry only values derivable from the public protocol
/// parameters and the accountant (ε per round, cumulative ε, round
/// count). Anything derived from the secret `k_union` — dummy and lost
/// counts, the per-round union size, and the `k` overhead histogram — is
/// registered **audit-only** so default exports never leak it; an
/// operator must opt in via [`Snapshot::audit_view`] to see those series.
///
/// [`Snapshot::audit_view`]: fedora_telemetry::Snapshot::audit_view
#[derive(Clone, Debug, Default)]
struct PrivacyLedger {
    round_epsilon: Gauge,
    total_epsilon: Gauge,
    mechanism_epsilon: Gauge,
    rounds: Gauge,
    poisoned: Counter,
    budget_max: Gauge,
    budget_refused: Counter,
    // Secret-dependent series (derived from k_union): audit-only.
    dummies: Counter,
    lost: Counter,
    k_union: Gauge,
    k_overhead: Histogram,
}

impl PrivacyLedger {
    fn attach(registry: &Registry, config: &FedoraConfig) -> Self {
        let ledger = PrivacyLedger {
            round_epsilon: registry.gauge("fdp.round.epsilon"),
            total_epsilon: registry.gauge("fdp.total.epsilon"),
            mechanism_epsilon: registry.gauge("fdp.mechanism.epsilon"),
            rounds: registry.gauge("fdp.rounds"),
            poisoned: registry.counter("fdp.ledger.poisoned"),
            budget_max: registry.gauge("fdp.budget.max_epsilon"),
            budget_refused: registry.counter("fdp.budget.refused_rounds"),
            dummies: registry.counter_audit("fdp.dummies.total"),
            lost: registry.counter_audit("fdp.lost.total"),
            k_union: registry.gauge_audit("fdp.round.k_union"),
            k_overhead: registry.histogram_audit("fdp.k.overhead"),
        };
        // Static per config: the mechanism ε after group-privacy division
        // (ε/n for HideValueCount{n}), and the budget ceiling if set.
        ledger
            .mechanism_epsilon
            .set(config.privacy.mechanism_epsilon());
        if let Some(max) = config.privacy_budget.max_total_epsilon {
            ledger.budget_max.set(max);
        }
        ledger
    }
}

/// The FEDORA server.
pub struct FedoraServer {
    config: FedoraConfig,
    main: RawOram<SsdBucketStore>,
    buffer: BufferOram,
    chunk_plan: ChunkPlan,
    accountant: FdpAccountant,
    active: Option<RoundState>,
    completed: Vec<RoundReport>,
    aborts: Vec<RoundAbort>,
    /// Entry ids whose blocks were destroyed by a bucket repair; they are
    /// excluded (served as lost) until re-initialized out of band.
    quarantined_ids: HashSet<u64>,
    registry: Registry,
    telemetry: FlTelemetry,
    ledger: PrivacyLedger,
    /// Whether the cumulative-ε budget crossing has already been
    /// journaled (alarm mode fires `privacy.budget.exceeded` once).
    budget_flagged: bool,
    /// Trace span covering the active round (tracing only). Held here
    /// rather than in `RoundState` so the clonable state stays clonable;
    /// closed on `end_round`, or on abort with an `aborted` attribute.
    round_span: Option<TraceSpan>,
}

impl FedoraServer {
    /// Builds the server: provisions the SSD main ORAM (bulk-loading the
    /// embedding table produced by `init`) and the DRAM buffer ORAM. The
    /// server owns an enabled telemetry [`Registry`] wired through every
    /// layer; use [`with_telemetry`](Self::with_telemetry) with
    /// [`Registry::disabled`] for the zero-overhead no-op sink.
    pub fn new<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        config: FedoraConfig,
        init: F,
        rng: &mut R,
    ) -> Self {
        Self::with_telemetry(config, init, Registry::new(), rng)
    }

    /// Builds the server with an explicit telemetry registry (pass
    /// [`Registry::disabled`] to make every instrument a no-op).
    pub fn with_telemetry<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        config: FedoraConfig,
        init: F,
        registry: Registry,
        rng: &mut R,
    ) -> Self {
        let key = fedora_crypto::aead::Key::from_bytes([0x5E; 32]);
        let mut store =
            SsdBucketStore::new(config.geometry, key.derive_subkey("main-oram"), config.ssd);
        store.set_retry_limit(config.fault_tolerance.max_read_retries);
        store.set_rollback_window(config.fault_tolerance.rollback_window);
        store.set_threads(config.parallelism.threads);
        let mut main = RawOram::new(store, config.table.num_entries, config.raw, init, rng);
        main.set_telemetry(&registry);
        let mut buffer = BufferOram::new(
            config.max_requests_per_round,
            config.table.entry_bytes,
            key.derive_subkey("buffer-oram"),
            rng,
        );
        buffer.set_telemetry(&registry);
        let chunk_plan = ChunkPlan::new(config.privacy.chunk_size);
        let telemetry = FlTelemetry::attach(&registry);
        let ledger = PrivacyLedger::attach(&registry, &config);
        FedoraServer {
            config,
            main,
            buffer,
            chunk_plan,
            accountant: FdpAccountant::new(),
            active: None,
            completed: Vec::new(),
            aborts: Vec::new(),
            quarantined_ids: HashSet::new(),
            registry,
            telemetry,
            ledger,
            budget_flagged: false,
            round_span: None,
        }
    }

    /// The telemetry registry every layer of this server reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A full snapshot of the registry (counters, gauges, histogram
    /// summaries, and journal events).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The configuration.
    pub fn config(&self) -> &FedoraConfig {
        &self.config
    }

    /// The privacy accountant.
    pub fn accountant(&self) -> &FdpAccountant {
        &self.accountant
    }

    /// Completed round reports.
    pub fn reports(&self) -> &[RoundReport] {
        &self.completed
    }

    /// Cumulative SSD statistics (since construction).
    pub fn ssd_stats(&self) -> DeviceStats {
        self.main.store().device_stats()
    }

    /// The main ORAM (for inspection in tests/benches).
    pub fn main_oram(&self) -> &RawOram<SsdBucketStore> {
        &self.main
    }

    /// The buffer ORAM.
    pub fn buffer_oram(&self) -> &BufferOram {
        &self.buffer
    }

    /// Aborted (rolled-back) rounds, in order.
    pub fn aborts(&self) -> &[RoundAbort] {
        &self.aborts
    }

    /// Cumulative main-ORAM integrity counters. Note: an abort rewinds
    /// the store (and these counters) to the round-start snapshot; the
    /// pre-rewind deltas live in [`Self::aborts`].
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.main.store().integrity_stats()
    }

    /// Attaches a shadow-mode access recorder to the main ORAM's SSD so
    /// the physical page-access sequence can be audited for obliviousness
    /// (see [`AccessTraceRecorder`] and [`crate::audit`]). The recorder
    /// handle is `Arc`-shared: it survives transactional snapshots and
    /// rollbacks, so aborted rounds keep their (already observable)
    /// accesses in the trace.
    pub fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        self.main.store_mut().set_access_recorder(recorder);
    }

    /// Changes the worker-thread count for the main ORAM's bulk path
    /// crypto. Thread count never changes results or the physical access
    /// trace — only host wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.parallelism = crate::config::ParallelismConfig::with_threads(threads);
        self.main.set_threads(threads);
    }

    /// Arms seeded fault injection on the main ORAM's SSD.
    pub fn arm_faults(&mut self, config: FaultConfig) {
        self.main.store_mut().arm_faults(config);
    }

    /// Disarms fault injection.
    pub fn disarm_faults(&mut self) {
        self.main.store_mut().disarm_faults();
    }

    /// Counters of faults actually injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.main.store().fault_stats()
    }

    /// Quarantined main-ORAM buckets (failed reads pending repair).
    pub fn quarantined_buckets(&self) -> Vec<u64> {
        self.main.store().quarantined_nodes()
    }

    /// Entry ids lost to bucket repairs, excluded from future rounds.
    pub fn quarantined_entries(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.quarantined_ids.iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Verifies every main-ORAM bucket's MAC (background scrubbing).
    /// Must be called between rounds.
    ///
    /// # Errors
    ///
    /// [`FedoraError::RoundInProgress`] during a round.
    pub fn scrub(&mut self) -> Result<ScrubReport, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        Ok(self.main.scrub())
    }

    /// Repairs one quarantined bucket in place (empties it and clears its
    /// valid bits); blocks that lived there become missing and their
    /// entries are quarantined lazily on the next fetch.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn repair_bucket(&mut self, node: u64) -> Result<(), FedoraError> {
        self.main.repair_bucket(node)?;
        Ok(())
    }

    /// Steps ①–④ of Figure 4: oblivious union (chunked), ε-FDP choice of
    /// `k`, and the read phase moving entries into the buffer ORAM.
    /// Returns the partial report (read-side numbers).
    ///
    /// # Errors
    ///
    /// [`FedoraError::TooManyRequests`] when `requests` exceeds the
    /// provisioned maximum; [`FedoraError::RoundInProgress`] when called
    /// twice without `end_round`; device errors propagate.
    pub fn begin_round<R: Rng>(
        &mut self,
        requests: &[u64],
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        if requests.len() > self.config.max_requests_per_round {
            return Err(FedoraError::TooManyRequests {
                got: requests.len(),
                max: self.config.max_requests_per_round,
            });
        }
        // Enforcing budget mode: refuse the round up front — before any
        // event, span, or state change — when completing it would push the
        // cumulative ε past the ceiling. A refused round consumes nothing.
        if self.config.privacy_budget.enforce {
            if let Some(max) = self.config.privacy_budget.max_total_epsilon {
                let spent = self.accountant.total_epsilon();
                if spent + self.config.privacy.mechanism.epsilon() > max {
                    self.ledger.budget_refused.incr();
                    self.registry.event(
                        "privacy.budget.refused",
                        &[
                            ("round", (self.completed.len() as u64).into()),
                            ("spent", spent.into()),
                            ("budget", max.into()),
                        ],
                    );
                    return Err(FedoraError::PrivacyBudgetExhausted { spent, budget: max });
                }
            }
        }
        let snapshot = if self.config.fault_tolerance.transactional {
            Some(Box::new(RoundSnapshot {
                main: self.main.clone(),
                buffer: self.buffer.clone(),
            }))
        } else {
            None
        };
        self.registry.event(
            "round.begin",
            &[
                ("round", (self.completed.len() as u64).into()),
                ("k_requests", (requests.len() as u64).into()),
            ],
        );
        // The round's trace span stays open across serve/aggregate calls
        // until end_round (or abort) closes it.
        self.round_span = Some(self.registry.trace_span_with(
            "round",
            &[
                ("round", (self.completed.len() as u64).into()),
                ("k_requests", (requests.len() as u64).into()),
            ],
        ));
        let mut state = RoundState {
            report: RoundReport {
                k_requests: requests.len(),
                ..Default::default()
            },
            ssd_before: self.main.store().device_stats(),
            buffer_before: self.buffer.device_stats(),
            vtree_before: self.main.vtree().device_stats(),
            eo_before: self.main.eo_count(),
            integrity_before: self.main.store().integrity_stats(),
            lost_ids: HashSet::new(),
            snapshot,
        };

        let read_started = Instant::now();
        match self.read_phase(requests, &mut state, rng) {
            Ok(()) => {
                // fetch time = read phase minus the union scans timed inside
                // it, so the phase fields keep partitioning round_ns exactly.
                let read_ns = read_started.elapsed().as_nanos() as u64;
                state.report.phases.fetch_ns = read_ns.saturating_sub(state.report.phases.union_ns);
                state.report.phases.round_ns += read_ns;
                let partial = state.report.clone();
                self.active = Some(state);
                Ok(partial)
            }
            Err(e) => Err(self.abort_round(state, e)),
        }
    }

    /// Steps ①–③ proper: chunked union, FDP `k`, and the buffer loads.
    fn read_phase<R: Rng>(
        &mut self,
        requests: &[u64],
        state: &mut RoundState,
        rng: &mut R,
    ) -> Result<(), FedoraError> {
        let _trace = self.registry.trace_span("round.read");
        for chunk in requests.chunks(self.chunk_plan.chunk_size()) {
            if chunk.is_empty() {
                continue;
            }
            // ① Oblivious union (data-independent scan over the chunk).
            let union_started = Instant::now();
            let union = {
                let _u = self
                    .registry
                    .trace_span_with("round.union", &[("chunk_len", chunk.len().into())]);
                oblivious_union(chunk, chunk.len())
            };
            state.report.phases.union_ns += union_started.elapsed().as_nanos() as u64;
            state.report.union_scan_slots +=
                requests_scan_cost(chunk.len(), self.chunk_plan.chunk_size());
            let k_union = union.len_real();
            state.report.k_union += k_union;

            // ② ε-FDP choice of k.
            let k = self
                .config
                .privacy
                .mechanism
                .sample_k(k_union as u64, chunk.len() as u64, rng) as usize;
            state.report.k_accesses += k;

            // ③ Read phase: pick which entries to read per the configured
            // strategy (§4.2), then fetch the first `k` of that ordering.
            let ordered = Self::order_candidates(&union, self.config.selection, rng);
            let to_fetch = k.min(k_union);
            for &id in &ordered[..to_fetch] {
                if self.buffer.is_loaded(id) {
                    // Cross-chunk duplicate: the entry already left the
                    // main ORAM this round. The access still happens (same
                    // observable path read), it just returns nothing new —
                    // the performance cost of chunking the paper describes.
                    self.main.dummy_fetch(rng)?;
                    self.buffer.load_dummy(rng)?;
                } else if self.quarantined_ids.contains(&id) {
                    // Degraded mode: the entry's block was destroyed by a
                    // bucket repair. Keep the observable access pattern
                    // (same path read + buffer slot) but serve it as lost.
                    self.main.dummy_fetch(rng)?;
                    self.buffer.load_dummy(rng)?;
                    state.report.lost += 1;
                    state.lost_ids.insert(id);
                } else {
                    match self.main.fetch(id, rng) {
                        Ok(block) => self.buffer.load_entry(id, &block.payload, rng)?,
                        Err(OramError::MissingBlock { id }) => {
                            // Lazy quarantine: the path read happened but
                            // the block is gone (its bucket was repaired).
                            self.quarantined_ids.insert(id);
                            self.buffer.load_dummy(rng)?;
                            state.report.lost += 1;
                            state.lost_ids.insert(id);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            // Lost entries (k < k_union): not read this round.
            for &id in &ordered[to_fetch..] {
                state.report.lost += 1;
                state.lost_ids.insert(id);
            }
            // Dummy accesses (k > k_union).
            for _ in k_union..k {
                state.report.dummies += 1;
                self.main.dummy_fetch(rng)?;
                self.buffer.load_dummy(rng)?;
            }
        }
        Ok(())
    }

    /// Handles a mid-round failure. Integrity failures under transactional
    /// mode roll the ORAMs back to the round-start snapshot, heal the
    /// offending bucket, and surface as [`FedoraError::RoundAborted`];
    /// everything else propagates unchanged (non-transactional mode keeps
    /// the cheap fail-fast behaviour).
    fn abort_round(&mut self, mut state: RoundState, err: FedoraError) -> FedoraError {
        // Any path through here ends the round attempt: close the round's
        // trace span (mid-round child spans already unwound via their own
        // drop guards) and mark it so trace consumers can tell an aborted
        // tree from a completed one.
        if let Some(mut span) = self.round_span.take() {
            span.attr("aborted", true);
        }
        let FedoraError::Oram(OramError::Integrity { kind, node }) = err else {
            return err;
        };
        let Some(snap) = state.snapshot.take() else {
            return err;
        };
        // Record what this round observed before rewinding the counters.
        state.report.integrity = self
            .main
            .store()
            .integrity_stats()
            .since(&state.integrity_before);
        // Probe the failed bucket before rewinding: an in-flight fault
        // heals on re-read (no repair needed), while persistent damage
        // predates the snapshot, survives the restore, and must be
        // repaired on the restored state or every retry aborts again.
        let persistent = self.main.store_mut().read_bucket(node).is_err();
        self.main = snap.main;
        self.buffer = snap.buffer;
        if persistent {
            if let Err(e) = self.main.repair_bucket(node) {
                return FedoraError::Oram(e);
            }
        }
        self.telemetry.rounds_aborted.incr();
        self.registry.event(
            "round.abort",
            &[
                ("round", (self.completed.len() as u64).into()),
                ("node", node.into()),
                ("kind", format!("{kind:?}").into()),
                ("persistent", persistent.into()),
            ],
        );
        self.aborts.push(RoundAbort {
            kind,
            node,
            report: state.report,
        });
        FedoraError::RoundAborted { kind, node }
    }

    /// Orders the union's entries per the selection strategy. Runs inside
    /// the secure controller; the popularity ordering uses the oblivious
    /// bitonic network over the union's per-entry counts.
    fn order_candidates<R: Rng>(
        union: &fedora_oblivious::UnionSet,
        strategy: SelectionStrategy,
        rng: &mut R,
    ) -> Vec<u64> {
        match strategy {
            SelectionStrategy::FirstK => union.real_entries().to_vec(),
            SelectionStrategy::Random => {
                use rand::seq::SliceRandom;
                let mut ids = union.real_entries().to_vec();
                ids.shuffle(rng);
                ids
            }
            SelectionStrategy::PopularFirst => {
                // Sort descending by count with the data-independent
                // bitonic network: key = MAX − count.
                let mut pairs: Vec<(u64, u64)> = union
                    .real_entries_with_counts()
                    .map(|(id, count)| (u64::MAX - count, id))
                    .collect();
                fedora_oblivious::sort::bitonic_sort_pairs(&mut pairs);
                pairs.into_iter().map(|(_, id)| id).collect()
            }
        }
    }

    /// Step ④: serves one user request from the buffer ORAM. Returns
    /// `None` when the entry was lost to the FDP mechanism this round
    /// (caller applies the default-value strategy).
    ///
    /// # Errors
    ///
    /// [`FedoraError::UnknownEntry`] for ids outside this round's union;
    /// [`FedoraError::NoActiveRound`] outside a round.
    pub fn serve<R: Rng>(&mut self, id: u64, rng: &mut R) -> Result<Option<Vec<u8>>, FedoraError> {
        let started = Instant::now();
        let result = self.serve_inner(id, rng);
        if let Some(state) = self.active.as_mut() {
            let ns = started.elapsed().as_nanos() as u64;
            state.report.phases.serve_ns += ns;
            state.report.phases.round_ns += ns;
        }
        result
    }

    fn serve_inner<R: Rng>(
        &mut self,
        id: u64,
        rng: &mut R,
    ) -> Result<Option<Vec<u8>>, FedoraError> {
        let state = self.active.as_ref().ok_or(FedoraError::NoActiveRound)?;
        let _trace = self.registry.trace_span("round.serve");
        if state.lost_ids.contains(&id) {
            self.telemetry.lost_serves.incr();
            return Ok(None);
        }
        match self.buffer.serve(id, rng) {
            Ok(bytes) => {
                self.telemetry.download_bytes.add(bytes.len() as u64);
                Ok(Some(bytes))
            }
            Err(BufferError::NotLoaded { id }) => Err(FedoraError::UnknownEntry { id }),
            Err(e) => Err(e.into()),
        }
    }

    /// Step ⑥: accumulates one client's gradient for one entry. The mode's
    /// `Pre` function is applied here, inside the trusted controller.
    /// Gradients for lost entries are dropped (returns `false`).
    ///
    /// # Errors
    ///
    /// As for [`serve`](Self::serve).
    pub fn aggregate<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &M,
        id: u64,
        gradient: &[f32],
        n_samples: u32,
        rng: &mut R,
    ) -> Result<bool, FedoraError> {
        let started = Instant::now();
        let result = self.aggregate_inner(mode, id, gradient, n_samples, rng);
        if let Some(state) = self.active.as_mut() {
            let ns = started.elapsed().as_nanos() as u64;
            state.report.phases.aggregate_ns += ns;
            state.report.phases.round_ns += ns;
        }
        result
    }

    fn aggregate_inner<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &M,
        id: u64,
        gradient: &[f32],
        n_samples: u32,
        rng: &mut R,
    ) -> Result<bool, FedoraError> {
        let state = self.active.as_ref().ok_or(FedoraError::NoActiveRound)?;
        let _trace = self.registry.trace_span("round.aggregate");
        // The client's upload arrived either way — count its bytes even
        // when the entry was lost and the gradient is dropped.
        self.telemetry
            .upload_bytes
            .add(core::mem::size_of_val(gradient) as u64);
        if state.lost_ids.contains(&id) {
            return Ok(false);
        }
        let mut g = gradient.to_vec();
        let weight = mode.pre(&mut g, n_samples);
        match self.buffer.aggregate(id, &g, weight, rng) {
            Ok(()) => Ok(true),
            Err(BufferError::NotLoaded { id }) => Err(FedoraError::UnknownEntry { id }),
            Err(e) => Err(e.into()),
        }
    }

    /// Step ⑦: drains the buffer ORAM, applies `Post` and the server
    /// learning rate, and writes the `k` entries (real and dummy) back to
    /// the main ORAM — one EO access per `A` insertions, no AO accesses.
    /// Completes the round and returns its final report.
    ///
    /// # Errors
    ///
    /// [`FedoraError::NoActiveRound`] outside a round; device errors
    /// propagate.
    pub fn end_round<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &mut M,
        server_lr: f32,
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        let mut state = self.active.take().ok_or(FedoraError::NoActiveRound)?;
        match self.write_phase(mode, server_lr, &mut state, rng) {
            Ok(report) => {
                // Close the round's trace span (emits trace.end).
                self.round_span = None;
                Ok(report)
            }
            Err(e) => Err(self.abort_round(state, e)),
        }
    }

    /// Step ⑦ proper: the drain + writeback loop and report finalization.
    fn write_phase<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &mut M,
        server_lr: f32,
        state: &mut RoundState,
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        let write_started = Instant::now();
        let _trace = self.registry.trace_span("round.write");
        let drained = self.buffer.drain_round(rng)?;
        for entry in drained.entries {
            let mut agg = entry.gradient;
            mode.post(entry.id, &mut agg, entry.weight, rng);
            // θ_{t+1} = θ_t + η·Post(Σ Pre(Δ)) — deltas already point
            // downhill (they are trained-minus-downloaded differences).
            let mut values: Vec<f32> = entry
                .entry
                .chunks_exact(4)
                .map(crate::convert::le_f32)
                .collect();
            for (v, g) in values.iter_mut().zip(&agg) {
                *v += server_lr * g;
            }
            let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.main.insert(entry.id, bytes, rng)?;
        }
        for _ in 0..drained.dummy_count {
            self.main.insert_dummy()?;
        }
        mode.on_round_end();

        // Finalize the report.
        state.report.eo_accesses = self.main.eo_count() - state.eo_before;
        state.report.ssd = self.main.store().device_stats().since(&state.ssd_before);
        state.report.buffer_dram = self.buffer.device_stats().since(&state.buffer_before);
        state.report.vtree_dram = self.main.vtree().device_stats().since(&state.vtree_before);
        state.report.integrity = self
            .main
            .store()
            .integrity_stats()
            .since(&state.integrity_before);
        let round_epsilon = self.config.privacy.mechanism.epsilon();
        if self.accountant.record_round(round_epsilon) {
            self.ledger.round_epsilon.set(round_epsilon);
        } else {
            self.ledger.poisoned.incr();
        }
        // Publish the ledger *before* the report snapshot below so
        // `fdp.total.epsilon` on every RoundReport equals the accountant's
        // total at that round exactly (the acceptance invariant).
        self.ledger
            .total_epsilon
            .set(self.accountant.total_epsilon());
        self.ledger.rounds.set_u64(self.accountant.rounds() as u64);
        self.ledger.dummies.add(state.report.dummies as u64);
        self.ledger.lost.add(state.report.lost as u64);
        self.ledger.k_union.set_u64(state.report.k_union as u64);
        self.ledger.k_overhead.record(state.report.dummies as u64);
        if !self.budget_flagged {
            if let Some(max) = self.config.privacy_budget.max_total_epsilon {
                let spent = self.accountant.total_epsilon();
                if spent > max {
                    self.budget_flagged = true;
                    self.registry.event(
                        "privacy.budget.exceeded",
                        &[
                            ("round", (self.completed.len() as u64).into()),
                            ("spent", spent.into()),
                            ("budget", max.into()),
                        ],
                    );
                }
            }
        }
        self.telemetry.rounds_completed.incr();
        let write_ns = write_started.elapsed().as_nanos() as u64;
        state.report.phases.write_ns = write_ns;
        state.report.phases.round_ns += write_ns;
        self.publish_phase_gauges(&state.report.phases);
        self.registry.event(
            "round.end",
            &[
                ("round", (self.completed.len() as u64).into()),
                ("k_accesses", (state.report.k_accesses as u64).into()),
                ("lost", (state.report.lost as u64).into()),
                ("eo_accesses", state.report.eo_accesses.into()),
            ],
        );
        state.report.metrics = self.registry.snapshot_lite();
        self.completed.push(state.report.clone());
        Ok(state.report.clone())
    }

    /// Mirrors the latest round's phase breakdown into `round.phase.*`
    /// gauges so flat metric consumers (BENCH files, CSV) see it without
    /// parsing reports.
    fn publish_phase_gauges(&self, phases: &PhaseBreakdown) {
        if !self.registry.is_enabled() {
            return;
        }
        for (name, ns) in [
            ("round.phase.union_ns", phases.union_ns),
            ("round.phase.fetch_ns", phases.fetch_ns),
            ("round.phase.serve_ns", phases.serve_ns),
            ("round.phase.aggregate_ns", phases.aggregate_ns),
            ("round.phase.write_ns", phases.write_ns),
            ("round.phase.round_ns", phases.round_ns),
        ] {
            self.registry.gauge(name).set_u64(ns);
        }
    }

    /// Reads the whole table out of the main ORAM (fetch + reinsert each
    /// entry). Used to sync a model for evaluation; **not** part of the
    /// private protocol.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn snapshot_table<R: Rng>(&mut self, rng: &mut R) -> Result<Vec<Vec<u8>>, FedoraError> {
        let mut out = Vec::with_capacity(self.config.table.num_entries as usize);
        for id in 0..self.config.table.num_entries {
            if self.quarantined_ids.contains(&id) {
                out.push(vec![0; self.config.table.entry_bytes]);
                continue;
            }
            match self.main.fetch(id, rng) {
                Ok(block) => {
                    out.push(block.payload.clone());
                    self.main.insert(id, block.payload, rng)?;
                }
                Err(OramError::MissingBlock { id }) => {
                    self.quarantined_ids.insert(id);
                    out.push(vec![0; self.config.table.entry_bytes]);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }
}

impl core::fmt::Debug for FedoraServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FedoraServer")
            .field("table", &self.config.table)
            .field("rounds_completed", &self.completed.len())
            .field("round_active", &self.active.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FedoraConfig, PrivacyConfig, TableSpec};
    use fedora_fl::modes::FedAvg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(epsilon: Option<f64>) -> (FedoraServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = match epsilon {
            None => PrivacyConfig::none(),
            Some(0.0) => PrivacyConfig::perfect(),
            Some(e) => PrivacyConfig::with_epsilon(e),
        };
        let s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        (s, rng)
    }

    #[test]
    fn round_counts_union() {
        let (mut s, mut rng) = server(None); // ε=∞: k = k_union exactly
        let report = s.begin_round(&[42, 7, 42, 38, 42, 38], &mut rng).unwrap();
        assert_eq!(report.k_requests, 6);
        assert_eq!(report.k_union, 3);
        assert_eq!(report.k_accesses, 3);
        assert_eq!(report.dummies, 0);
        assert_eq!(report.lost, 0);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn serve_returns_entries() {
        let (mut s, mut rng) = server(None);
        s.begin_round(&[5, 9, 5], &mut rng).unwrap();
        assert_eq!(s.serve(5, &mut rng).unwrap().unwrap(), vec![5u8; 32]);
        assert_eq!(s.serve(9, &mut rng).unwrap().unwrap(), vec![9u8; 32]);
        // Duplicate serve is fine (K serves per round).
        assert_eq!(s.serve(5, &mut rng).unwrap().unwrap(), vec![5u8; 32]);
        // Un-requested entry is an error.
        assert!(matches!(
            s.serve(100, &mut rng),
            Err(FedoraError::UnknownEntry { id: 100 })
        ));
    }

    #[test]
    fn aggregate_and_update_applies_fedavg() {
        let (mut s, mut rng) = server(None);
        // Entry 3 starts as bytes [3;32] → f32 garbage; use entry 0 which
        // is all zeros.
        s.begin_round(&[0], &mut rng).unwrap();
        let mut mode = FedAvg;
        // Two clients: grads [1.0...] (n=1) and [3.0...] (n=1) → mean 2.0.
        let dim = 8;
        assert!(s.aggregate(&mode, 0, &vec![1.0; dim], 1, &mut rng).unwrap());
        assert!(s.aggregate(&mode, 0, &vec![3.0; dim], 1, &mut rng).unwrap());
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        // Next round: entry 0 should now decode as 2.0s.
        s.begin_round(&[0], &mut rng).unwrap();
        let bytes = s.serve(0, &mut rng).unwrap().unwrap();
        let vals: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![2.0; dim]);
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn perfect_privacy_always_reads_k() {
        let (mut s, mut rng) = server(Some(0.0));
        let report = s.begin_round(&[1, 1, 1, 1, 2, 2, 3, 3], &mut rng).unwrap();
        assert_eq!(report.k_accesses, 8, "Strawman 1: k = K");
        assert_eq!(report.dummies, 8 - 3);
        assert_eq!(report.lost, 0);
        let mut mode = FedAvg;
        let final_report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(final_report.eo_accesses >= 2, "8 inserts / A=4 = 2 EOs");
    }

    #[test]
    fn lost_entries_served_as_none() {
        // Force losses with a shape that always picks k=1.
        let mut rng = StdRng::seed_from_u64(18);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy.mechanism =
            fedora_fdp::FdpMechanism::new(f64::INFINITY, fedora_fdp::YShape::Custom(vec![1.0]))
                .unwrap();
        // ε=∞ picks k=k_union; to force loss use ε=0-ish with delta at 1:
        config.privacy.mechanism =
            fedora_fdp::FdpMechanism::new(0.0, fedora_fdp::YShape::Custom(vec![1.0])).unwrap();
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        let report = s.begin_round(&[10, 20, 30], &mut rng).unwrap();
        assert_eq!(report.k_accesses, 1);
        assert_eq!(report.lost, 2);
        // First-k strategy: entry 10 read; 20 and 30 lost.
        assert!(s.serve(10, &mut rng).unwrap().is_some());
        assert!(s.serve(20, &mut rng).unwrap().is_none());
        assert!(s.serve(30, &mut rng).unwrap().is_none());
        // Gradients for lost entries are dropped.
        let mode = FedAvg;
        assert!(!s.aggregate(&mode, 20, &[1.0; 8], 1, &mut rng).unwrap());
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn popular_first_minimizes_lost_requests() {
        // Force k = 2 < k_union = 4 with a zero-epsilon point mass at 2,
        // and compare strategies on a skewed request stream.
        let requests = [9u64, 9, 9, 9, 9, 1, 2, 3]; // entry 9 dominates
        let run = |strategy: crate::config::SelectionStrategy, seed: u64| -> bool {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut config = FedoraConfig::for_testing(TableSpec::tiny(64), 16);
            config.privacy.mechanism = fedora_fdp::FdpMechanism::new(
                0.0,
                fedora_fdp::YShape::Custom(vec![0.0, 1.0]), // always k = 2
            )
            .unwrap();
            config.selection = strategy;
            let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
            s.begin_round(&requests, &mut rng).unwrap();
            // Was the hot entry (9) served?
            let served = s.serve(9, &mut rng).unwrap().is_some();
            let mut mode = FedAvg;
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
            served
        };
        // PopularFirst always keeps the hot entry.
        assert!(run(crate::config::SelectionStrategy::PopularFirst, 1));
        assert!(run(crate::config::SelectionStrategy::PopularFirst, 2));
        // FirstK keeps union order: 9 appears first here, so rotate the
        // stream so 9 comes last in first-seen order.
        let _ = run(crate::config::SelectionStrategy::FirstK, 3);
    }

    #[test]
    fn selection_strategies_preserve_correctness() {
        for strategy in [
            crate::config::SelectionStrategy::FirstK,
            crate::config::SelectionStrategy::Random,
            crate::config::SelectionStrategy::PopularFirst,
        ] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
            config.privacy = PrivacyConfig::none();
            config.selection = strategy;
            let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
            let mut mode = FedAvg;
            for round in 0..4u64 {
                let reqs: Vec<u64> = (0..12).map(|i| (i * 3 + round) % 128).collect();
                s.begin_round(&reqs, &mut rng).unwrap();
                for &id in &reqs {
                    assert_eq!(
                        s.serve(id, &mut rng).unwrap().unwrap(),
                        vec![id as u8; 32],
                        "{strategy:?}"
                    );
                }
                s.end_round(&mut mode, 1.0, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn read_phase_is_ssd_write_free() {
        let (mut s, mut rng) = server(Some(1.0));
        let before = s.ssd_stats();
        s.begin_round(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng).unwrap();
        let after_read = s.ssd_stats().since(&before);
        assert_eq!(
            after_read.bytes_written, 0,
            "Opt. 1+2: read phase never writes"
        );
        assert!(after_read.bytes_read > 0);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn round_lifecycle_enforced() {
        let (mut s, mut rng) = server(None);
        let mut mode = FedAvg;
        assert!(matches!(
            s.end_round(&mut mode, 1.0, &mut rng),
            Err(FedoraError::NoActiveRound)
        ));
        s.begin_round(&[1], &mut rng).unwrap();
        assert!(matches!(
            s.begin_round(&[2], &mut rng),
            Err(FedoraError::RoundInProgress)
        ));
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn too_many_requests_rejected() {
        let (mut s, mut rng) = server(None);
        let reqs: Vec<u64> = (0..65).map(|i| i % 128).collect();
        assert!(matches!(
            s.begin_round(&reqs, &mut rng),
            Err(FedoraError::TooManyRequests { got: 65, max: 64 })
        ));
    }

    #[test]
    fn cross_chunk_duplicates_counted_but_safe() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        config.privacy.chunk_size = 2; // force many chunks
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        // Entry 7 appears in three chunks.
        let report = s.begin_round(&[7, 1, 7, 2, 7, 3], &mut rng).unwrap();
        // Per-chunk unions: {7,1}, {7,2}, {7,3} → k_union = 6 (chunking
        // cost), but the data stays consistent.
        assert_eq!(report.k_union, 6);
        assert_eq!(s.serve(7, &mut rng).unwrap().unwrap(), vec![7u8; 32]);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        // Entry intact next round.
        s.begin_round(&[7], &mut rng).unwrap();
        assert_eq!(s.serve(7, &mut rng).unwrap().unwrap(), vec![7u8; 32]);
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn multi_round_consistency() {
        let (mut s, mut rng) = server(Some(1.0));
        let mut mode = FedAvg;
        for round in 0..10u64 {
            let reqs: Vec<u64> = (0..16).map(|i| (i * 7 + round) % 128).collect();
            s.begin_round(&reqs, &mut rng).unwrap();
            for &id in &reqs {
                let _ = s.serve(id, &mut rng).unwrap();
            }
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        assert_eq!(s.reports().len(), 10);
        // Merkle-free counters still coherent.
        assert!(s.main_oram().counters_match_schedule());
    }

    #[test]
    fn snapshot_reads_whole_table() {
        let (mut s, mut rng) = server(None);
        let table = s.snapshot_table(&mut rng).unwrap();
        assert_eq!(table.len(), 128);
        assert_eq!(table[5], vec![5u8; 32]);
        // Table still intact afterwards.
        let table2 = s.snapshot_table(&mut rng).unwrap();
        assert_eq!(table, table2);
    }

    #[test]
    fn transient_faults_retried_transparently() {
        let (mut s, mut rng) = server(None);
        s.arm_faults(FaultConfig::chaos(7, 0.0, 0.0, 1.0));
        s.begin_round(&[3, 4, 5], &mut rng).unwrap();
        assert_eq!(s.serve(3, &mut rng).unwrap().unwrap(), vec![3u8; 32]);
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(
            report.integrity.transient_retries > 0,
            "{:?}",
            report.integrity
        );
        assert!(s.aborts().is_empty());
        assert!(s.fault_stats().transients > 0);
    }

    #[test]
    fn transactional_round_aborts_rolls_back_and_recovers() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        config.fault_tolerance = crate::config::FaultToleranceConfig::transactional();
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);

        // Every read attempt gets an in-flight bit flip: the retry budget
        // exhausts and the round must abort.
        s.arm_faults(FaultConfig::chaos(11, 1.0, 0.0, 0.0));
        let reqs = [10u64, 20, 30];
        let err = s.begin_round(&reqs, &mut rng).unwrap_err();
        assert!(matches!(err, FedoraError::RoundAborted { .. }), "{err}");
        assert_eq!(s.aborts().len(), 1);
        assert!(s.aborts()[0].report.integrity.detected_corruption > 0);
        assert!(s.reports().is_empty(), "aborted round must not complete");

        // The rollback restored a consistent state: with injection off the
        // same round succeeds and serves correct data (entries that lived
        // in a repaired bucket degrade to lost, never to wrong bytes).
        s.disarm_faults();
        let mut mode = FedAvg;
        for _ in 0..3 {
            s.begin_round(&reqs, &mut rng).unwrap();
            for &id in &reqs {
                if let Some(bytes) = s.serve(id, &mut rng).unwrap() {
                    assert_eq!(bytes, vec![id as u8; 32]);
                } else {
                    assert!(s.quarantined_entries().contains(&id));
                }
            }
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        assert_eq!(s.reports().len(), 3, "forward progress after the abort");
    }

    #[test]
    fn non_transactional_integrity_error_propagates() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        config.fault_tolerance.max_read_retries = 0;
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        s.arm_faults(FaultConfig::chaos(13, 1.0, 0.0, 0.0));
        let err = s.begin_round(&[1, 2], &mut rng).unwrap_err();
        assert!(
            matches!(err, FedoraError::Oram(OramError::Integrity { .. })),
            "no transaction: the raw error surfaces ({err})"
        );
        assert!(s.aborts().is_empty());
    }

    #[test]
    fn degraded_mode_excludes_quarantined_entries() {
        let (mut s, mut rng) = server(None);
        // Destroy every tree bucket: all non-stash blocks become missing.
        let nodes = s.main_oram().store().geometry().num_nodes();
        for node in 0..nodes {
            s.repair_bucket(node).unwrap();
        }
        let reqs = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let mut mode = FedAvg;
        s.begin_round(&reqs, &mut rng).unwrap();
        let mut lost = 0;
        for &id in &reqs {
            match s.serve(id, &mut rng).unwrap() {
                Some(bytes) => assert_eq!(bytes, vec![id as u8; 32], "stash survivor"),
                None => lost += 1,
            }
        }
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(lost >= 1, "emptied tree must lose some requested entries");
        assert_eq!(s.quarantined_entries().len(), lost);
        // The next round still proceeds, with the same entries excluded.
        s.begin_round(&reqs, &mut rng).unwrap();
        for &id in s.quarantined_entries().clone().iter() {
            assert!(s.serve(id, &mut rng).unwrap().is_none());
        }
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn round_report_carries_metrics_snapshot() {
        let (mut s, mut rng) = server(None);
        assert!(s.registry().is_enabled());
        s.begin_round(&[1, 2, 3, 1], &mut rng).unwrap();
        s.serve(1, &mut rng).unwrap();
        let mode = FedAvg;
        s.aggregate(&mode, 1, &[0.5; 8], 1, &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        let m = &report.metrics;
        // Acceptance keys: all present and coherent with the report.
        let access = m.histogram("oram.access.latency").expect("latency hist");
        assert!(access.count > 0);
        assert!(access.min <= access.p50 && access.p50 <= access.p95);
        assert!(access.p95 <= access.p99 && access.p99 <= access.max);
        assert_eq!(
            m.counter("storage.pages_read"),
            Some(s.ssd_stats().pages_read)
        );
        assert_eq!(
            m.counter("storage.pages_written"),
            Some(s.ssd_stats().pages_written)
        );
        assert_eq!(m.counter("fl.round.upload_bytes"), Some(8 * 4));
        assert_eq!(m.counter("fl.round.download_bytes"), Some(32));
        assert_eq!(m.counter("integrity.retries"), Some(0));
        assert_eq!(m.counter("fl.rounds.completed"), Some(1));
        // Lite snapshot: the journal stays out of per-round reports…
        assert!(m.events.is_empty());
        // …but the full snapshot has begin/end events.
        let full = s.metrics_snapshot();
        assert!(full.events.iter().any(|e| e.name == "round.begin"));
        assert!(full.events.iter().any(|e| e.name == "round.end"));
    }

    #[test]
    fn faults_feed_integrity_retry_counter() {
        let (mut s, mut rng) = server(None);
        s.arm_faults(FaultConfig::chaos(7, 0.0, 0.0, 1.0));
        s.begin_round(&[3, 4, 5], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(report.metrics.counter("integrity.retries").unwrap_or(0) > 0);
    }

    #[test]
    fn disabled_registry_yields_empty_snapshots() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        let mut s = FedoraServer::with_telemetry(
            config,
            |id| vec![id as u8; 32],
            fedora_telemetry::Registry::disabled(),
            &mut rng,
        );
        assert!(!s.registry().is_enabled());
        s.begin_round(&[1, 2], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert_eq!(report.metrics, fedora_telemetry::Snapshot::default());
        assert_eq!(s.metrics_snapshot(), fedora_telemetry::Snapshot::default());
        // The pipeline itself is unaffected.
        assert_eq!(report.k_requests, 2);
    }

    #[test]
    fn ledger_tracks_accountant_exactly() {
        let (mut s, mut rng) = server(Some(0.5));
        let mut mode = FedAvg;
        for round in 1..=3u64 {
            s.begin_round(&[1, 2, 3, 2], &mut rng).unwrap();
            let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
            let total = report.metrics.gauge("fdp.total.epsilon");
            assert_eq!(total, Some(s.accountant().total_epsilon()));
            assert_eq!(report.metrics.gauge("fdp.rounds"), Some(round as f64));
        }
        let m = s.metrics_snapshot();
        assert_eq!(m.gauge("fdp.round.epsilon"), Some(0.5));
        assert_eq!(m.gauge("fdp.mechanism.epsilon"), Some(0.5));
        assert_eq!(m.counter("fdp.ledger.poisoned"), Some(0));
    }

    #[test]
    fn ledger_secret_series_are_audit_only() {
        let (mut s, mut rng) = server(Some(0.0)); // perfect: k = K, dummies > 0
        s.begin_round(&[7, 7, 7, 9], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        let m = &report.metrics;
        // Lookups always resolve (the tag affects exporters only)…
        assert_eq!(m.counter("fdp.dummies.total"), Some(2));
        assert_eq!(m.gauge("fdp.round.k_union"), Some(2.0));
        // …but every k_union-derived series is tagged audit-only.
        for name in [
            "fdp.dummies.total",
            "fdp.lost.total",
            "fdp.round.k_union",
            "fdp.k.overhead",
        ] {
            assert!(m.is_audit_only(name), "{name} must be audit-only");
        }
        assert!(!m.is_audit_only("fdp.total.epsilon"));
    }

    #[test]
    fn budget_alarm_journals_once() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::with_epsilon(1.0);
        config.privacy_budget = crate::config::PrivacyBudgetConfig::alarm(2.5);
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        let mut mode = FedAvg;
        for _ in 0..4 {
            s.begin_round(&[1, 2], &mut rng).unwrap();
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        // 4 rounds at ε=1.0 cross the 2.5 ceiling at round 3; the alarm
        // journals exactly once and never refuses a round.
        let m = s.metrics_snapshot();
        let crossings: Vec<_> = m
            .events
            .iter()
            .filter(|e| e.name == "privacy.budget.exceeded")
            .collect();
        assert_eq!(crossings.len(), 1);
        assert_eq!(
            crossings[0].field("round"),
            Some(&fedora_telemetry::Value::U64(2))
        );
        assert_eq!(m.gauge("fdp.budget.max_epsilon"), Some(2.5));
        assert_eq!(m.counter("fdp.budget.refused_rounds"), Some(0));
    }

    #[test]
    fn enforcing_budget_refuses_round_without_consuming() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::with_epsilon(1.0);
        config.privacy_budget = crate::config::PrivacyBudgetConfig::enforcing(2.5);
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        let mut mode = FedAvg;
        for _ in 0..2 {
            s.begin_round(&[1, 2], &mut rng).unwrap();
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        // Third round would spend 3.0 > 2.5: refused before any state change.
        let err = s.begin_round(&[1, 2], &mut rng).unwrap_err();
        assert_eq!(
            err,
            FedoraError::PrivacyBudgetExhausted {
                spent: 2.0,
                budget: 2.5
            }
        );
        assert_eq!(s.accountant().total_epsilon(), 2.0);
        assert_eq!(s.reports().len(), 2);
        let m = s.metrics_snapshot();
        assert_eq!(m.counter("fdp.budget.refused_rounds"), Some(1));
        assert!(m.events.iter().any(|e| e.name == "privacy.budget.refused"));
        // A refused round leaves no active round behind.
        assert!(matches!(
            s.end_round(&mut mode, 1.0, &mut rng),
            Err(FedoraError::NoActiveRound)
        ));
    }

    #[test]
    fn scrub_only_between_rounds() {
        let (mut s, mut rng) = server(None);
        s.begin_round(&[1], &mut rng).unwrap();
        assert!(matches!(s.scrub(), Err(FedoraError::RoundInProgress)));
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        let report = s.scrub().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert!(report.checked > 0);
    }
}
